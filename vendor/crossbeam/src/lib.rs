//! Offline API stub: crossbeam::channel shaped over std::sync::mpsc.
pub mod channel {
    use std::sync::mpsc;

    pub struct SendError<T>(pub T);
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    enum Flavor<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }
    pub struct Sender<T>(Flavor<T>);
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Flavor::Bounded(s) => Flavor::Bounded(s.clone()),
                Flavor::Unbounded(s) => Flavor::Unbounded(s.clone()),
            })
        }
    }
    impl<T> Sender<T> {
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Flavor::Bounded(s) => s.send(t).map_err(|e| SendError(e.0)),
                Flavor::Unbounded(s) => s.send(t).map_err(|e| SendError(e.0)),
            }
        }
    }

    pub struct Receiver<T>(mpsc::Receiver<T>);
    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, mpsc::RecvError> { self.0.recv() }
        pub fn iter(&self) -> mpsc::Iter<'_, T> { self.0.iter() }
    }
    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter { self.0.into_iter() }
    }
    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter { self.0.iter() }
    }

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Flavor::Bounded(tx)), Receiver(rx))
    }
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Flavor::Unbounded(tx)), Receiver(rx))
    }
}
