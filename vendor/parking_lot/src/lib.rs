//! Offline API stub: std-backed locks with parking_lot's no-poison surface.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);
impl<T> Mutex<T> {
    pub fn new(t: T) -> Self { Mutex(std::sync::Mutex::new(t)) }
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}
impl<T: Default> Default for Mutex<T> {
    fn default() -> Self { Mutex::new(T::default()) }
}
impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);
impl<T> RwLock<T> {
    pub fn new(t: T) -> Self { RwLock(std::sync::RwLock::new(t)) }
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
impl<T: Default> Default for RwLock<T> {
    fn default() -> Self { RwLock::new(T::default()) }
}
impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}
