//! Offline API stub of the criterion surface this workspace uses. Runs each
//! bench body a handful of times so `cargo test --benches` stays fast.

use std::fmt::Display;
use std::time::Instant;

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId(String);
impl BenchmarkId {
    pub fn from_parameter(p: impl Display) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }
    pub fn new(name: impl Into<String>, p: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), p))
    }
}

pub struct Bencher {
    iters: u64,
}
impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        let _ = t.elapsed();
    }
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Default)]
pub struct Criterion;
impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
        }
    }
}

pub struct BenchmarkGroup {
    name: String,
}
impl BenchmarkGroup {
    pub fn throughput(&mut self, _t: Throughput) {}
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        eprintln!("bench {}/{id}", self.name);
        f(&mut Bencher { iters: 2 });
    }
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        eprintln!("bench {}/{}", self.name, id.0);
        f(&mut Bencher { iters: 2 }, input);
    }
    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
