//! Offline API stub of the proptest surface this workspace uses: seeded
//! random sampling, no shrinking. Failures panic with the case's message.

use std::rc::Rc;

/// Deterministic splitmix64 case generator.
pub struct TestRng {
    state: u64,
}
impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[derive(Debug)]
pub struct TestCaseError(pub String);
impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}
impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}
impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}
impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 48 }
    }
}

pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { s: self, f }
    }
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { s: self, f }
    }
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

pub struct Map<S, F> {
    s: S,
    f: F,
}
impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.s.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    s: S,
    f: F,
}
impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.s.sample(rng)).sample(rng)
    }
}

pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);
impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}
impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}
impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty());
        Union { arms }
    }
}
impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);
impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}
macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self { rng.next_u64() as $t }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() * 2e9 - 1e9
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);
impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start() + (rng.unit_f64() as $t) * (self.end() - self.start())
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// Minimal regex-shaped string strategy: `[class]{lo,hi}` with ranges and
/// `\t`/`\n`/`\\` escapes in the class. Anything else samples as a literal.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pat: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pat.chars().collect();
    if chars.first() != Some(&'[') {
        return pat.to_string();
    }
    let mut set: Vec<char> = Vec::new();
    let mut i = 1;
    let read = |i: &mut usize| -> Option<char> {
        let c = *chars.get(*i)?;
        *i += 1;
        if c == '\\' {
            let e = *chars.get(*i)?;
            *i += 1;
            Some(match e {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            })
        } else {
            Some(c)
        }
    };
    while i < chars.len() && chars[i] != ']' {
        let lo = read(&mut i).expect("class char");
        if chars.get(i) == Some(&'-') && chars.get(i + 1) != Some(&']') {
            i += 1;
            let hi = read(&mut i).expect("class range end");
            for c in (lo as u32)..=(hi as u32) {
                if let Some(c) = char::from_u32(c) {
                    set.push(c);
                }
            }
        } else {
            set.push(lo);
        }
    }
    assert!(!set.is_empty(), "empty char class in {pat}");
    i += 1; // ']'
    assert_eq!(chars.get(i), Some(&'{'), "expected repetition in {pat}");
    i += 1;
    let rest: String = chars[i..].iter().collect();
    let body = rest.trim_end_matches('}');
    let (lo, hi) = match body.split_once(',') {
        Some((a, b)) => (a.parse::<u64>().expect("lo"), b.parse::<u64>().expect("hi")),
        None => {
            let n = body.parse::<u64>().expect("count");
            (n, n)
        }
    };
    let len = lo + rng.below(hi - lo + 1);
    (0..len)
        .map(|_| set[rng.below(set.len() as u64) as usize])
        .collect()
}

pub mod collection {
    use super::{Strategy, TestRng};

    pub struct VecStrategy<S> {
        s: S,
        lo: usize,
        hi: usize,
    }
    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.lo + rng.below((self.hi - self.lo).max(1) as u64) as usize;
            (0..len).map(|_| self.s.sample(rng)).collect()
        }
    }
    pub fn vec<S: Strategy>(s: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy {
            s,
            lo: size.start,
            hi: size.end,
        }
    }
}

pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (l, r) = (&($a), &($b));
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}", l, r
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (l, r) = (&($a), &($b));
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}: {:?} != {:?}", format!($($fmt)+), l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (l, r) = (&($a), &($b));
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}", l, r
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (l, r) = (&($a), &($b));
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}: {:?} == {:?}", format!($($fmt)+), l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($argn:pat in $args:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = {
                    // Stable per-test seed from the test name.
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in stringify!($name).bytes() {
                        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
                    }
                    $crate::TestRng::new(h)
                };
                for case in 0..cfg.cases {
                    $(let $argn = $crate::Strategy::sample(&($args), &mut rng);)+
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!("proptest {} case {case} failed: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}
