//! Offline stub: derive-only serde surface.
pub use serde_derive::{Deserialize, Serialize};
