//! Offline API stub of the rand 0.8 surface this workspace uses:
//! RngCore / Rng {gen, gen_range, gen_bool} / SeedableRng::seed_from_u64 /
//! rngs::StdRng, backed by splitmix64.

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 { (**self).next_u32() }
    fn next_u64(&mut self) -> u64 { (**self).next_u64() }
    fn fill_bytes(&mut self, dest: &mut [u8]) { (**self).fill_bytes(dest) }
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub trait Gennable {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}
impl Gennable for f64 {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self { unit_f64(rng) }
}
impl Gennable for f32 {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self { unit_f64(rng) as f32 }
}
impl Gennable for bool {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self { rng.next_u64() & 1 == 1 }
}
impl Gennable for u32 {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self { rng.next_u32() }
}
impl Gennable for u64 {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self { rng.next_u64() }
}
impl Gennable for i64 {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self { rng.next_u64() as i64 }
}
impl Gennable for usize {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self { rng.next_u64() as usize }
}

/// Types uniformly sampleable from a [lo, hi) / [lo, hi] span.
///
/// The single blanket `SampleRange` impl below (mirroring real rand's shape)
/// is what lets integer-literal ranges like `0..100` unify with the
/// surrounding expression's type during inference.
pub trait SampleUniform: Sized {
    fn sample_span<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_span<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "empty range");
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_uniform!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_span<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, _inclusive: bool) -> $t {
                assert!(lo <= hi, "empty range");
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}
float_uniform!(f32, f64);

pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_span(rng, self.start, self.end, false)
    }
}
impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_span(rng, lo, hi, true)
    }
}

pub trait Rng: RngCore {
    fn gen<T: Gennable>(&mut self) -> T {
        T::gen_from(self)
    }
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}
impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// splitmix64-backed stand-in for rand's StdRng (seeded, deterministic).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }
    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng {
                state: state ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }
    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
    }
}
