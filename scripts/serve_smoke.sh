#!/usr/bin/env bash
# Daemon smoke test: boot quill-serve on ephemeral ports, stream a
# disordered fixture over TCP (with a mid-stream reconnect), scrape
# /metrics, pull the pipeline-span timeline from /trace, assert windows
# were merged, and shut down cleanly.
# Run from the repository root: ./scripts/serve_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

TIMEOUT="${SERVE_SMOKE_TIMEOUT:-120}"
LOG="$(mktemp)"
TRACE="results/SMOKE_serve_trace.json"
trap 'rm -f "$LOG"; [ -n "${SERVER_PID:-}" ] && kill "$SERVER_PID" 2>/dev/null || true' EXIT

echo "==> building quill-serve, quill-ingest and quill-inspect"
cargo build --release -p quill-serve
cargo build --release -p quill-bench --bin quill-inspect

echo "==> booting the daemon (ephemeral ports)"
./target/release/quill-serve \
    --ingest 127.0.0.1:0 --http 127.0.0.1:0 \
    --strategy aq:0.95 \
    --span-capacity 65536 \
    --query 'tumbling:1000;sum:0:total;key=1;completeness=0.9;slo=2000' \
    --query 'tumbling:500;count:0:n;completeness=0.99' \
    >"$LOG" 2>&1 &
SERVER_PID=$!

# Wait for the bound-address lines.
for _ in $(seq 1 100); do
    grep -q '^http=' "$LOG" && break
    kill -0 "$SERVER_PID" 2>/dev/null || { cat "$LOG"; echo "daemon died"; exit 1; }
    sleep 0.1
done
INGEST_ADDR="$(sed -n 's/^ingest=//p' "$LOG" | head -1)"
HTTP_ADDR="$(sed -n 's/^http=//p' "$LOG" | head -1)"
echo "    ingest=$INGEST_ADDR http=$HTTP_ADDR"
[ -n "$INGEST_ADDR" ] && [ -n "$HTTP_ADDR" ]

echo "==> streaming 20k disordered events (reconnect at 10k)"
./target/release/quill-ingest \
    --addr "$INGEST_ADDR" --events 20000 --seed 42 --max-delay 400 \
    --reconnect-at 10000

echo "==> draining via POST /finish"
curl -sf -X POST "http://$HTTP_ADDR/finish" >/dev/null
for _ in $(seq 1 100); do
    curl -sf "http://$HTTP_ADDR/stats" | grep -q '"finished":true' && break
    sleep 0.1
done
curl -sf "http://$HTTP_ADDR/stats" | grep -q '"finished":true'
curl -sf "http://$HTTP_ADDR/stats" | grep -q '"events":20000'

echo "==> scraping /metrics"
METRICS="$(curl -sf "http://$HTTP_ADDR/metrics")"
MERGED="$(printf '%s\n' "$METRICS" | awk '$1 == "quill_merge_windows" { print $2 }')"
echo "    quill_merge_windows=$MERGED"
[ -n "$MERGED" ] && awk -v m="$MERGED" 'BEGIN { exit !(m > 0) }'
printf '%s\n' "$METRICS" | grep -q '^quill_executor_queue_depth '
printf '%s\n' "$METRICS" | grep -q '^quill_span_deliver_count '
printf '%s\n' "$METRICS" | grep -q '^quill_span_deliver_sum '

echo "==> fetching the Chrome-trace timeline from /trace"
mkdir -p results
curl -sf "http://$HTTP_ADDR/trace" >"$TRACE"
./target/release/quill-inspect timeline "$TRACE" --check
./target/release/quill-inspect timeline "$TRACE" | sed 's/^/    /'

echo "==> clean shutdown within ${TIMEOUT}s"
curl -sf -X POST "http://$HTTP_ADDR/shutdown" >/dev/null
for _ in $(seq 1 "$((TIMEOUT * 10))"); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "daemon failed to exit within ${TIMEOUT}s"
    exit 1
fi
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
grep -q '^drained events=' "$LOG"

echo "serve smoke passed."
