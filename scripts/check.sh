#!/usr/bin/env bash
# CI gate: lint-clean (clippy -D warnings), builds, and tests green.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> quill-lint --workspace (reports: results/lint_report.jsonl, results/lint_report.sarif)"
cargo run -q -p quill-lint -- --workspace \
    --out results/lint_report.jsonl \
    --sarif results/lint_report.sarif

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# Differential simulation soak: QUILL_SIM_CASES seeds through the full
# strategy × executor sweep against the naive oracle. Scale the seed count
# up for a longer soak, e.g. QUILL_SIM_CASES=256 ./scripts/check.sh.
echo "==> quill-sim differential soak (QUILL_SIM_CASES=${QUILL_SIM_CASES:-16})"
QUILL_SIM_CASES="${QUILL_SIM_CASES:-16}" \
    cargo test --release -q -p quill-sim --test differential

echo "All checks passed."
