#!/usr/bin/env bash
# CI gate: lint-clean (clippy -D warnings), builds, and tests green.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> quill-lint --workspace (report: results/lint_report.jsonl)"
cargo run -q -p quill-lint -- --workspace --out results/lint_report.jsonl

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "All checks passed."
