//! Static plan analysis acceptance: infeasible plans are rejected *before*
//! any event is processed, feasible plans carry their non-fatal findings on
//! the run output, and the diagnostics render through `quill-inspect`.

#![forbid(unsafe_code)]

use quill_bench::inspect::render_report;
use quill_core::prelude::*;
use quill_engine::aggregate::{AggregateKind, AggregateSpec};
use quill_integration::{mean_query, uniform_disordered};

/// A completeness-1.0 demand under a declared unbounded delay tail is
/// refused up front: the error names the rule, and the strategy's buffer
/// never sees a single event.
#[test]
fn infeasible_completeness_is_rejected_before_any_event() {
    let events = uniform_disordered(5_000, 10, 200, 7);
    let query = mean_query(100);
    let mut strategy = FixedKSlack::new(1_000_000u64);
    let opts = ExecOptions::sequential()
        .with_delay_profile(DelayProfile::Unbounded)
        .with_required_completeness(1.0);

    let err = execute(&events, &mut strategy, &query, &opts).unwrap_err();
    match &err {
        EngineError::PlanRejected(msg) => {
            assert!(msg.contains("plan.quality.infeasible"), "{msg}");
            assert!(msg.contains("help:"), "{msg}");
        }
        other => panic!("expected PlanRejected, got {other:?}"),
    }
    let stats = strategy.buffer_stats();
    assert_eq!(stats.inserted, 0, "events reached the buffer: {stats:?}");
}

/// A fixed K below a declared bounded delay cannot deliver completeness 1.0;
/// raising K to the bound makes the same plan acceptable.
#[test]
fn fixed_k_below_delay_bound_is_rejected_and_sufficient_k_accepted() {
    let events = uniform_disordered(2_000, 10, 200, 11);
    let query = mean_query(100);
    let opts = ExecOptions::sequential()
        .with_delay_profile(DelayProfile::Bounded { max_delay: 200 })
        .with_required_completeness(1.0);

    let mut low = FixedKSlack::new(50u64);
    let err = execute(&events, &mut low, &query, &opts).unwrap_err();
    assert!(matches!(err, EngineError::PlanRejected(_)), "{err:?}");
    assert_eq!(low.buffer_stats().inserted, 0);

    let mut enough = FixedKSlack::new(200u64);
    let out = execute(&events, &mut enough, &query, &opts).unwrap();
    assert_eq!(out.events, 2_000);
    // K ≥ the delay bound really does deliver the demanded completeness.
    assert!(
        out.quality.mean_completeness >= 1.0 - 1e-9,
        "completeness {}",
        out.quality.mean_completeness
    );
    // The accepted plan still reports its non-fatal findings (completeness
    // target configured without a flight recorder).
    assert!(out
        .plan
        .iter()
        .any(|d| d.rule == "plan.options.completeness-without-trace"));
    assert!(out.plan.iter().all(|d| d.severity < PlanSeverity::Deny));
}

/// The AQ strategy's own quality target participates in feasibility: an
/// exact-completeness target with a K cap below the delay bound is refused
/// with no options-level target set at all.
#[test]
fn aq_k_max_below_bound_with_exact_target_is_rejected() {
    let events = uniform_disordered(1_000, 10, 300, 3);
    let query = mean_query(100);
    let mut cfg = AqConfig::with_target(QualityTarget::Completeness { q: 1.0 });
    cfg.k_max = TimeDelta(100);
    let mut strategy = AqKSlack::new(cfg);
    let opts =
        ExecOptions::sequential().with_delay_profile(DelayProfile::Bounded { max_delay: 300 });

    let err = execute(&events, &mut strategy, &query, &opts).unwrap_err();
    assert!(matches!(err, EngineError::PlanRejected(_)), "{err:?}");
    assert_eq!(strategy.buffer_stats().inserted, 0);
}

/// Without a declared delay profile the analyzer assumes nothing about
/// delays: the same aggressive target runs (the provenance layer will flag
/// violations instead). This keeps feasibility checking strictly opt-in.
#[test]
fn feasibility_checks_are_opt_in() {
    let events = uniform_disordered(1_000, 10, 100, 5);
    let query = mean_query(100);
    let mut strategy = DropAll::new();
    let opts = ExecOptions::sequential().with_required_completeness(1.0);
    let out = execute(&events, &mut strategy, &query, &opts).unwrap();
    assert_eq!(out.events, 1_000);
}

/// Shared multi-query runs vet every subscriber: one infeasible query
/// refuses the whole shared run before the shared buffer sees an event.
#[test]
fn shared_run_rejects_when_any_query_is_infeasible() {
    let events = uniform_disordered(1_000, 10, 100, 9);
    let queries = vec![mean_query(100), mean_query(500)];
    let mut strategy = DropAll::new();
    let opts = ExecOptions::sequential()
        .with_delay_profile(DelayProfile::Unbounded)
        .with_required_completeness(1.0);
    let err = execute_shared(&events, &mut strategy, &queries, &opts).unwrap_err();
    assert!(matches!(err, EngineError::PlanRejected(_)), "{err:?}");
    assert_eq!(strategy.buffer_stats().inserted, 0);

    // The same shared run without the exact-completeness demand is accepted
    // and carries deduplicated non-fatal findings.
    let opts =
        ExecOptions::parallel(ParallelConfig::new(4)).with_delay_profile(DelayProfile::Unbounded);
    let out = execute_shared(&events, &mut strategy, &queries, &opts).unwrap();
    let unkeyed = out
        .plan
        .iter()
        .filter(|d| d.rule == "plan.parallel.unkeyed")
        .count();
    assert_eq!(
        unkeyed, 1,
        "shared findings not deduplicated: {:?}",
        out.plan
    );
}

/// Every non-fatal analyzer finding: one case per warn/advice rule, each
/// asserting both the finding code on the run output and that execution
/// proceeded (the full stream was processed despite the finding).
mod warn_and_advice_paths {
    use super::*;

    fn run_with(
        query: &QuerySpec,
        strategy: &mut dyn DisorderControl,
        opts: &ExecOptions,
    ) -> RunOutput {
        let events = uniform_disordered(500, 10, 100, 21);
        let out = execute(&events, strategy, query, opts).expect("plan must not be denied");
        assert_eq!(out.events, 500, "execution did not process the full stream");
        out
    }

    fn assert_finding(out: &RunOutput, rule: &str, severity: PlanSeverity) {
        let found = out.plan.iter().find(|d| d.rule == rule);
        let Some(d) = found else {
            panic!("expected finding {rule}, got {:?}", out.plan);
        };
        assert_eq!(d.severity, severity, "{d:?}");
        assert!(!d.help.is_empty(), "{d:?}");
    }

    #[test]
    fn pane_misaligned_sliding_window_warns() {
        let query = QuerySpec::new(
            WindowSpec::sliding(100u64, 30u64),
            vec![AggregateSpec::new(AggregateKind::Mean, 0, "mean")],
            None,
        );
        let out = run_with(&query, &mut OracleBuffer::new(), &ExecOptions::sequential());
        assert_finding(&out, "plan.window.pane-alignment", PlanSeverity::Warn);
    }

    #[test]
    fn high_fanout_sliding_window_advises() {
        let query = QuerySpec::new(
            WindowSpec::sliding(6_400u64, 100u64),
            vec![AggregateSpec::new(AggregateKind::Mean, 0, "mean")],
            None,
        );
        let out = run_with(
            &query,
            &mut MpKSlack::bounded(500u64),
            &ExecOptions::sequential(),
        );
        assert_finding(&out, "plan.window.fanout", PlanSeverity::Advice);
    }

    #[test]
    fn non_combinable_aggregate_on_sliding_window_warns() {
        let query = QuerySpec::new(
            WindowSpec::sliding(100u64, 50u64),
            vec![AggregateSpec::new(AggregateKind::Median, 0, "median")],
            None,
        );
        let out = run_with(
            &query,
            &mut MpKSlack::bounded(500u64),
            &ExecOptions::sequential(),
        );
        assert_finding(&out, "plan.aggregate.fold-path", PlanSeverity::Warn);
    }

    #[test]
    fn zero_slack_with_sub_one_target_warns_at_risk() {
        let opts = ExecOptions::sequential()
            .with_delay_profile(DelayProfile::Bounded { max_delay: 100 })
            .with_required_completeness(0.9)
            .with_trace(&FlightRecorder::new(64));
        let out = run_with(&mean_query(100), &mut DropAll::new(), &opts);
        assert_finding(&out, "plan.quality.at-risk", PlanSeverity::Warn);
    }

    #[test]
    fn uncapped_mp_under_unbounded_delays_warns() {
        let opts = ExecOptions::sequential().with_delay_profile(DelayProfile::Unbounded);
        let out = run_with(&mean_query(100), &mut MpKSlack::new(), &opts);
        assert_finding(&out, "plan.strategy.unbounded-k", PlanSeverity::Warn);
    }

    #[test]
    fn oracle_buffer_advises_offline_only() {
        let out = run_with(
            &mean_query(100),
            &mut OracleBuffer::new(),
            &ExecOptions::sequential(),
        );
        assert_finding(&out, "plan.strategy.oracle-offline", PlanSeverity::Advice);
    }

    #[test]
    fn unkeyed_parallel_run_warns() {
        let out = run_with(
            &mean_query(100),
            &mut MpKSlack::bounded(500u64),
            &ExecOptions::parallel(ParallelConfig::new(4)),
        );
        assert_finding(&out, "plan.parallel.unkeyed", PlanSeverity::Warn);
    }

    #[test]
    fn more_shards_than_keys_warns() {
        let query = QuerySpec::new(
            WindowSpec::tumbling(100u64),
            vec![AggregateSpec::new(AggregateKind::Mean, 0, "mean")],
            Some(0),
        );
        let opts = ExecOptions::parallel(ParallelConfig::new(8)).with_expected_keys(2);
        let out = run_with(&query, &mut MpKSlack::bounded(500u64), &opts);
        assert_finding(&out, "plan.parallel.shards-vs-keys", PlanSeverity::Warn);
    }

    #[test]
    fn completeness_target_without_trace_warns() {
        let opts = ExecOptions::sequential().with_required_completeness(0.9);
        let out = run_with(&mean_query(100), &mut MpKSlack::bounded(500u64), &opts);
        assert_finding(
            &out,
            "plan.options.completeness-without-trace",
            PlanSeverity::Warn,
        );
    }

    #[test]
    fn snapshots_without_telemetry_warn() {
        let opts = ExecOptions::sequential().with_snapshot_every(64);
        let out = run_with(&mean_query(100), &mut MpKSlack::bounded(500u64), &opts);
        assert_finding(
            &out,
            "plan.options.snapshot-without-telemetry",
            PlanSeverity::Warn,
        );
    }

    #[test]
    fn delay_profile_without_any_quality_target_advises() {
        let opts =
            ExecOptions::sequential().with_delay_profile(DelayProfile::Bounded { max_delay: 100 });
        let out = run_with(&mean_query(100), &mut FixedKSlack::new(500u64), &opts);
        assert_finding(
            &out,
            "plan.options.delay-profile-unused",
            PlanSeverity::Advice,
        );
    }

    #[test]
    fn expected_keys_on_sequential_run_warns() {
        let opts = ExecOptions::sequential().with_expected_keys(4);
        let out = run_with(&mean_query(100), &mut MpKSlack::bounded(500u64), &opts);
        assert_finding(
            &out,
            "plan.options.expected-keys-without-parallel",
            PlanSeverity::Warn,
        );
    }

    #[test]
    fn global_staging_on_sequential_run_warns() {
        let opts = ExecOptions::sequential().with_global_staging(true);
        let out = run_with(&mean_query(100), &mut MpKSlack::bounded(500u64), &opts);
        assert_finding(
            &out,
            "plan.options.global-staging-sequential",
            PlanSeverity::Warn,
        );
    }
}

/// Plan diagnostics flow end-to-end into the `quill-inspect` renderer.
#[test]
fn plan_diagnostics_render_through_inspect() {
    let query = QuerySpec::new(
        WindowSpec::sliding(100u64, 30u64),
        vec![AggregateSpec::new(AggregateKind::Median, 0, "median")],
        None,
    );
    let opts = ExecOptions::parallel(ParallelConfig::new(8))
        .with_expected_keys(2)
        .with_snapshot_every(64);
    let diags = analyze_plan(&query, &StrategyKind::FixedK(50), &opts);
    assert!(diags.len() >= 3, "{diags:?}");
    let jsonl: String = diags.iter().map(|d| d.to_jsonl_line() + "\n").collect();
    let report = render_report(&jsonl, 5).expect("renders");
    assert!(report.contains("Plan diagnostics"), "{report}");
    assert!(report.contains("plan.window.pane-alignment"), "{report}");
    assert!(report.contains("help:"), "{report}");
}
