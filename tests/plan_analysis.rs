//! Static plan analysis acceptance: infeasible plans are rejected *before*
//! any event is processed, feasible plans carry their non-fatal findings on
//! the run output, and the diagnostics render through `quill-inspect`.

#![forbid(unsafe_code)]

use quill_bench::inspect::render_report;
use quill_core::prelude::*;
use quill_engine::aggregate::{AggregateKind, AggregateSpec};
use quill_integration::{mean_query, uniform_disordered};

/// A completeness-1.0 demand under a declared unbounded delay tail is
/// refused up front: the error names the rule, and the strategy's buffer
/// never sees a single event.
#[test]
fn infeasible_completeness_is_rejected_before_any_event() {
    let events = uniform_disordered(5_000, 10, 200, 7);
    let query = mean_query(100);
    let mut strategy = FixedKSlack::new(1_000_000u64);
    let opts = ExecOptions::sequential()
        .with_delay_profile(DelayProfile::Unbounded)
        .with_required_completeness(1.0);

    let err = execute(&events, &mut strategy, &query, &opts).unwrap_err();
    match &err {
        EngineError::PlanRejected(msg) => {
            assert!(msg.contains("plan.quality.infeasible"), "{msg}");
            assert!(msg.contains("help:"), "{msg}");
        }
        other => panic!("expected PlanRejected, got {other:?}"),
    }
    let stats = strategy.buffer_stats();
    assert_eq!(stats.inserted, 0, "events reached the buffer: {stats:?}");
}

/// A fixed K below a declared bounded delay cannot deliver completeness 1.0;
/// raising K to the bound makes the same plan acceptable.
#[test]
fn fixed_k_below_delay_bound_is_rejected_and_sufficient_k_accepted() {
    let events = uniform_disordered(2_000, 10, 200, 11);
    let query = mean_query(100);
    let opts = ExecOptions::sequential()
        .with_delay_profile(DelayProfile::Bounded { max_delay: 200 })
        .with_required_completeness(1.0);

    let mut low = FixedKSlack::new(50u64);
    let err = execute(&events, &mut low, &query, &opts).unwrap_err();
    assert!(matches!(err, EngineError::PlanRejected(_)), "{err:?}");
    assert_eq!(low.buffer_stats().inserted, 0);

    let mut enough = FixedKSlack::new(200u64);
    let out = execute(&events, &mut enough, &query, &opts).unwrap();
    assert_eq!(out.events, 2_000);
    // K ≥ the delay bound really does deliver the demanded completeness.
    assert!(
        out.quality.mean_completeness >= 1.0 - 1e-9,
        "completeness {}",
        out.quality.mean_completeness
    );
    // The accepted plan still reports its non-fatal findings (completeness
    // target configured without a flight recorder).
    assert!(out
        .plan
        .iter()
        .any(|d| d.rule == "plan.options.completeness-without-trace"));
    assert!(out.plan.iter().all(|d| d.severity < PlanSeverity::Deny));
}

/// The AQ strategy's own quality target participates in feasibility: an
/// exact-completeness target with a K cap below the delay bound is refused
/// with no options-level target set at all.
#[test]
fn aq_k_max_below_bound_with_exact_target_is_rejected() {
    let events = uniform_disordered(1_000, 10, 300, 3);
    let query = mean_query(100);
    let mut cfg = AqConfig::with_target(QualityTarget::Completeness { q: 1.0 });
    cfg.k_max = TimeDelta(100);
    let mut strategy = AqKSlack::new(cfg);
    let opts =
        ExecOptions::sequential().with_delay_profile(DelayProfile::Bounded { max_delay: 300 });

    let err = execute(&events, &mut strategy, &query, &opts).unwrap_err();
    assert!(matches!(err, EngineError::PlanRejected(_)), "{err:?}");
    assert_eq!(strategy.buffer_stats().inserted, 0);
}

/// Without a declared delay profile the analyzer assumes nothing about
/// delays: the same aggressive target runs (the provenance layer will flag
/// violations instead). This keeps feasibility checking strictly opt-in.
#[test]
fn feasibility_checks_are_opt_in() {
    let events = uniform_disordered(1_000, 10, 100, 5);
    let query = mean_query(100);
    let mut strategy = DropAll::new();
    let opts = ExecOptions::sequential().with_required_completeness(1.0);
    let out = execute(&events, &mut strategy, &query, &opts).unwrap();
    assert_eq!(out.events, 1_000);
}

/// Shared multi-query runs vet every subscriber: one infeasible query
/// refuses the whole shared run before the shared buffer sees an event.
#[test]
fn shared_run_rejects_when_any_query_is_infeasible() {
    let events = uniform_disordered(1_000, 10, 100, 9);
    let queries = vec![mean_query(100), mean_query(500)];
    let mut strategy = DropAll::new();
    let opts = ExecOptions::sequential()
        .with_delay_profile(DelayProfile::Unbounded)
        .with_required_completeness(1.0);
    let err = execute_shared(&events, &mut strategy, &queries, &opts).unwrap_err();
    assert!(matches!(err, EngineError::PlanRejected(_)), "{err:?}");
    assert_eq!(strategy.buffer_stats().inserted, 0);

    // The same shared run without the exact-completeness demand is accepted
    // and carries deduplicated non-fatal findings.
    let opts =
        ExecOptions::parallel(ParallelConfig::new(4)).with_delay_profile(DelayProfile::Unbounded);
    let out = execute_shared(&events, &mut strategy, &queries, &opts).unwrap();
    let unkeyed = out
        .plan
        .iter()
        .filter(|d| d.rule == "plan.parallel.unkeyed")
        .count();
    assert_eq!(
        unkeyed, 1,
        "shared findings not deduplicated: {:?}",
        out.plan
    );
}

/// Plan diagnostics flow end-to-end into the `quill-inspect` renderer.
#[test]
fn plan_diagnostics_render_through_inspect() {
    let query = QuerySpec::new(
        WindowSpec::sliding(100u64, 30u64),
        vec![AggregateSpec::new(AggregateKind::Median, 0, "median")],
        None,
    );
    let opts = ExecOptions::parallel(ParallelConfig::new(8))
        .with_expected_keys(2)
        .with_snapshot_every(64);
    let diags = analyze_plan(&query, &StrategyKind::FixedK(50), &opts);
    assert!(diags.len() >= 3, "{diags:?}");
    let jsonl: String = diags.iter().map(|d| d.to_jsonl_line() + "\n").collect();
    let report = render_report(&jsonl, 5).expect("renders");
    assert!(report.contains("Plan diagnostics"), "{report}");
    assert!(report.contains("plan.window.pane-alignment"), "{report}");
    assert!(report.contains("help:"), "{report}");
}
