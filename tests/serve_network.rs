//! End-to-end daemon tests: boot `quill-serve` in-process on ephemeral
//! ports, stream a disordered fixture over real TCP (including a
//! mid-stream reconnect), and prove the served results are
//! element-identical to the batch `execute` path.

use quill_core::prelude::{execute, ExecOptions, FixedKSlack};
use quill_engine::prelude::{Event, Row};
use quill_serve::client::{fixture, IngestClient};
use quill_serve::config::{parse_query, RetryPolicy};
use quill_serve::wire::Frame;
use quill_serve::{ServeConfig, Server, ServerHandle, StrategySpec};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const Q_SUM: &str = "tumbling:1000;sum:0:total;key=1;completeness=0.9";
const Q_COUNT: &str = "tumbling:250;count:0:n,max:0:peak;completeness=0.99";

/// Convert fixture data frames to the batch-side event vector: the daemon
/// assigns arrival sequence numbers in frame order, so a single ordered
/// connection reproduces `seq = index`.
fn frames_to_events(frames: &[Frame]) -> Vec<Event> {
    frames
        .iter()
        .enumerate()
        .map(|(i, f)| match f {
            Frame::Data { ts, values } => Event::new(*ts, i as u64, Row::new(values.clone())),
            Frame::Heartbeat { .. } => unreachable!("fixture built without heartbeats"),
        })
        .collect()
}

/// Wait until the session has pushed `n` events (bounded spin).
fn wait_events(handle: &ServerHandle, n: u64) {
    for _ in 0..2000 {
        if handle.stats().events >= n {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!(
        "server never observed {n} events (got {})",
        handle.stats().events
    );
}

fn start_server() -> ServerHandle {
    let config = ServeConfig {
        strategy: StrategySpec::Fixed(500),
        queue_capacity: 256,
        ..ServeConfig::default()
    };
    Server::start(config).expect("server boots on ephemeral ports")
}

#[test]
fn tcp_ingest_with_reconnect_matches_batch_execute() {
    let frames = fixture(2_000, 42, 300, 0);
    let events = frames_to_events(&frames);

    let mut handle = start_server();
    let sum_id = handle.register(Q_SUM).expect("sum query registers");
    let count_id = handle.register(Q_COUNT).expect("count query registers");

    // Stream over real TCP with a mid-stream reconnect. Waiting for the
    // first half to be fully pushed before reconnecting keeps the global
    // arrival order identical to the frame order.
    let half = frames.len() / 2;
    let mut client = IngestClient::connect(handle.ingest_addr().to_string()).expect("connects");
    for f in &frames[..half] {
        client.send(f).expect("send");
    }
    wait_events(&handle, half as u64);
    client.reconnect().expect("mid-stream reconnect");
    for f in &frames[half..] {
        client.send(f).expect("send after reconnect");
    }
    client.finish().expect("clean close");

    wait_events(&handle, frames.len() as u64);
    handle.finish(); // graceful drain: flush every open window.

    let stats = handle.stats();
    assert_eq!(
        stats.events,
        frames.len() as u64,
        "no reconnect-induced loss"
    );
    assert!(stats.finished, "drain finished the session");

    // Batch reference runs, one per query, same strategy parameters.
    for (id, dsl) in [(sum_id, Q_SUM), (count_id, Q_COUNT)] {
        let (spec, _) = parse_query(dsl).unwrap();
        let batch = execute(
            &events,
            &mut FixedKSlack::new(500u64),
            &spec,
            &ExecOptions::default(),
        )
        .expect("batch run");
        let served = handle.poll(id).expect("poll served results");
        assert_eq!(
            served.len(),
            batch.results.len(),
            "result cardinality for `{dsl}`"
        );
        for (s, b) in served.iter().zip(batch.results.iter()) {
            assert_eq!(s, b, "served result diverges from batch for `{dsl}`");
        }
    }
    handle.shutdown();
}

#[test]
fn binary_and_text_wire_modes_are_equivalent() {
    let frames = fixture(600, 7, 200, 0);
    let mut outcomes = Vec::new();
    for binary in [false, true] {
        let mut handle = start_server();
        let id = handle.register(Q_COUNT).expect("register");
        let mut client = IngestClient::connect_with(
            handle.ingest_addr().to_string(),
            binary,
            RetryPolicy::default(),
        )
        .expect("connect");
        for f in &frames {
            client.send(f).expect("send");
        }
        client.finish().expect("close");
        wait_events(&handle, frames.len() as u64);
        handle.finish();
        outcomes.push(handle.poll(id).expect("poll"));
        handle.shutdown();
    }
    assert_eq!(outcomes[0], outcomes[1], "text and binary modes diverge");
    assert!(!outcomes[0].is_empty(), "fixture produced results");
}

#[test]
fn heartbeats_drive_punctuated_sessions_over_tcp() {
    // Two sources, punctuation-driven watermarks: results only advance when
    // heartbeats arrive, exercising `on_heartbeat` over the wire.
    let config = ServeConfig {
        strategy: StrategySpec::Punctuated {
            source_field: 1,
            expected_sources: 2,
            slack: 0,
        },
        ..ServeConfig::default()
    };
    let mut handle = Server::start(config).expect("boot");
    let id = handle.register("tumbling:100;count:0:n").expect("register");

    let frames = fixture(400, 13, 50, 40); // heartbeats every 40 events
    let total = frames.len() as u64;
    let data = frames
        .iter()
        .filter(|f| matches!(f, Frame::Data { .. }))
        .count() as u64;
    let mut client = IngestClient::connect(handle.ingest_addr().to_string()).expect("connect");
    for f in &frames {
        client.send(f).expect("send");
    }
    client.finish().expect("close");

    for _ in 0..2000 {
        let s = handle.stats();
        if s.events + s.heartbeats >= total {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let mid = handle.stats();
    assert_eq!(mid.events, data, "every data frame reached the session");
    assert_eq!(mid.heartbeats, total - data, "every heartbeat applied");

    handle.finish();
    let results = handle.poll(id).expect("poll");
    assert!(!results.is_empty(), "punctuated session emitted windows");
    handle.shutdown();
}

/// Minimal HTTP client for the control surface.
fn http_request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("http connect");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: quill\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .expect("response has a header block");
    (head.to_string(), payload.to_string())
}

#[test]
fn http_surface_registers_queries_and_exposes_metrics() {
    let handle = start_server();
    let http = handle.http_addr();

    let (head, body) = http_request(http, "POST", "/queries", Q_SUM);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(body.starts_with("{\"id\":"), "{body}");
    let id: u64 = body
        .trim_start_matches("{\"id\":")
        .trim_end_matches('}')
        .parse()
        .expect("id parses");

    let (_, list) = http_request(http, "GET", "/queries", "");
    assert!(list.contains("tumbling:1000"), "{list}");
    assert!(list.contains("\"required_completeness\":0.9"), "{list}");

    // Ingest a burst, then drain via the HTTP finish endpoint.
    let frames = fixture(500, 5, 100, 0);
    let mut client = IngestClient::connect(handle.ingest_addr().to_string()).expect("connect");
    for f in &frames {
        client.send(f).expect("send");
    }
    client.finish().expect("close");
    wait_events(&handle, frames.len() as u64);
    let (head, _) = http_request(http, "POST", "/finish", "");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    for _ in 0..2000 {
        if handle.stats().finished {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        handle.stats().finished,
        "finish endpoint drained the session"
    );

    let (_, results) = http_request(http, "GET", &format!("/queries/{id}/results"), "");
    assert!(results.starts_with('['), "{results}");
    assert!(results.contains("\"aggregates\""), "{results}");

    let (_, metrics) = http_request(http, "GET", "/metrics", "");
    let merged = metrics
        .lines()
        .find(|l| l.starts_with("quill_merge_windows "))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse::<f64>().ok())
        .expect("quill_merge_windows exported");
    assert!(merged > 0.0, "windows were merged: {merged}");
    assert!(
        metrics.contains("quill_executor_queue_depth"),
        "ingest queue depth gauge exported"
    );

    let (_, stats) = http_request(http, "GET", "/stats", "");
    assert!(stats.contains("\"finished\":true"), "{stats}");

    let (head, _) = http_request(http, "DELETE", &format!("/queries/{id}"), "");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let (head, _) = http_request(http, "DELETE", &format!("/queries/{id}"), "");
    assert!(
        head.starts_with("HTTP/1.1 400"),
        "double delete refused: {head}"
    );

    let (head, _) = http_request(http, "GET", "/nope", "");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    let (head, _) = http_request(http, "POST", "/shutdown", "");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    handle.shutdown();
}

#[test]
fn trace_endpoint_serves_chrome_trace_with_pipeline_spans() {
    let handle = start_server();
    let http = handle.http_addr();

    // A query with a deliberately unmeetable latency SLO: every delivered
    // result burns it (K = 500 means results trail window ends by ~500).
    let (head, body) = http_request(http, "POST", "/queries", "tumbling:1000;sum:0:total;slo=1");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let id: u64 = body
        .trim_start_matches("{\"id\":")
        .trim_end_matches('}')
        .parse()
        .expect("id parses");

    let frames = fixture(800, 11, 200, 0);
    let mut client = IngestClient::connect(handle.ingest_addr().to_string()).expect("connect");
    for f in &frames {
        client.send(f).expect("send");
    }
    client.finish().expect("close");
    wait_events(&handle, frames.len() as u64);
    let (_, _) = http_request(http, "POST", "/finish", "");
    for _ in 0..2000 {
        if handle.stats().finished {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    // The trace round-trips through the Chrome-trace parser and carries
    // both wall-domain shell spans and logical-domain session spans.
    let (head, trace) = http_request(http, "GET", "/trace", "");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let parsed = quill_telemetry::span::parse_chrome_trace(&trace).expect("trace JSON parses");
    let stages: std::collections::BTreeSet<String> =
        parsed.events.iter().map(|e| e.name.clone()).collect();
    for stage in [
        "connection",
        "ingest_decode",
        "buffer_residency",
        "deliver",
        "query",
    ] {
        assert!(stages.contains(stage), "missing {stage} in {stages:?}");
    }

    // Per-stage latency histograms ride the ordinary metrics surface.
    let (_, metrics) = http_request(http, "GET", "/metrics", "");
    for series in ["quill_span_deliver_count", "quill_span_deliver_sum"] {
        assert!(metrics.contains(series), "missing {series}");
    }

    // The SLO burn counter is visible per query.
    let (_, info) = http_request(http, "GET", &format!("/queries/{id}"), "");
    let breaches = info
        .split("\"slo_breaches\":")
        .nth(1)
        .and_then(|s| s.split(&[',', '}'][..]).next())
        .and_then(|s| s.parse::<u64>().ok())
        .expect("slo_breaches exported: {info}");
    assert!(breaches > 0, "unmeetable SLO burns: {info}");

    handle.shutdown();
}

#[test]
fn zero_span_capacity_disables_trace_collection() {
    let config = ServeConfig {
        strategy: StrategySpec::Fixed(500),
        queue_capacity: 256,
        span_capacity: 0,
        ..ServeConfig::default()
    };
    let handle = Server::start(config).expect("server boots");
    let http = handle.http_addr();
    let (_, _) = http_request(http, "POST", "/queries", Q_SUM);
    let frames = fixture(100, 3, 100, 0);
    let mut client = IngestClient::connect(handle.ingest_addr().to_string()).expect("connect");
    for f in &frames {
        client.send(f).expect("send");
    }
    client.finish().expect("close");
    wait_events(&handle, frames.len() as u64);
    let (head, trace) = http_request(http, "GET", "/trace", "");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let parsed = quill_telemetry::span::parse_chrome_trace(&trace).expect("still valid JSON");
    assert_eq!(
        parsed.complete_events().count(),
        0,
        "disabled recorders record nothing"
    );
    handle.shutdown();
}

#[test]
fn malformed_queries_and_frames_are_refused_cleanly() {
    let handle = start_server();
    let (head, body) = http_request(
        handle.http_addr(),
        "POST",
        "/queries",
        "tumbling:abc;sum:0:s",
    );
    assert!(head.starts_with("HTTP/1.1 400"), "{head}");
    assert!(body.contains("error"), "{body}");

    // A garbage ingest line closes that connection but leaves the server up.
    let mut bad = TcpStream::connect(handle.ingest_addr()).expect("connect");
    bad.write_all(b"not-a-timestamp 1 2\n")
        .expect("send garbage");
    drop(bad);
    std::thread::sleep(Duration::from_millis(100));
    let (head, _) = http_request(handle.http_addr(), "GET", "/healthz", "");
    assert!(
        head.starts_with("HTTP/1.1 200"),
        "server survives bad input"
    );
    handle.shutdown();
}

#[test]
fn fast_source_is_backpressured_not_dropped() {
    // A tiny queue with a deliberately slow drain would lose events if the
    // reader shed load; blocking sends mean everything arrives.
    let config = ServeConfig {
        strategy: StrategySpec::Fixed(100),
        queue_capacity: 8,
        ..ServeConfig::default()
    };
    let mut handle = Server::start(config).expect("boot");
    let id = handle.register("tumbling:100;count:0:n").expect("register");
    let frames = fixture(3_000, 99, 200, 0);
    let mut client = IngestClient::connect(handle.ingest_addr().to_string()).expect("connect");
    for f in &frames {
        client.send(f).expect("send");
    }
    client.finish().expect("close");
    wait_events(&handle, frames.len() as u64);
    handle.finish();
    assert_eq!(handle.stats().events, frames.len() as u64, "nothing shed");
    assert!(!handle.poll(id).expect("poll").is_empty());
    handle.shutdown();
}
