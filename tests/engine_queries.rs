//! Engine-level query integration: multi-stage pipelines, keyed windows,
//! joins and merges over generated data.

use quill_engine::prelude::*;
use quill_gen::workload::{soccer, stock};
use quill_integration::uniform_disordered;

#[test]
fn keyed_sliding_windows_over_stock_stream() {
    let cfg = stock::StockConfig::default();
    let stream = stock::generate(&cfg, 10_000, 55);
    let op = WindowAggregateOp::new(
        WindowSpec::sliding(4_000u64, 2_000u64),
        vec![
            AggregateSpec::new(AggregateKind::Mean, stock::PRICE_FIELD, "mean_price"),
            AggregateSpec::new(AggregateKind::Count, stock::PRICE_FIELD, "n"),
        ],
        Some(stock::SYMBOL_FIELD),
        LatePolicy::Drop,
    )
    .expect("valid op");
    // Order via a big fixed buffer so the engine sees clean watermarks.
    let mut buffer = quill_core::prelude::FixedKSlack::new(100_000u64);
    let mut elements = Vec::new();
    for e in &stream.events {
        quill_core::prelude::DisorderControl::on_event(&mut buffer, e.clone(), &mut elements);
    }
    quill_core::prelude::DisorderControl::finish(&mut buffer, &mut elements);
    let mut pipeline = Pipeline::new().window_aggregate(op);
    let out = pipeline.run_collect(elements);
    let results: Vec<WindowResult> = out
        .iter()
        .filter_map(|e| e.as_event())
        .filter_map(|e| WindowResult::from_row(&e.row))
        .collect();
    assert!(!results.is_empty());
    // Every result's count is positive and the keyed mean is a sane price.
    for r in &results {
        assert!(r.count > 0);
        let mean = r.aggregates[0].as_f64().expect("numeric mean");
        assert!((1.0..10_000.0).contains(&mean), "price {mean} out of range");
    }
    // Hot symbol 0 must appear in many windows (Zipf skew).
    let hot = results.iter().filter(|r| r.key == Value::Int(0)).count();
    assert!(hot >= results.len() / (cfg.symbols * 2));
}

#[test]
fn interval_join_correlates_two_sensor_streams() {
    // Join each player's readings with themselves offset in time: left
    // stream = player positions, right = same players 1s later; every left
    // event should find its +1s sibling within the bound.
    let stream = soccer::generate(&soccer::SoccerConfig::default(), 2_000, 66);
    let left: Vec<StreamElement> = stream
        .events
        .iter()
        .cloned()
        .map(StreamElement::Event)
        .chain([StreamElement::Flush])
        .collect();
    let right: Vec<StreamElement> = stream
        .events
        .iter()
        .cloned()
        .map(|mut e| {
            e.ts += TimeDelta(1_000);
            StreamElement::Event(e)
        })
        .chain([StreamElement::Flush])
        .collect();
    let join = IntervalJoin::new(soccer::PLAYER_FIELD, soccer::PLAYER_FIELD, 0u64, 1_000u64);
    let (out, stats) = join.run(left, right);
    assert!(stats.matches > 0);
    // All matched rows concatenate both schemas.
    let width = stream.schema.len() * 2;
    for e in out.iter().filter_map(|e| e.as_event()).take(20) {
        assert_eq!(e.row.len(), width);
        // Same player on both sides.
        assert_eq!(
            e.row.get(soccer::PLAYER_FIELD),
            e.row.get(soccer::PLAYER_FIELD + stream.schema.len())
        );
    }
}

#[test]
fn merge_by_arrival_feeds_window_operator_correctly() {
    // Two half-rate sources with interleaved seqs; merged stream must give
    // identical window counts to a single-source run.
    let events = uniform_disordered(2_000, 5, 100, 44);
    let a: Vec<StreamElement> = events
        .iter()
        .filter(|e| e.seq % 2 == 0)
        .cloned()
        .map(StreamElement::Event)
        .chain([StreamElement::Flush])
        .collect();
    let b: Vec<StreamElement> = events
        .iter()
        .filter(|e| e.seq % 2 == 1)
        .cloned()
        .map(StreamElement::Event)
        .chain([StreamElement::Flush])
        .collect();
    let merged = merge_by_arrival(vec![a, b]);
    let count_windows = |input: Vec<StreamElement>| {
        let mut op = WindowAggregateOp::new(
            WindowSpec::tumbling(500u64),
            vec![AggregateSpec::new(AggregateKind::Count, 0, "n")],
            None,
            LatePolicy::Drop,
        )
        .expect("valid op");
        let mut results = Vec::new();
        for el in input {
            op.process(el, &mut |o| {
                if let StreamElement::Event(e) = o {
                    if let Some(r) = WindowResult::from_row(&e.row) {
                        results.push((r.window, r.count));
                    }
                }
            });
        }
        results
    };
    let direct: Vec<StreamElement> = events
        .iter()
        .cloned()
        .map(StreamElement::Event)
        .chain([StreamElement::Flush])
        .collect();
    assert_eq!(count_windows(merged), count_windows(direct));
}

#[test]
fn revise_policy_converges_to_oracle_counts() {
    // With unlimited lateness, first emissions + revisions must end at the
    // oracle's per-window counts even under heavy disorder and K=0.
    let events = uniform_disordered(3_000, 10, 1_000, 45);
    let mut op = WindowAggregateOp::new(
        WindowSpec::tumbling(500u64),
        vec![AggregateSpec::new(AggregateKind::Count, 0, "n")],
        None,
        LatePolicy::Revise {
            allowed_lateness: u64::MAX / 2,
        },
    )
    .expect("valid op");
    let mut latest: std::collections::BTreeMap<Window, u64> = Default::default();
    let drive = |el: StreamElement,
                 op: &mut WindowAggregateOp,
                 latest: &mut std::collections::BTreeMap<Window, u64>| {
        let mut outs = Vec::new();
        op.process(el, &mut |o| outs.push(o));
        for o in outs {
            if let StreamElement::Event(e) = o {
                if let Some(r) = WindowResult::from_row(&e.row) {
                    latest.insert(r.window, r.count);
                }
            }
        }
    };
    // K = 0 ordering: feed raw arrival order with per-event watermarks.
    let mut clock = 0u64;
    for e in &events {
        clock = clock.max(e.ts.raw());
        drive(StreamElement::Event(e.clone()), &mut op, &mut latest);
        drive(
            StreamElement::Watermark(Timestamp(clock)),
            &mut op,
            &mut latest,
        );
    }
    drive(StreamElement::Flush, &mut op, &mut latest);

    let oracle = quill_metrics::oracle_results(
        &events,
        WindowSpec::tumbling(500u64),
        &[AggregateSpec::new(AggregateKind::Count, 0, "n")],
        None,
    );
    for truth in &oracle {
        assert_eq!(
            latest.get(&truth.window),
            Some(&truth.count),
            "window {} did not converge",
            truth.window
        );
    }
}
