//! Shared helpers for quill integration tests.

#![forbid(unsafe_code)]

use quill_core::prelude::*;
use quill_engine::aggregate::{AggregateKind, AggregateSpec};
use quill_engine::prelude::{Event, Row, Value, WindowSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A controlled disordered stream: events every `period`, uniform delays in
/// `[0, max_delay]`, payload = f64(ts).
pub fn uniform_disordered(n: u64, period: u64, max_delay: u64, seed: u64) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arrivals: Vec<(u64, u64)> = (0..n)
        .map(|i| {
            let ts = i * period;
            (ts + rng.gen_range(0..=max_delay), ts)
        })
        .collect();
    arrivals.sort();
    arrivals
        .into_iter()
        .enumerate()
        .map(|(seq, (_, ts))| Event::new(ts, seq as u64, Row::new([Value::Float(ts as f64)])))
        .collect()
}

/// The standard test query: global mean over tumbling windows.
pub fn mean_query(window: u64) -> QuerySpec {
    QuerySpec::new(
        WindowSpec::tumbling(window),
        vec![AggregateSpec::new(AggregateKind::Mean, 0, "mean")],
        None,
    )
}

/// Multi-aggregate query exercising constant-space and order-statistic
/// aggregates together.
pub fn rich_query(window: u64) -> QuerySpec {
    QuerySpec::new(
        WindowSpec::sliding(window, window / 2),
        vec![
            AggregateSpec::new(AggregateKind::Count, 0, "n"),
            AggregateSpec::new(AggregateKind::Sum, 0, "sum"),
            AggregateSpec::new(AggregateKind::Median, 0, "median"),
            AggregateSpec::new(AggregateKind::Quantile(0.9), 0, "p90"),
            AggregateSpec::new(AggregateKind::Min, 0, "min"),
            AggregateSpec::new(AggregateKind::Max, 0, "max"),
        ],
        None,
    )
}
