//! Shared helpers for quill integration tests.
//!
//! The actual bodies live in [`quill_sim::support`] so the simulation
//! harness and the integration tests exercise exactly the same streams,
//! queries, and strategy roster; this module only re-exports them under the
//! historical `quill_integration` paths.

#![forbid(unsafe_code)]

pub use quill_sim::support::{
    all_strategies, drive, mean_query, rich_query, tuple_completeness, uniform_disordered,
};
