//! Cross-strategy invariants on generated workloads: ordering soundness,
//! event accounting, and the quality/latency dominance relations the
//! strategies are designed around.

use quill_core::prelude::*;
use quill_gen::workload::standard_suite;
use quill_integration::{all_strategies, drive, mean_query, uniform_disordered};

#[test]
fn every_strategy_preserves_every_event_exactly_once() {
    for w in standard_suite() {
        let stream = (w.generate)(3_000, 77);
        for mut s in all_strategies() {
            let out = drive(s.as_mut(), &stream.events);
            let mut seqs: Vec<u64> = out
                .iter()
                .filter_map(|e| e.as_event())
                .map(|e| e.seq)
                .collect();
            seqs.sort_unstable();
            let expected: Vec<u64> = (0..stream.events.len() as u64).collect();
            assert_eq!(seqs, expected, "{} / {}", w.name, s.name());
        }
    }
}

#[test]
fn watermarks_are_monotone_and_late_events_are_flagged_consistently() {
    for w in standard_suite() {
        let stream = (w.generate)(3_000, 78);
        for mut s in all_strategies() {
            let out = drive(s.as_mut(), &stream.events);
            let mut wm = 0u64;
            let mut late = 0u64;
            for el in &out {
                match el {
                    StreamElement::Watermark(t) => {
                        assert!(t.raw() >= wm, "{}: watermark regressed", s.name());
                        wm = t.raw();
                    }
                    StreamElement::Event(e) => {
                        if e.ts.raw() < wm {
                            late += 1;
                        }
                    }
                    StreamElement::Flush => {}
                }
            }
            assert_eq!(
                late,
                s.buffer_stats().late_passed,
                "{} / {}: late accounting mismatch",
                w.name,
                s.name()
            );
        }
    }
}

#[test]
fn non_late_releases_are_timestamp_ordered() {
    for w in standard_suite() {
        let stream = (w.generate)(3_000, 79);
        for mut s in all_strategies() {
            let out = drive(s.as_mut(), &stream.events);
            // Filter out late passes (events behind the watermark at their
            // emission point); the rest must be globally (ts, seq) ordered.
            let mut wm = 0u64;
            let mut last: Option<(u64, u64)> = None;
            for el in &out {
                match el {
                    StreamElement::Watermark(t) => wm = t.raw(),
                    StreamElement::Event(e) => {
                        if e.ts.raw() >= wm {
                            let key = (e.ts.raw(), e.seq);
                            if let Some(prev) = last {
                                assert!(
                                    key >= prev,
                                    "{} / {}: out-of-order release {key:?} after {prev:?}",
                                    w.name,
                                    s.name()
                                );
                            }
                            last = Some(key);
                        }
                    }
                    StreamElement::Flush => {}
                }
            }
        }
    }
}

#[test]
fn oracle_output_equals_sorted_input() {
    let events = uniform_disordered(2_000, 10, 500, 80);
    let mut s = OracleBuffer::new();
    let out = drive(&mut s, &events);
    let released: Vec<(u64, u64)> = out
        .iter()
        .filter_map(|e| e.as_event())
        .map(|e| (e.ts.raw(), e.seq))
        .collect();
    let mut expected: Vec<(u64, u64)> = events.iter().map(|e| (e.ts.raw(), e.seq)).collect();
    expected.sort_unstable();
    assert_eq!(released, expected);
}

#[test]
fn bounded_mp_trades_quality_for_bounded_latency() {
    let events = uniform_disordered(20_000, 10, 2_000, 81);
    let query = mean_query(1_000);
    let mut unbounded = MpKSlack::new();
    let mut bounded = MpKSlack::bounded(200u64);
    let u =
        execute(&events, &mut unbounded, &query, &ExecOptions::sequential()).expect("valid query");
    let b =
        execute(&events, &mut bounded, &query, &ExecOptions::sequential()).expect("valid query");
    assert!(b.latency.mean < u.latency.mean);
    assert!(b.quality.mean_completeness <= u.quality.mean_completeness);
    assert!(u.quality.mean_completeness > 0.999);
}

#[test]
fn fixed_k_completeness_matches_disorder_cdf_prediction() {
    // The open-loop model: a tuple is on time iff its *disorder delay*
    // (running-max timestamp at arrival minus its own) is at most K, so the
    // on-time fraction should match the empirical disorder-delay CDF at K.
    // (Note: the disorder delay is NOT the transport delay — in-order
    // arrivals have disorder delay 0 no matter how slow the transport.)
    let events = uniform_disordered(40_000, 10, 400, 82);
    let k = 200u64;
    let mut clock = 0u64;
    let mut within_k = 0u64;
    for e in &events {
        if clock.saturating_sub(e.ts.raw()) <= k {
            within_k += 1;
        }
        clock = clock.max(e.ts.raw());
    }
    let predicted = within_k as f64 / events.len() as f64;

    let query = mean_query(2_000);
    let mut s = FixedKSlack::new(k);
    let out = execute(&events, &mut s, &query, &ExecOptions::sequential()).expect("valid query");
    let on_time_fraction =
        1.0 - out.buffer.late_passed as f64 / (out.buffer.late_passed + out.buffer.released) as f64;
    assert!(
        (on_time_fraction - predicted).abs() < 0.08,
        "on-time fraction {on_time_fraction} vs CDF prediction {predicted}"
    );
    // Window completeness dominates the tuple-level on-time rate: an event
    // behind the buffer watermark can still land in a (long) window whose
    // end has not passed yet, so it is late for ordering purposes but not
    // for this window. This is also why AQ's on-time proxy is conservative.
    assert!(out.quality.mean_completeness >= on_time_fraction - 0.02);
}

#[test]
fn aq_violation_rate_decreases_with_target_headroom() {
    let stream = quill_gen::workload::synthetic::exponential(30_000, 10, 100.0, 83);
    let query = mean_query(1_000);
    let mut strict = AqKSlack::for_completeness(0.999);
    let strict_out = execute(
        &stream.events,
        &mut strict,
        &query,
        &ExecOptions::sequential(),
    )
    .expect("valid query");
    let mut loose = AqKSlack::for_completeness(0.8);
    let loose_out = execute(
        &stream.events,
        &mut loose,
        &query,
        &ExecOptions::sequential(),
    )
    .expect("valid query");
    // Violations measured against each run's own target.
    let strict_viol = strict_out.quality.violation_rate(0.999);
    let loose_viol = loose_out.quality.violation_rate(0.8);
    // The loose run should have comparable-or-fewer violations against its
    // own much-easier bar, at lower latency.
    assert!(loose_out.latency.mean < strict_out.latency.mean);
    assert!(loose_viol <= strict_viol + 0.2);
}
