//! Trace persistence: captured streams replay bit-identically, and replayed
//! streams produce identical experiment results.

use quill_core::prelude::*;
use quill_engine::aggregate::{AggregateKind, AggregateSpec};
use quill_engine::prelude::WindowSpec;
use quill_gen::trace;
use quill_gen::workload::{netmon, soccer, stock, synthetic};

#[test]
fn all_workloads_roundtrip_through_the_trace_format() {
    let streams = vec![
        synthetic::exponential(2_000, 10, 100.0, 1),
        synthetic::pareto(2_000, 10, 200.0, 3.0, 2),
        soccer::generate(&soccer::SoccerConfig::default(), 2_000, 3),
        stock::generate(&stock::StockConfig::default(), 2_000, 4),
        netmon::generate(&netmon::NetmonConfig::default(), 2_000, 5),
    ];
    for s in streams {
        let decoded = trace::decode(&trace::encode(&s)).expect("decodes");
        assert_eq!(decoded.schema, s.schema);
        assert_eq!(decoded.events, s.events);
        assert_eq!(decoded.stats, s.stats);
    }
}

#[test]
fn replayed_trace_reproduces_run_results_exactly() {
    let stream = stock::generate(&stock::StockConfig::default(), 5_000, 6);
    let dir = std::env::temp_dir().join("quill_it_trace");
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("stock.trace");
    trace::save(&stream, &path).expect("saves");
    let replayed = trace::load(&path).expect("loads");

    let query = QuerySpec::new(
        WindowSpec::tumbling(2_000u64),
        vec![AggregateSpec::new(
            AggregateKind::Mean,
            stock::PRICE_FIELD,
            "mean",
        )],
        Some(stock::SYMBOL_FIELD),
    );
    // Deterministic strategy → identical results on original and replay.
    let mut s1 = FixedKSlack::new(300u64);
    let mut s2 = FixedKSlack::new(300u64);
    let out1 =
        execute(&stream.events, &mut s1, &query, &ExecOptions::sequential()).expect("valid query");
    let out2 = execute(
        &replayed.events,
        &mut s2,
        &query,
        &ExecOptions::sequential(),
    )
    .expect("valid query");
    assert_eq!(out1.results, out2.results);
    assert_eq!(
        out1.quality.mean_completeness,
        out2.quality.mean_completeness
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn aq_is_deterministic_on_a_replayed_trace() {
    let stream = synthetic::exponential(10_000, 10, 80.0, 7);
    let replayed = trace::decode(&trace::encode(&stream)).expect("decodes");
    let query = QuerySpec::new(
        WindowSpec::tumbling(500u64),
        vec![AggregateSpec::new(AggregateKind::Sum, 0, "sum")],
        None,
    );
    let mut a = AqKSlack::for_completeness(0.95);
    let mut b = AqKSlack::for_completeness(0.95);
    let out_a =
        execute(&stream.events, &mut a, &query, &ExecOptions::sequential()).expect("valid query");
    let out_b =
        execute(&replayed.events, &mut b, &query, &ExecOptions::sequential()).expect("valid query");
    assert_eq!(out_a.results, out_b.results);
    assert_eq!(a.current_k(), b.current_k());
}
