//! Statistical guarantees: under stationary delay distributions, AQ-K-slack's
//! long-run achieved quality must sit at (or above, minus a small tolerance)
//! the user's target — across targets and delay families. These are the
//! load-bearing claims of the reconstruction (DESIGN.md §4 invariants).

use quill_core::prelude::*;
use quill_gen::source::GeneratedStream;
use quill_gen::workload::synthetic;
use quill_integration::{mean_query, tuple_completeness};

fn query() -> QuerySpec {
    mean_query(1_000)
}

fn check_target(stream: &GeneratedStream, q: f64, tolerance: f64, label: &str) {
    let mut aq = AqKSlack::for_completeness(q);
    let out = execute(
        &stream.events,
        &mut aq,
        &query(),
        &ExecOptions::sequential(),
    )
    .expect("valid query");
    let achieved = tuple_completeness(&out);
    assert!(
        achieved >= q - tolerance,
        "{label} q={q}: achieved tuple completeness {achieved:.4} below target - {tolerance}"
    );
    // Window-level completeness should track tuple level closely.
    assert!(
        out.quality.mean_completeness >= q - tolerance - 0.02,
        "{label} q={q}: window completeness {:.4} too low",
        out.quality.mean_completeness
    );
}

#[test]
fn targets_hold_under_exponential_delays() {
    let stream = synthetic::exponential(50_000, 10, 100.0, 1001);
    for &q in &[0.85, 0.95, 0.99] {
        check_target(&stream, q, 0.03, "exp");
    }
}

#[test]
fn targets_hold_under_uniform_delays() {
    let stream = synthetic::uniform(50_000, 10, 0, 500, 1002);
    for &q in &[0.9, 0.99] {
        check_target(&stream, q, 0.03, "uniform");
    }
}

#[test]
fn targets_hold_under_heavy_tailed_delays() {
    // Pareto tails are the hard case: the quantile estimate is noisy. Allow
    // a slightly wider tolerance.
    let stream = synthetic::pareto(50_000, 10, 200.0, 3.0, 1003);
    for &q in &[0.9, 0.95] {
        check_target(&stream, q, 0.04, "pareto");
    }
}

#[test]
fn latency_scales_with_the_delay_quantile_not_the_max() {
    // Structural property: for q = 0.9 on exp(100), AQ's mean latency must
    // be within a small factor of F⁻¹(0.9) ≈ 230, and far below the max
    // delay (which grows with stream length).
    let stream = synthetic::exponential(50_000, 10, 100.0, 1004);
    let mut aq = AqKSlack::for_completeness(0.9);
    let out = execute(
        &stream.events,
        &mut aq,
        &query(),
        &ExecOptions::sequential(),
    )
    .expect("valid query");
    let f_inv = 230.0;
    assert!(
        out.mean_k < f_inv * 2.5,
        "mean K {} should be near F⁻¹(0.9) ≈ {f_inv}",
        out.mean_k
    );
    assert!(
        (out.mean_k as f64) < stream.stats.max_delay.raw() as f64 / 2.0,
        "mean K {} should be far below max delay {}",
        out.mean_k,
        stream.stats.max_delay
    );
}

#[test]
fn error_targets_bound_the_achieved_aggregate_error() {
    let stream = synthetic::exponential(50_000, 10, 100.0, 1005);
    for &eps in &[0.02, 0.05] {
        let mut aq = AqKSlack::new(AqConfig::max_rel_error(eps, 0));
        let out = execute(
            &stream.events,
            &mut aq,
            &query(),
            &ExecOptions::sequential(),
        )
        .expect("valid query");
        // Mean achieved relative error must respect the budget with modest
        // slack (the sensitivity model is conservative in expectation).
        assert!(
            out.quality.mean_rel_error[0] <= eps * 1.5,
            "eps={eps}: mean rel error {} blew the budget",
            out.quality.mean_rel_error[0]
        );
    }
}

#[test]
fn tighter_targets_cost_monotonically_more_latency() {
    let stream = synthetic::exponential(40_000, 10, 100.0, 1006);
    let mut last_latency = 0.0;
    for &q in &[0.8, 0.9, 0.99, 0.999] {
        let mut aq = AqKSlack::for_completeness(q);
        let out = execute(
            &stream.events,
            &mut aq,
            &query(),
            &ExecOptions::sequential(),
        )
        .expect("valid query");
        assert!(
            out.latency.mean >= last_latency * 0.8,
            "latency not (weakly) increasing at q={q}: {} after {last_latency}",
            out.latency.mean
        );
        last_latency = out.latency.mean;
    }
}

#[test]
fn quality_recovers_after_a_burst_regime() {
    // Markov-burst delays: long-run achieved quality still near target.
    use quill_gen::delay::{Constant, MarkovBurst, Pareto};
    let mut delay = MarkovBurst::new(
        Box::new(Constant(10)),
        Box::new(Pareto {
            scale: 2_000.0,
            shape: 2.5,
        }),
        0.02,
        0.10,
    );
    let stream = synthetic::with_delay(60_000, 10, &mut delay, 1007);
    let mut aq = AqKSlack::for_completeness(0.9);
    let out = execute(
        &stream.events,
        &mut aq,
        &query(),
        &ExecOptions::sequential(),
    )
    .expect("valid query");
    let achieved = tuple_completeness(&out);
    assert!(
        achieved >= 0.85,
        "bursty achieved {achieved} too far below 0.9"
    );
    // And it must not pay MP's price for it.
    let mut mp = MpKSlack::new();
    let mp_out = execute(
        &stream.events,
        &mut mp,
        &query(),
        &ExecOptions::sequential(),
    )
    .expect("valid query");
    assert!(out.latency.mean < mp_out.latency.mean);
}
