//! The session API's equivalence contract, across crates: a resident
//! [`Session`] fed by `push` must produce element-identical results to the
//! batch paths (`execute`, `execute_shared`) for queries registered before
//! the first event, under every strategy family.

use quill_core::prelude::*;
use quill_gen::workload::netmon::{self, NetmonConfig};

fn queries() -> Vec<QuerySpec> {
    vec![
        QuerySpec::new(
            WindowSpec::tumbling(1_000u64),
            vec![
                AggregateSpec::new(AggregateKind::Sum, netmon::BYTES_FIELD, "bytes"),
                AggregateSpec::new(AggregateKind::Count, netmon::BYTES_FIELD, "n"),
            ],
            Some(netmon::HOST_FIELD),
        ),
        QuerySpec::new(
            WindowSpec::sliding(2_000u64, 500u64),
            vec![AggregateSpec::new(
                AggregateKind::Mean,
                netmon::BYTES_FIELD,
                "mean",
            )],
            None,
        ),
    ]
}

fn strategy_builders() -> Vec<fn() -> Box<dyn DisorderControl>> {
    fn fixed() -> Box<dyn DisorderControl> {
        Box::new(FixedKSlack::new(400u64))
    }
    fn mp() -> Box<dyn DisorderControl> {
        Box::new(MpKSlack::new())
    }
    fn aq() -> Box<dyn DisorderControl> {
        Box::new(AqKSlack::for_completeness(0.95))
    }
    vec![fixed, mp, aq]
}

#[test]
fn session_matches_batch_execute_per_strategy() {
    let stream = netmon::generate(&NetmonConfig::default(), 5_000, 11);
    for build in strategy_builders() {
        let name = build().name();
        for query in &queries() {
            let mut fresh = build();
            let batch = execute(
                &stream.events,
                fresh.as_mut(),
                query,
                &ExecOptions::default(),
            )
            .expect("batch run");

            let mut session = Session::new(build());
            let handle = session.register(query).expect("registers");
            for e in &stream.events {
                session.push(e.clone());
            }
            session.finish();
            let served = handle.poll();
            assert_eq!(
                served, batch.results,
                "session diverges from execute under {name}"
            );
        }
    }
}

#[test]
fn session_matches_execute_shared_fanout() {
    let stream = netmon::generate(&NetmonConfig::default(), 5_000, 23);
    let queries = queries();
    let mut strategy = AqKSlack::for_completeness(0.9);
    let shared = execute_shared(
        &stream.events,
        &mut strategy,
        &queries,
        &ExecOptions::default(),
    )
    .expect("shared run");

    let mut session = Session::new(Box::new(AqKSlack::for_completeness(0.9)));
    let handles: Vec<QueryHandle> = queries
        .iter()
        .map(|q| session.register(q).expect("registers"))
        .collect();
    for e in &stream.events {
        session.push(e.clone());
    }
    session.finish();

    for (handle, per_query) in handles.iter().zip(shared.per_query.iter()) {
        assert_eq!(
            handle.poll(),
            per_query.results,
            "session fan-out diverges from execute_shared for query {}",
            per_query.query_index
        );
    }
}

#[test]
fn midstream_registration_sees_only_later_elements() {
    let stream = netmon::generate(&NetmonConfig::default(), 4_000, 37);
    let query = &queries()[0];
    let mut session = Session::new(Box::new(FixedKSlack::new(300u64)));
    let early = session.register(query).expect("registers");
    for e in &stream.events[..2_000] {
        session.push(e.clone());
    }
    let late = session.register(query).expect("registers mid-stream");
    for e in &stream.events[2_000..] {
        session.push(e.clone());
    }
    session.finish();

    let early_results = early.poll();
    let late_results = late.poll();
    assert!(
        late_results.len() < early_results.len(),
        "late subscriber must miss already-staged windows ({} vs {})",
        late_results.len(),
        early_results.len()
    );
    // Every window the late subscriber saw, the early one saw too (it may
    // differ in counts only for the window spanning the registration point).
    let early_windows: Vec<_> = early_results
        .iter()
        .map(|r| (r.window, r.key.clone()))
        .collect();
    for r in &late_results {
        assert!(
            early_windows.contains(&(r.window, r.key.clone())),
            "late subscriber invented window {:?}",
            r.window
        );
    }
}

#[test]
fn deregistration_detaches_without_disturbing_others() {
    let stream = netmon::generate(&NetmonConfig::default(), 3_000, 5);
    let qs = queries();
    let mut session = Session::new(Box::new(FixedKSlack::new(300u64)));
    let keeper = session.register(&qs[0]).expect("registers");
    let leaver = session.register(&qs[1]).expect("registers");
    for e in &stream.events[..1_500] {
        session.push(e.clone());
    }
    let stats = session.deregister(leaver.id()).expect("deregisters");
    assert!(stats.closed, "final stats are closed");
    assert!(leaver.is_closed(), "handle observes closure");
    assert!(
        session.deregister(leaver.id()).is_err(),
        "double deregister"
    );
    for e in &stream.events[1_500..] {
        session.push(e.clone());
    }
    session.finish();

    // The surviving query matches a solo batch run exactly.
    let batch = execute(
        &stream.events,
        &mut FixedKSlack::new(300u64),
        &qs[0],
        &ExecOptions::default(),
    )
    .expect("batch");
    assert_eq!(keeper.poll(), batch.results);
}

#[test]
fn bounded_subscriptions_drop_oldest_and_account_for_it() {
    let stream = netmon::generate(&NetmonConfig::default(), 5_000, 77);
    let query = &queries()[0];
    let mut session = Session::new(Box::new(FixedKSlack::new(300u64)));
    let handle = session
        .register_with(query, QueryConfig::default().with_result_capacity(4))
        .expect("registers");
    for e in &stream.events {
        session.push(e.clone());
    }
    session.finish();
    let stats = handle.stats();
    let pending = handle.poll();
    assert!(pending.len() <= 4, "capacity bounds the queue");
    assert!(stats.overflow_dropped > 0, "unpolled results were evicted");
    assert_eq!(
        stats.emitted,
        stats.overflow_dropped + pending.len() as u64,
        "every emitted result is either delivered or accounted as dropped"
    );
    // The survivors are exactly the *newest* results of an unbounded run.
    let reference = execute(
        &stream.events,
        &mut FixedKSlack::new(300u64),
        query,
        &ExecOptions::default(),
    )
    .expect("batch");
    let tail = &reference.results[reference.results.len() - pending.len()..];
    assert_eq!(pending, tail, "drop-oldest keeps the newest window results");
}

#[test]
fn concurrent_poll_overflow_and_latency_reconcile_with_spans() {
    use quill_telemetry::{SpanRecorder, Stage};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let stream = netmon::generate(&NetmonConfig::default(), 5_000, 99);
    let query = &queries()[0];
    let spans = SpanRecorder::new(1 << 20); // never evicts in this run
    let mut session = Session::new(Box::new(FixedKSlack::new(300u64))).with_spans(&spans);
    let handle = session
        .register_with(query, QueryConfig::default().with_result_capacity(8))
        .expect("registers");

    // A consumer polls concurrently with the producer: polled results and
    // overflow evictions race, but the accounting identity must hold.
    let done = Arc::new(AtomicBool::new(false));
    let consumer = {
        let handle = handle.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut polled = 0u64;
            while !done.load(Ordering::SeqCst) {
                polled += handle.poll().len() as u64;
                std::thread::yield_now();
            }
            polled + handle.poll().len() as u64
        })
    };
    for e in &stream.events {
        session.push(e.clone());
    }
    session.finish();
    done.store(true, Ordering::SeqCst);
    let polled = consumer.join().expect("consumer joins");

    let stats = handle.stats();
    assert!(stats.emitted > 0);
    assert_eq!(
        stats.emitted,
        polled + stats.overflow_dropped,
        "every result was either polled or accounted as evicted"
    );

    // Span-derived end-to-end latency is the same population the session's
    // recorder saw: counts match exactly, means reconcile, and the
    // recorder's approximate quantiles are bracketed by the exact span
    // distribution.
    let deliver: Vec<u64> = spans
        .spans()
        .iter()
        .filter(|s| s.stage == Stage::Deliver)
        .map(|s| s.duration())
        .collect();
    assert_eq!(deliver.len() as u64, stats.emitted);
    let exact_mean = deliver.iter().sum::<u64>() as f64 / deliver.len() as f64;
    assert!(
        (exact_mean - stats.mean_latency).abs() <= 1e-6 * exact_mean.max(1.0),
        "span mean {exact_mean} vs recorded {}",
        stats.mean_latency
    );
    let mut sorted = deliver.clone();
    sorted.sort_unstable();
    let (min, max) = (sorted[0], sorted[sorted.len() - 1]);
    for q in [0.5, 0.9, 0.99] {
        let approx = handle.latency_quantile(q).expect("quantile available");
        assert!(
            approx >= min && approx as f64 <= max as f64 * 1.05 + 1.0,
            "q{q} = {approx} outside span-derived range [{min}, {max}]"
        );
    }
}

#[test]
fn session_telemetry_reports_merge_windows_and_query_gauge() {
    let stream = netmon::generate(&NetmonConfig::default(), 2_000, 3);
    let registry = Registry::new();
    let mut session = Session::new(Box::new(FixedKSlack::new(300u64))).with_telemetry(&registry);
    let q = &queries()[0];
    let _a = session.register(q).expect("registers");
    let _b = session.register(&queries()[1]).expect("registers");
    for e in &stream.events {
        session.push(e.clone());
    }
    session.finish();
    let snap = registry.snapshot();
    assert!(snap.counter("quill.merge.windows") > 0, "windows merged");
    assert_eq!(snap.counter("quill.run.events"), 2_000);
    assert_eq!(snap.gauge("quill.session.queries"), Some(2.0));
}
