//! Adversarial inputs and failure injection: extreme timestamps, degenerate
//! payloads, pathological arrival orders. Nothing here should panic, lose
//! events silently, or break the accounting invariants.

use quill_core::prelude::*;

fn sum_query(window: u64) -> QuerySpec {
    QuerySpec::new(
        WindowSpec::tumbling(window),
        vec![
            AggregateSpec::new(AggregateKind::Sum, 0, "sum"),
            AggregateSpec::new(AggregateKind::Median, 0, "median"),
        ],
        None,
    )
}

fn all_strategies() -> Vec<Box<dyn DisorderControl>> {
    vec![
        Box::new(DropAll::new()),
        Box::new(FixedKSlack::new(100u64)),
        Box::new(MpKSlack::new()),
        Box::new(AqKSlack::for_completeness(0.95)),
        Box::new(OracleBuffer::new()),
    ]
}

#[test]
fn empty_stream_is_fine_everywhere() {
    for mut s in all_strategies() {
        let out = execute(&[], s.as_mut(), &sum_query(100), &ExecOptions::sequential())
            .expect("valid query");
        assert_eq!(out.events, 0);
        assert_eq!(out.quality.windows_total, 0);
        assert_eq!(out.quality.mean_completeness, 1.0);
    }
}

#[test]
fn single_event_stream() {
    let events = vec![Event::new(5u64, 0, Row::new([Value::Float(1.5)]))];
    for mut s in all_strategies() {
        let out = execute(
            &events,
            s.as_mut(),
            &sum_query(100),
            &ExecOptions::sequential(),
        )
        .expect("valid query");
        assert_eq!(out.quality.windows_total, 1, "{}", out.strategy);
        assert_eq!(out.quality.mean_completeness, 1.0, "{}", out.strategy);
    }
}

#[test]
fn exactly_reversed_arrival_order() {
    // Worst-case disorder: newest first. Only the oracle can be complete;
    // everything else must survive with exact event accounting.
    let n = 2_000u64;
    let events: Vec<Event> = (0..n)
        .map(|i| Event::new((n - 1 - i) * 10, i, Row::new([Value::Float(1.0)])))
        .collect();
    for mut s in all_strategies() {
        let out = execute(
            &events,
            s.as_mut(),
            &sum_query(500),
            &ExecOptions::sequential(),
        )
        .expect("valid query");
        let b = out.buffer;
        assert_eq!(b.released + b.late_passed, n, "{}", out.strategy);
        if out.strategy == "oracle" {
            assert_eq!(out.quality.mean_completeness, 1.0);
        }
    }
    // MP on reversed order: first event sets the clock; every subsequent
    // event has a growing delay, so K ratchets to ~the full span.
    let mut mp = MpKSlack::new();
    let _ = execute(
        &events,
        &mut mp,
        &sum_query(500),
        &ExecOptions::sequential(),
    )
    .expect("valid query");
    assert!(mp.current_k() >= TimeDelta((n - 2) * 10));
}

#[test]
fn all_identical_timestamps() {
    let events: Vec<Event> = (0..1_000)
        .map(|i| Event::new(42u64, i, Row::new([Value::Float(1.0)])))
        .collect();
    for mut s in all_strategies() {
        let out = execute(
            &events,
            s.as_mut(),
            &sum_query(100),
            &ExecOptions::sequential(),
        )
        .expect("valid query");
        assert_eq!(out.quality.windows_total, 1, "{}", out.strategy);
        assert_eq!(
            out.quality.mean_completeness, 1.0,
            "{}: identical timestamps are never late",
            out.strategy
        );
    }
}

#[test]
fn all_null_payloads() {
    let events: Vec<Event> = (0..500)
        .map(|i| Event::new(i * 10, i, Row::new([Value::Null])))
        .collect();
    let mut s = FixedKSlack::new(50u64);
    let out = execute(
        &events,
        &mut s,
        &sum_query(1_000),
        &ExecOptions::sequential(),
    )
    .expect("valid query");
    assert!(out.quality.windows_total > 0);
    for r in &out.results {
        assert_eq!(r.aggregates[0], Value::Null, "sum of nulls is null");
        assert_eq!(r.aggregates[1], Value::Null, "median of nulls is null");
        assert!(r.count > 0, "null payloads still count as tuples");
    }
}

#[test]
fn rows_with_missing_fields_do_not_panic() {
    // Aggregates referencing out-of-range fields read Null.
    let events: Vec<Event> = (0..100)
        .map(|i| Event::new(i * 5, i, Row::empty()))
        .collect();
    let query = QuerySpec::new(
        WindowSpec::tumbling(100u64),
        vec![AggregateSpec::new(AggregateKind::Mean, 7, "mean")],
        Some(3),
    );
    let mut s = AqKSlack::for_completeness(0.9);
    let out = execute(&events, &mut s, &query, &ExecOptions::sequential()).expect("valid query");
    assert!(out.quality.windows_total > 0);
}

#[test]
fn extreme_timestamps_near_u64_max() {
    let base = u64::MAX - 10_000;
    let events: Vec<Event> = (0..100u64)
        .map(|i| Event::new(base + i * 7, i, Row::new([Value::Float(1.0)])))
        .collect();
    let mut s = FixedKSlack::new(50u64);
    let out = execute(
        &events,
        &mut s,
        &sum_query(1_000),
        &ExecOptions::sequential(),
    )
    .expect("valid query");
    let b = out.buffer;
    assert_eq!(b.released + b.late_passed, 100);
}

#[test]
fn timestamp_zero_events() {
    let events: Vec<Event> = (0..50u64)
        .map(|i| Event::new(0u64, i, Row::new([Value::Float(1.0)])))
        .chain((50..100u64).map(|i| Event::new(i * 3, i, Row::new([Value::Float(1.0)]))))
        .collect();
    for mut s in all_strategies() {
        let out = execute(
            &events,
            s.as_mut(),
            &sum_query(30),
            &ExecOptions::sequential(),
        )
        .expect("valid query");
        let b = out.buffer;
        assert_eq!(b.released + b.late_passed, 100, "{}", out.strategy);
    }
}

#[test]
fn huge_k_bounds_do_not_overflow() {
    let mut cfg = AqConfig::completeness(0.99);
    cfg.k_max = TimeDelta(u64::MAX / 2);
    cfg.k_min = TimeDelta(u64::MAX / 4);
    let mut s = AqKSlack::new(cfg);
    let events: Vec<Event> = (0..500u64)
        .map(|i| Event::new(i * 10, i, Row::new([Value::Float(1.0)])))
        .collect();
    let out =
        execute(&events, &mut s, &sum_query(100), &ExecOptions::sequential()).expect("valid query");
    // With K >= u64::MAX/4 nothing is ever released before flush.
    assert_eq!(out.buffer.late_passed, 0);
    assert_eq!(out.quality.mean_completeness, 1.0);
}

#[test]
fn mixed_type_payloads_in_numeric_aggregates() {
    // Strings and bools in the aggregated field are skipped, not crashed on.
    let events: Vec<Event> = (0..300u64)
        .map(|i| {
            let v = match i % 4 {
                0 => Value::Float(1.0),
                1 => Value::str("noise"),
                2 => Value::Bool(true),
                _ => Value::Int(2),
            };
            Event::new(i * 10, i, Row::new([v]))
        })
        .collect();
    let mut s = OracleBuffer::new();
    let out =
        execute(&events, &mut s, &sum_query(400), &ExecOptions::sequential()).expect("valid query");
    for r in &out.results {
        // Each 40-event window: 10 floats (1.0) + 10 ints (2) = 30.
        if r.count == 40 {
            assert_eq!(r.aggregates[0], Value::Float(30.0));
        }
    }
}

#[test]
fn punctuated_buffer_with_unknown_source_field_degrades_gracefully() {
    // Source field out of range → every event maps to the Null source; the
    // strategy behaves like a single-source punctuation buffer.
    let events: Vec<Event> = (0..200u64)
        .map(|i| Event::new(i * 5, i, Row::new([Value::Float(1.0)])))
        .collect();
    let mut s = PunctuatedBuffer::new(9, 1);
    let out =
        execute(&events, &mut s, &sum_query(100), &ExecOptions::sequential()).expect("valid query");
    assert_eq!(out.buffer.released + out.buffer.late_passed, 200);
}

#[test]
fn session_gap_larger_than_stream_span_yields_one_session() {
    let mut op = SessionWindowOp::new(
        1_000_000u64,
        vec![AggregateSpec::new(AggregateKind::Count, 0, "n")],
        None,
    )
    .expect("valid op");
    let mut results = Vec::new();
    for i in 0..100u64 {
        op.process(
            StreamElement::Event(Event::new(i * 100, i, Row::new([Value::Float(1.0)]))),
            &mut |o| {
                if let StreamElement::Event(e) = o {
                    results.extend(WindowResult::from_row(&e.row));
                }
            },
        );
    }
    op.process(StreamElement::Flush, &mut |o| {
        if let StreamElement::Event(e) = o {
            results.extend(WindowResult::from_row(&e.row));
        }
    });
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].count, 100);
}
