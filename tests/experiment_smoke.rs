//! Smoke test: every reconstructed experiment runs at quick scale, produces
//! artifacts, and persists them.

use quill_bench::{run_experiment, Artifact, ExperimentCtx, ALL_EXPERIMENTS};

#[test]
fn all_experiments_run_and_save_artifacts() {
    let mut ctx = ExperimentCtx::quick();
    ctx.events = 3_000;
    ctx.out_dir = std::env::temp_dir().join("quill_exp_smoke");
    let _ = std::fs::remove_dir_all(&ctx.out_dir);
    for id in ALL_EXPERIMENTS {
        let artifacts = run_experiment(id, &ctx);
        assert!(!artifacts.is_empty(), "{id}: no artifacts");
        for a in &artifacts {
            let rendered = a.save_and_render(&ctx).expect("artifact saves");
            assert!(!rendered.is_empty());
            let (file, min_lines) = match a {
                Artifact::Table { id, .. } => (ctx.out_dir.join(format!("{id}.csv")), 2),
                Artifact::Series { id, .. } => (ctx.out_dir.join(format!("{id}.csv")), 2),
                Artifact::Jsonl { id, .. } => (ctx.out_dir.join(format!("{id}.jsonl")), 1),
            };
            let content = std::fs::read_to_string(&file).expect("artifact written");
            assert!(
                content.lines().count() >= min_lines,
                "{id}: artifact has no data rows"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&ctx.out_dir);
}

#[test]
#[should_panic(expected = "unknown experiment")]
fn unknown_experiment_panics() {
    let ctx = ExperimentCtx::quick();
    let _ = run_experiment("nope", &ctx);
}

#[test]
fn experiment_suite_is_deterministic() {
    // Two runs with the same context must produce byte-identical CSVs.
    let render_all = |out_dir: std::path::PathBuf| {
        let mut ctx = ExperimentCtx::quick();
        ctx.events = 1_500;
        ctx.out_dir = out_dir.clone();
        let _ = std::fs::remove_dir_all(&out_dir);
        for id in ["t1", "f3", "t6"] {
            for a in run_experiment(id, &ctx) {
                a.save_and_render(&ctx).expect("artifact saves");
            }
        }
        let mut contents = std::collections::BTreeMap::new();
        for entry in std::fs::read_dir(&out_dir).expect("dir exists") {
            let path = entry.expect("entry").path();
            contents.insert(
                path.file_name().unwrap().to_string_lossy().to_string(),
                std::fs::read_to_string(&path).expect("readable"),
            );
        }
        let _ = std::fs::remove_dir_all(&out_dir);
        contents
    };
    let a = render_all(std::env::temp_dir().join("quill_det_a"));
    let b = render_all(std::env::temp_dir().join("quill_det_b"));
    // Drop wall-clock-dependent columns: only t6 has none; t1/f3 are pure.
    assert_eq!(a.keys().collect::<Vec<_>>(), b.keys().collect::<Vec<_>>());
    for (name, content) in &a {
        assert_eq!(content, &b[name], "{name} differs between identical runs");
    }
}
