//! Provenance acceptance scenario: a seeded quality violation whose
//! post-mortem names the *actual* late tuples and the controller K decision
//! that was in force at the finalize — round-tripped through the JSONL
//! persistence layer and rendered by the `quill-inspect` report backend.
//!
//! The stream is constructed so every causal link is known in advance:
//!
//! * phase A delivers ts 0, 10, …, 190 in order (K stays 0, watermark 190);
//! * straggler L1 (ts=95 at clock 190) makes MP-K-slack ratchet K 0→95 and
//!   is dropped from already-final `[0, 100)`;
//! * phase B delivers ts 200, …, 390 in order, finalizing `[100, 200)`
//!   with 10 tuples while the ratcheted K=95 is in force;
//! * straggler L2 (ts=150 at clock 390, 145 behind the 295 watermark)
//!   ratchets K 95→240 and is dropped from already-final `[100, 200)`.
//!
//! `[100, 200)` therefore achieves 10/11 completeness against a 0.95
//! target, and its post-mortem must name L2's late arrival and the 0→95
//! ratchet (the last K decision *before* the finalize — not the 95→240
//! one it triggered afterwards).

use quill_bench::inspect::render_report;
use quill_core::prelude::*;
use quill_engine::aggregate::{AggregateKind, AggregateSpec};
use quill_engine::prelude::{Row, Value, WindowSpec};
use quill_telemetry::trace::{KChangeReason, TraceKind};

fn ev(ts: u64, seq: u64) -> Event {
    Event::new(ts, seq, Row::new([Value::Float(1.0)]))
}

fn seeded_stream() -> Vec<Event> {
    let mut events: Vec<Event> = (0..20u64).map(|i| ev(i * 10, i)).collect();
    events.push(ev(95, 20)); // L1: ratchets K 0→95, lost to [0, 100)
    events.extend((0..20u64).map(|i| ev(200 + i * 10, 21 + i)));
    events.push(ev(150, 41)); // L2: ratchets K 95→240, lost to [100, 200)
    events
}

fn sum_query() -> QuerySpec {
    QuerySpec::new(
        WindowSpec::tumbling(100u64),
        vec![AggregateSpec::new(AggregateKind::Sum, 0, "sum")],
        None,
    )
}

fn traced_run() -> RunOutput {
    let trace = FlightRecorder::with_default_capacity();
    let mut mp = MpKSlack::new();
    execute(
        &seeded_stream(),
        &mut mp,
        &sum_query(),
        &ExecOptions::sequential()
            .with_trace(&trace)
            .with_required_completeness(0.95),
    )
    .expect("valid query")
}

#[test]
fn post_mortem_names_the_late_tuples_and_the_preceding_k_decision() {
    let out = traced_run();
    assert_eq!(out.provenance.len(), out.quality.per_window.len());

    // Both straggler-hit windows violate the 0.95 target; nothing else does.
    let violated: Vec<_> = out.provenance.iter().filter(|r| r.violated).collect();
    assert_eq!(
        violated
            .iter()
            .map(|r| (r.start, r.end))
            .collect::<Vec<_>>(),
        vec![(0, 100), (100, 200)]
    );
    assert_eq!(out.post_mortems.len(), 2);

    let pm = out
        .post_mortems
        .iter()
        .find(|p| (p.record.start, p.record.end) == (100, 200))
        .expect("post-mortem for [100, 200)");
    let rec = &pm.record;
    assert!(rec.violated);
    assert!((rec.achieved_completeness - 10.0 / 11.0).abs() < 1e-9);
    assert_eq!(rec.required_completeness, Some(0.95));
    assert_eq!(rec.contributing, 10);
    assert_eq!(rec.late_arrivals, 1);
    assert_eq!(rec.dropped, 1);
    assert_eq!(rec.lateness_max, 145); // L2 was 145 behind the 295 watermark

    // The K decision in force at the finalize is the 0→95 ratchet L1
    // triggered — strictly before the finalize in recorder order, and not
    // the 95→240 ratchet that L2 caused afterwards.
    assert_eq!(rec.k_at_finalize, Some(95));
    assert_eq!(rec.k_decision_reason, Some(KChangeReason::Ratchet));
    let finalize_seq = rec.finalize_seq.expect("finalized window");
    assert!(rec.k_decision_seq.expect("K decision on record") < finalize_seq);

    // The causal slice materializes the actual events: L2's late arrival,
    // the drop that names this window and input seq 41, the ratchet, and
    // the finalize itself.
    assert!(pm.slice.iter().any(|t| matches!(
        t.kind,
        TraceKind::LateArrival {
            lateness: 145,
            watermark: 295
        }
    ) && t.at == 150));
    assert!(pm.slice.iter().any(|t| matches!(
        &t.kind,
        TraceKind::LateDrop { event_seq: 41, windows } if windows.contains(&(100, 200))
    )));
    assert!(pm.slice.iter().any(|t| matches!(
        t.kind,
        TraceKind::KChange {
            old_k: 0,
            new_k: 95,
            reason: KChangeReason::Ratchet
        }
    ) && t.seq < finalize_seq));
    assert!(pm.slice.iter().any(|t| matches!(
        &t.kind,
        TraceKind::WindowFinalize {
            start: 100,
            end: 200,
            count: 10,
            ..
        }
    )));
}

#[test]
fn post_mortems_round_trip_through_jsonl_and_render() {
    let out = traced_run();
    let dir = std::env::temp_dir().join("quill_it_postmortem");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("postmortems.jsonl");
    write_post_mortems_jsonl(&path, &out.post_mortems).expect("writes");
    let text = std::fs::read_to_string(&path).expect("reads back");
    let parsed = parse_post_mortems(&text).expect("parses");
    assert_eq!(parsed.len(), out.post_mortems.len());
    for (a, b) in parsed.iter().zip(&out.post_mortems) {
        assert_eq!(a.record, b.record);
        assert_eq!(a.slice, b.slice);
    }

    // The inspect backend renders the persisted file into the human report:
    // the violation header, the named window, the late tuple and the K
    // decision all appear.
    let report = render_report(&text, 10).expect("renders");
    assert!(report.contains("Quality-violation post-mortem"));
    assert!(report.contains("Violation: window [100, 200)"));
    assert!(report.contains("lateness=145"));
    assert!(report.contains("K in force: 95 (set by `ratchet` decision seq="));
    assert!(report.contains("<- lost from this window"));
    let _ = std::fs::remove_dir_all(&dir);
}
