//! Session and count windows under disorder control: the new window types
//! composed with the ordering strategies.

use quill_core::prelude::*;
use quill_gen::workload::netmon::{self, NetmonConfig};

/// Order a stream through a strategy, returning elements for an operator.
fn ordered(events: &[Event], strategy: &mut dyn DisorderControl) -> Vec<StreamElement> {
    let mut out = Vec::new();
    for e in events {
        strategy.on_event(e.clone(), &mut out);
    }
    strategy.finish(&mut out);
    out
}

fn collect_results(op: &mut dyn Operator, input: Vec<StreamElement>) -> Vec<WindowResult> {
    let mut results = Vec::new();
    for el in input {
        op.process(el, &mut |o| {
            if let StreamElement::Event(e) = o {
                if let Some(r) = WindowResult::from_row(&e.row) {
                    results.push(r);
                }
            }
        });
    }
    results
}

/// A bursty activity pattern: bursts of activity separated by quiet gaps.
fn bursty_events(bursts: u64, per_burst: u64, gap: u64) -> Vec<Event> {
    let mut events = Vec::new();
    let mut seq = 0;
    for b in 0..bursts {
        let base = b * (per_burst * 5 + gap);
        for i in 0..per_burst {
            events.push(Event::new(
                base + i * 5,
                seq,
                Row::new([Value::Float((b * per_burst + i) as f64)]),
            ));
            seq += 1;
        }
    }
    events
}

/// Scramble arrival order deterministically within a bounded horizon.
fn scramble(events: &[Event], max_shift: u64) -> Vec<Event> {
    let mut tagged: Vec<(u64, Event)> = events
        .iter()
        .cloned()
        .map(|e| {
            let shift = (e.seq * 7919) % (max_shift + 1);
            (e.ts.raw() + shift, e)
        })
        .collect();
    tagged.sort_by_key(|&(arrival, ref e)| (arrival, e.seq));
    tagged
        .into_iter()
        .enumerate()
        .map(|(i, (_, mut e))| {
            e.seq = i as u64;
            e
        })
        .collect()
}

#[test]
fn session_windows_recover_bursts_despite_disorder() {
    let clean = bursty_events(10, 20, 1_000);
    let disordered = scramble(&clean, 200);
    // Gap 500 < quiet gap 1000 but > intra-burst spacing 5.
    let mut op = SessionWindowOp::new(
        500u64,
        vec![AggregateSpec::new(AggregateKind::Count, 0, "n")],
        None,
    )
    .expect("valid op");
    let mut strategy = FixedKSlack::new(300u64);
    let results = collect_results(&mut op, ordered(&disordered, &mut strategy));
    assert_eq!(results.len(), 10, "one session per burst: {results:?}");
    for r in &results {
        assert_eq!(r.count, 20, "session {} incomplete", r.window);
    }
}

#[test]
fn session_windows_with_aq_on_netmon_fragment_little() {
    // Hosts report every 100 time units (20 hosts, period 5), so a gap of
    // 1000 should yield a single rolling session per host unless the buffer
    // loses heavily.
    let stream = netmon::generate(&NetmonConfig::default(), 10_000, 99);
    let mut op = SessionWindowOp::new(
        1_000u64,
        vec![AggregateSpec::new(
            AggregateKind::Count,
            netmon::BYTES_FIELD,
            "n",
        )],
        Some(netmon::HOST_FIELD),
    )
    .expect("valid op");
    let mut strategy = AqKSlack::for_completeness(0.99);
    let results = collect_results(&mut op, ordered(&stream.events, &mut strategy));
    // At most a handful of fragments per host.
    assert!(
        results.len() <= 20 * 5,
        "sessions fragmented: {} pieces for 20 hosts",
        results.len()
    );
    let total: u64 = results.iter().map(|r| r.count).sum();
    assert!(
        total as f64 >= 10_000.0 * 0.98,
        "lost too many events: {total}"
    );
}

#[test]
fn count_windows_partition_the_ordered_stream_exactly() {
    let clean = bursty_events(5, 100, 500);
    let disordered = scramble(&clean, 150);
    let mut op = CountWindowOp::new(
        50,
        vec![
            AggregateSpec::new(AggregateKind::Count, 0, "n"),
            AggregateSpec::new(AggregateKind::Min, 0, "min"),
            AggregateSpec::new(AggregateKind::Max, 0, "max"),
        ],
        None,
    )
    .expect("valid op");
    // Oracle ordering → deterministic batches of exactly 50 in ts order.
    let mut strategy = OracleBuffer::new();
    let results = collect_results(&mut op, ordered(&disordered, &mut strategy));
    assert_eq!(results.len(), 10);
    for r in &results {
        assert_eq!(r.count, 50);
    }
    // With full ordering, batch value ranges are contiguous and increasing.
    for pair in results.windows(2) {
        let prev_max = pair[0].aggregates[2].as_f64().expect("max");
        let next_min = pair[1].aggregates[1].as_f64().expect("min");
        assert!(
            prev_max < next_min,
            "batches overlap: {prev_max} vs {next_min}"
        );
    }
}

#[test]
fn count_windows_under_weak_ordering_still_conserve_events() {
    let clean = bursty_events(4, 100, 300);
    let disordered = scramble(&clean, 400);
    let mut op = CountWindowOp::new(
        64,
        vec![AggregateSpec::new(AggregateKind::Count, 0, "n")],
        None,
    )
    .expect("valid op");
    let mut strategy = DropAll::new();
    let results = collect_results(&mut op, ordered(&disordered, &mut strategy));
    let total: u64 = results.iter().map(|r| r.count).sum();
    assert_eq!(total, 400, "count windows must conserve events");
}

#[test]
fn push_session_and_count_session_op_compose() {
    // The push Session handles time windows; count-based session ops are
    // driven manually off the same strategy output — verify both see
    // consistent totals.
    let clean = bursty_events(6, 30, 800);
    let disordered = scramble(&clean, 100);
    let query = QuerySpec::new(
        WindowSpec::tumbling(10_000u64),
        vec![AggregateSpec::new(AggregateKind::Count, 0, "n")],
        None,
    );
    let mut session = Session::new(Box::new(FixedKSlack::new(200u64)));
    let handle = session.register(&query).expect("valid query");
    for e in &disordered {
        session.push(e.clone());
    }
    session.finish();
    let all = handle.poll();
    let total: u64 = all.iter().map(|r| r.count).sum();
    assert_eq!(total, 180);
    assert_eq!(handle.stats().emitted as usize, all.len());
}
