//! Telemetry-instrumented execution, end to end: an enabled registry on a
//! keyed parallel run must reconcile with the run's own accounting, and the
//! exporters must round-trip.

use quill_core::prelude::*;
use quill_telemetry::export::{parse_prometheus, to_json_line, to_prometheus};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: u64 = 4_000;

fn keyed_events(n: u64, seed: u64) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arrivals: Vec<(u64, u64, i64)> = (0..n)
        .map(|i| (i * 5 + rng.gen_range(0..150), i * 5, (i % 8) as i64))
        .collect();
    arrivals.sort();
    arrivals
        .into_iter()
        .enumerate()
        .map(|(seq, (_, ts, k))| {
            Event::new(
                ts,
                seq as u64,
                Row::new([Value::Int(k), Value::Float((ts % 41) as f64)]),
            )
        })
        .collect()
}

fn keyed_query() -> QuerySpec {
    QuerySpec::builder()
        .window(WindowSpec::sliding(200u64, 100u64))
        .aggregate(AggregateKind::Sum, 1, "sum")
        .aggregate(AggregateKind::Count, 1, "n")
        .key_field(0)
        .build()
        .expect("valid query spec")
}

/// Run the keyed query in parallel with `shards` shards and an enabled
/// registry; return the output and the final snapshot.
fn instrumented_parallel_run(shards: usize) -> (RunOutput, Snapshot) {
    let events = keyed_events(N, 42);
    let telemetry = Registry::new();
    let mut strategy = FixedKSlack::new(160u64);
    let out = execute(
        &events,
        &mut strategy,
        &keyed_query(),
        &ExecOptions::parallel(ParallelConfig::new(shards).with_batch_size(64))
            .with_telemetry(&telemetry)
            .with_snapshot_every(1_000),
    )
    .expect("valid query");
    let last = out.snapshots.last().expect("final snapshot").clone();
    (out, last)
}

#[test]
fn shard_counters_reconcile_with_run_accounting() {
    for shards in [1usize, 4] {
        let (out, snap) = instrumented_parallel_run(shards);
        assert_eq!(out.events, N);
        // Every routed event is counted by exactly one shard.
        assert_eq!(
            snap.counter_family_sum("quill.shard.", ".events"),
            N,
            "shard event counters must sum to the input count at {shards} shards"
        );
        // The runner's own event counter agrees.
        assert_eq!(snap.counter("quill.run.events"), N);
        // Buffer accounting: everything inserted was released (watermark or
        // flush) or passed through late.
        assert_eq!(
            snap.counter("quill.buffer.released") + snap.counter("quill.buffer.late_passed"),
            N
        );
        assert_eq!(
            snap.counter("quill.buffer.late_passed"),
            out.buffer.late_passed
        );
        // Late drops recorded by telemetry match the window operator's and
        // the buffer's view of quality loss.
        assert_eq!(
            snap.counter("quill.run.late_dropped"),
            out.window_stats.late_dropped
        );
        assert_eq!(
            out.window_stats.accepted + out.window_stats.late_dropped,
            N,
            "window accounting must cover every event"
        );
        // Results: one counter bump per emitted window result.
        assert_eq!(snap.counter("quill.run.results"), out.results.len() as u64);
        // The merge saw every shard output element.
        assert!(snap.counter("quill.merge.elements") > 0);
        // Shard-local finalization: every emitted result was finalized by
        // exactly one shard, and the merge combined exactly those results.
        assert_eq!(
            snap.counter_family_sum("quill.shard.", ".finalized_windows"),
            out.results.len() as u64,
            "per-shard finalized_windows must sum to the result count at {shards} shards"
        );
        assert_eq!(
            snap.counter("quill.merge.elements"),
            out.results.len() as u64
        );
        // The merge's window counter matches the distinct (end, start, key)
        // triples among the results.
        let mut wins: Vec<(u64, u64, String)> = out
            .results
            .iter()
            .map(|r| (r.window.end.raw(), r.window.start.raw(), r.key.to_string()))
            .collect();
        wins.sort();
        wins.dedup();
        assert_eq!(snap.counter("quill.merge.windows"), wins.len() as u64);
        // Queue-depth gauges end drained: nothing left in the input channels
        // or the result channel once the run returns. (The shards=1 bypass
        // has no channels and therefore never registers the gauges.)
        if shards > 1 {
            assert_eq!(snap.gauge("quill.executor.queue_depth"), Some(0.0));
            assert_eq!(snap.gauge("quill.executor.result_queue_depth"), Some(0.0));
        }
    }
}

#[test]
fn periodic_snapshots_are_ordered_and_monotone() {
    let (_, _) = instrumented_parallel_run(4);
    let events = keyed_events(N, 43);
    let telemetry = Registry::new();
    let mut strategy = FixedKSlack::new(160u64);
    let out = execute(
        &events,
        &mut strategy,
        &keyed_query(),
        &ExecOptions::parallel(ParallelConfig::new(4))
            .with_telemetry(&telemetry)
            .with_snapshot_every(500),
    )
    .expect("valid query");
    assert!(out.snapshots.len() >= 8, "got {}", out.snapshots.len());
    for pair in out.snapshots.windows(2) {
        assert!(pair[0].seq < pair[1].seq);
        assert!(pair[0].at_events <= pair[1].at_events);
        assert!(
            pair[0].counter("quill.buffer.inserted") <= pair[1].counter("quill.buffer.inserted"),
            "counters must be monotone across snapshots"
        );
    }
    // Delta between consecutive snapshots isolates the interval's work.
    let delta = out.snapshots[1].delta_since(&out.snapshots[0]);
    assert_eq!(
        delta.counter("quill.run.events"),
        out.snapshots[1].counter("quill.run.events") - out.snapshots[0].counter("quill.run.events")
    );
}

#[test]
fn prometheus_export_round_trips() {
    let (out, snap) = instrumented_parallel_run(4);
    let text = to_prometheus(&snap);
    let samples = parse_prometheus(&text).expect("exporter output must parse");
    assert!(!samples.is_empty());

    // Counters survive the trip exactly.
    let find = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .unwrap_or_else(|| panic!("sample {name} missing"))
            .value
    };
    assert_eq!(find("quill_run_events") as u64, N);
    assert_eq!(find("quill_run_results") as u64, out.results.len() as u64);
    // Histogram summaries appear with quantile labels.
    assert!(
        samples.iter().any(|s| s.name == "quill_run_latency"
            && s.labels.iter().any(|(k, v)| k == "quantile" && v == "0.9")),
        "latency summary must export a 0.9 quantile sample"
    );
    // JSON-lines export is one object per snapshot, non-empty.
    let line = to_json_line(&snap);
    assert!(line.starts_with('{') && line.ends_with('}'));
    assert!(line.contains("\"quill.run.events\""));
    assert!(!line.contains('\n'));
}

#[test]
fn disabled_registry_run_is_observably_silent() {
    let events = keyed_events(1_000, 44);
    let mut strategy = FixedKSlack::new(160u64);
    let out = execute(
        &events,
        &mut strategy,
        &keyed_query(),
        &ExecOptions::parallel(ParallelConfig::new(4)).with_snapshot_every(100),
    )
    .expect("valid query");
    assert!(out.snapshots.is_empty());
    // The disabled registry itself reports nothing.
    let reg = Registry::disabled();
    assert!(!reg.is_enabled());
    let snap = reg.snapshot();
    assert_eq!(snap.counter("quill.run.events"), 0);
}
