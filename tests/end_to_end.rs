//! End-to-end: generated workloads through disorder control, windowed
//! aggregation and quality scoring, across all crates.

use quill_core::prelude::*;
use quill_gen::workload::standard_suite;
use quill_integration::{mean_query, rich_query, uniform_disordered};

#[test]
fn oracle_is_exact_on_every_standard_workload() {
    for w in standard_suite() {
        let stream = (w.generate)(5_000, 101);
        let query = quill_core::runner::QuerySpec::new(
            WindowSpec::tumbling(1_000u64),
            vec![AggregateSpec::new(AggregateKind::Count, 0, "n")],
            None,
        );
        let mut s = OracleBuffer::new();
        let out = execute(&stream.events, &mut s, &query, &ExecOptions::sequential())
            .expect("valid query");
        assert_eq!(out.quality.windows_missing, 0, "{}", w.name);
        assert_eq!(out.quality.mean_completeness, 1.0, "{}", w.name);
    }
}

#[test]
fn aq_meets_target_on_every_standard_workload() {
    // Tuple-level completeness within a small tolerance of the target on
    // every workload, including the bursty ones.
    for w in standard_suite() {
        let stream = (w.generate)(30_000, 202);
        let q = 0.95;
        let mut aq = AqKSlack::for_completeness(q);
        let out = execute(
            &stream.events,
            &mut aq,
            &mean_query(1_000),
            &ExecOptions::sequential(),
        )
        .expect("valid query");
        assert!(
            out.quality.mean_completeness >= q - 0.05,
            "{}: completeness {} far below target {q}",
            w.name,
            out.quality.mean_completeness
        );
    }
}

#[test]
fn aq_latency_sits_between_drop_and_mp() {
    let events = uniform_disordered(20_000, 10, 400, 7);
    let query = mean_query(500);
    let mut drop = DropAll::new();
    let mut aq = AqKSlack::for_completeness(0.95);
    let mut mp = MpKSlack::new();
    let drop_out =
        execute(&events, &mut drop, &query, &ExecOptions::sequential()).expect("valid query");
    let aq_out =
        execute(&events, &mut aq, &query, &ExecOptions::sequential()).expect("valid query");
    let mp_out =
        execute(&events, &mut mp, &query, &ExecOptions::sequential()).expect("valid query");
    assert!(drop_out.latency.mean <= aq_out.latency.mean);
    assert!(aq_out.latency.mean <= mp_out.latency.mean);
    assert!(drop_out.quality.mean_completeness <= aq_out.quality.mean_completeness + 1e-9);
}

#[test]
fn rich_queries_run_under_all_strategies() {
    let events = uniform_disordered(5_000, 10, 200, 8);
    let query = rich_query(500);
    let strategies: Vec<Box<dyn DisorderControl>> = vec![
        Box::new(DropAll::new()),
        Box::new(FixedKSlack::new(100u64)),
        Box::new(MpKSlack::new()),
        Box::new(AqKSlack::for_completeness(0.9)),
        Box::new(OracleBuffer::new()),
    ];
    for mut s in strategies {
        let out =
            execute(&events, s.as_mut(), &query, &ExecOptions::sequential()).expect("valid query");
        assert!(out.quality.windows_total > 0, "{}", out.strategy);
        // Every emitted aggregate row has all six outputs.
        for r in &out.results {
            assert_eq!(r.aggregates.len(), 6, "{}", out.strategy);
        }
    }
}

#[test]
fn full_pipeline_with_preprocessing_stages() {
    // Filter + map in front of the window aggregation, fed by a strategy:
    // glue the strategy output through a Pipeline manually.
    let events = uniform_disordered(10_000, 10, 300, 9);
    let mut strategy = AqKSlack::for_completeness(0.95);
    let mut elements = Vec::new();
    for e in &events {
        strategy.on_event(e.clone(), &mut elements);
    }
    strategy.finish(&mut elements);

    let mut pipeline = Pipeline::new()
        .filter("drop-small", |r: &Row| r.f64(0).unwrap_or(0.0) >= 100.0)
        .map("halve", |r: Row| {
            Row::new([Value::Float(r.f64(0).unwrap_or(0.0) / 2.0)])
        })
        .window_aggregate(
            WindowAggregateOp::new(
                WindowSpec::tumbling(1_000u64),
                vec![AggregateSpec::new(AggregateKind::Max, 0, "max")],
                None,
                LatePolicy::Drop,
            )
            .expect("valid op"),
        );
    let out = pipeline.run_collect(elements);
    let results: Vec<WindowResult> = out
        .iter()
        .filter_map(|e| e.as_event())
        .filter_map(|e| WindowResult::from_row(&e.row))
        .collect();
    assert!(!results.is_empty());
    // Max per window is (window_end - 10) / 2 for complete windows.
    for r in results.iter().take(5) {
        let expect = (r.window.end.raw() as f64 - 10.0) / 2.0;
        let got = r.aggregates[0].as_f64().expect("max is numeric");
        assert!(
            (got - expect).abs() < 200.0,
            "window {}: max {got} vs expected ~{expect}",
            r.window
        );
    }
}

#[test]
fn single_threaded_and_parallel_executors_agree_end_to_end() {
    let stream = quill_gen::workload::synthetic::exponential(5_000, 10, 80.0, 33);
    let build = || {
        Pipeline::new().window_aggregate(
            WindowAggregateOp::new(
                WindowSpec::sliding(500u64, 100u64),
                vec![
                    AggregateSpec::new(AggregateKind::Mean, 0, "mean"),
                    AggregateSpec::new(AggregateKind::StdDev, 0, "sd"),
                ],
                None,
                LatePolicy::Drop,
            )
            .expect("valid op"),
        )
    };
    // Order the stream through a fixed buffer first so watermarks exist.
    let mut strategy = FixedKSlack::new(300u64);
    let mut elements = Vec::new();
    for e in &stream.events {
        strategy.on_event(e.clone(), &mut elements);
    }
    strategy.finish(&mut elements);

    let seq = build().run_collect(elements.clone());
    let par = build().run_parallel(elements, 64).expect("parallel run");
    assert_eq!(seq, par);
}
