//! Coverage for runtime surfaces the other integration suites touch only
//! incidentally: the parallel pipeline executor under load, the keyed
//! data-parallel runner composed with strategies, report rendering of real
//! experiment output, and latency-recorder consistency between its exact
//! and histogram paths.

use quill_core::prelude::*;
use quill_metrics::{LatencyRecorder, Table};

#[test]
fn pipeline_parallel_executor_equals_sequential_on_workload_data() {
    let stream = quill_gen::workload::stock::generate(
        &quill_gen::workload::stock::StockConfig::default(),
        8_000,
        5,
    );
    let mut strategy = FixedKSlack::new(400u64);
    let mut elements = Vec::new();
    for e in &stream.events {
        strategy.on_event(e.clone(), &mut elements);
    }
    strategy.finish(&mut elements);

    let build = || {
        Pipeline::new()
            .filter("volume>10", |r: &Row| {
                r.f64(quill_gen::workload::stock::VOLUME_FIELD)
                    .unwrap_or(0.0)
                    > 10.0
            })
            .window_aggregate(
                WindowAggregateOp::new(
                    WindowSpec::tumbling(2_000u64),
                    vec![
                        AggregateSpec::new(
                            AggregateKind::Mean,
                            quill_gen::workload::stock::PRICE_FIELD,
                            "mean_price",
                        ),
                        AggregateSpec::new(
                            AggregateKind::ArgMax(quill_gen::workload::stock::VOLUME_FIELD),
                            quill_gen::workload::stock::PRICE_FIELD,
                            "price_at_peak_volume",
                        ),
                    ],
                    Some(quill_gen::workload::stock::SYMBOL_FIELD),
                    LatePolicy::Drop,
                )
                .expect("valid op"),
            )
    };
    let seq = build().run_collect(elements.clone());
    let par = build().run_parallel(elements, 32).expect("parallel run");
    assert_eq!(seq, par);
    assert!(seq.iter().filter(|e| e.as_event().is_some()).count() > 50);
}

#[test]
fn keyed_parallel_composes_with_aq_strategy() {
    let stream = quill_gen::workload::soccer::generate(
        &quill_gen::workload::soccer::SoccerConfig::default(),
        8_000,
        6,
    );
    let mut strategy = AqKSlack::for_completeness(0.97);
    let mut elements = Vec::new();
    for e in &stream.events {
        strategy.on_event(e.clone(), &mut elements);
    }
    strategy.finish(&mut elements);

    let make_op = || -> Box<dyn Operator> {
        Box::new(
            WindowAggregateOp::new(
                WindowSpec::tumbling(5_000u64),
                vec![AggregateSpec::new(
                    AggregateKind::Mean,
                    quill_gen::workload::soccer::SPEED_FIELD,
                    "speed",
                )],
                Some(quill_gen::workload::soccer::PLAYER_FIELD),
                LatePolicy::Drop,
            )
            .expect("valid op"),
        )
    };
    let out = run_keyed_parallel(
        elements,
        quill_gen::workload::soccer::PLAYER_FIELD,
        3,
        make_op,
    )
    .expect("parallel run");
    let results: Vec<WindowResult> = out
        .iter()
        .filter_map(|e| e.as_event())
        .filter_map(|e| WindowResult::from_row(&e.row))
        .collect();
    // Every player represented; counts sum close to the accepted total.
    let players: std::collections::HashSet<String> =
        results.iter().map(|r| r.key.to_string()).collect();
    assert_eq!(players.len(), 16);
    let total: u64 = results.iter().map(|r| r.count).sum();
    assert!(total >= 7_500, "lost too many events: {total}");
}

#[test]
fn report_rendering_roundtrips_experiment_style_tables() {
    let mut t = Table::new("demo", ["workload", "latency", "quality %"]);
    t.push_row(["netmon", "474.5", "97.91"]);
    t.push_row(["with,comma", "1.0", "2.0"]);
    let md = t.to_markdown();
    assert!(md.contains("| netmon"));
    let csv = t.to_csv();
    assert!(csv.contains("\"with,comma\""));
    // CSV line count = header + rows.
    assert_eq!(csv.lines().count(), 3);
}

#[test]
fn latency_recorder_exact_and_histogram_paths_agree() {
    let mut exact = LatencyRecorder::with_samples();
    let mut hist = LatencyRecorder::new();
    let mut x = 1u64;
    for i in 0..5_000u64 {
        let v = (x % 10_000) + 1;
        exact.record(TimeDelta(v));
        hist.record(TimeDelta(v));
        x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    let a = exact.summary();
    let b = hist.summary();
    assert_eq!(a.count, b.count);
    assert!(
        (a.mean - b.mean).abs() < 1e-9,
        "means must be exact on both paths"
    );
    // Histogram percentiles within its precision bound of exact ones.
    for (pa, pb) in [(a.p50, b.p50), (a.p90, b.p90), (a.p99, b.p99)] {
        assert!(
            (pa - pb).abs() / pa.max(1.0) < 0.02,
            "percentile drift: exact {pa} vs histogram {pb}"
        );
    }
}

#[test]
fn session_latency_quantiles_are_queryable_midstream() {
    let stream = quill_gen::workload::synthetic::exponential(5_000, 10, 60.0, 8);
    let query = QuerySpec::new(
        WindowSpec::tumbling(500u64),
        vec![AggregateSpec::new(AggregateKind::Count, 0, "n")],
        None,
    );
    let mut session = Session::new(Box::new(AqKSlack::for_completeness(0.9)));
    let handle = session.register(&query).expect("valid");
    for e in &stream.events {
        session.push(e.clone());
    }
    let p50 = handle.latency_quantile(0.5);
    let p99 = handle.latency_quantile(0.99);
    assert!(p50.is_some() && p99.is_some());
    assert!(p99.unwrap() >= p50.unwrap());
    session.finish();
}
