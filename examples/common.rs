//! Shared helpers for the runnable examples: compact printing of run
//! outputs and a tiny text sparkline for time series.

#![forbid(unsafe_code)]

use quill_core::prelude::RunOutput;
use quill_metrics::TimeSeries;

/// Print a one-line summary of a run (strategy, quality, latency, buffer).
pub fn print_run(out: &RunOutput) {
    println!(
        "  {:<18} completeness {:>6.2}%  mean latency {:>8.1}  p99 {:>8.1}  mean buffered {:>7.1}  late {:>5}",
        out.strategy,
        out.quality.mean_completeness * 100.0,
        out.latency.mean,
        out.latency.p99,
        out.buffer.mean_buffered(),
        out.buffer.late_passed,
    );
}

/// Render a time series as a unicode sparkline (downsampled to `width`).
pub fn sparkline(series: &TimeSeries, width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let s = series.downsample(width);
    let pts = s.points();
    if pts.is_empty() {
        return String::new();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(_, v) in pts {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = (hi - lo).max(1e-12);
    pts.iter()
        .map(|&(_, v)| {
            let idx = (((v - lo) / span) * (BARS.len() - 1) as f64).round() as usize;
            BARS[idx.min(BARS.len() - 1)]
        })
        .collect()
}

/// Header helper.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}
