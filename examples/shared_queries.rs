//! Multiple continuous queries sharing one quality-driven buffer, plus the
//! online push API and keyed data-parallel execution.
//!
//! Three dashboards subscribe to the same monitoring stream with different
//! needs: a billing query (very strict), an alerting query (moderate) and a
//! trend query (loose). One AQ buffer sized for the strictest target serves
//! all three; the example also shows the same query running through the
//! online push interface and sharded across threads.
//!
//! Run with: `cargo run --example shared_queries`

use oos_examples::section;
use quill_core::prelude::*;
use quill_engine::aggregate::{AggregateKind, AggregateSpec};
use quill_gen::workload::netmon::{self, NetmonConfig};

fn main() {
    let stream = netmon::generate(&NetmonConfig::default(), 40_000, 23);
    section("stream");
    println!(
        "  {} reports, disorder {:.1}%, max delay {}",
        stream.len(),
        stream.stats.disorder_ratio() * 100.0,
        stream.stats.max_delay
    );

    // Three subscribers with different quality needs.
    let billing = QuerySpec::new(
        WindowSpec::tumbling(10_000u64),
        vec![AggregateSpec::new(
            AggregateKind::Sum,
            netmon::BYTES_FIELD,
            "bytes",
        )],
        Some(netmon::HOST_FIELD),
    );
    let alerting = QuerySpec::new(
        WindowSpec::sliding(2_000u64, 500u64),
        vec![AggregateSpec::new(
            AggregateKind::Max,
            netmon::BYTES_FIELD,
            "peak",
        )],
        None,
    );
    let trend = QuerySpec::new(
        WindowSpec::tumbling(5_000u64),
        vec![AggregateSpec::new(
            AggregateKind::Mean,
            netmon::BYTES_FIELD,
            "mean",
        )],
        None,
    );
    let targets = [0.999, 0.95, 0.9];
    let strictest = strictest_completeness(&targets).expect("non-empty");

    section(&format!("shared buffer at strictest target q={strictest}"));
    let mut strategy = AqKSlack::for_completeness(strictest);
    let shared = execute_shared(
        &stream.events,
        &mut strategy,
        &[billing.clone(), alerting, trend],
        &ExecOptions::sequential(),
    )
    .expect("valid queries");
    for (out, (name, target)) in
        shared
            .per_query
            .iter()
            .zip([("billing", 0.999), ("alerting", 0.95), ("trend", 0.9)])
    {
        println!(
            "  {:<9} target {:>5}: completeness {:>7.3}%  mean latency {:>8.1}  windows {}",
            name,
            target,
            out.quality.mean_completeness * 100.0,
            out.latency.mean,
            out.quality.windows_total
        );
    }
    println!(
        "  (one buffer, one watermark sequence, wall time {:.1} ms)",
        shared.wall_micros as f64 / 1000.0
    );

    section("the same billing query, session (push) API");
    let mut session = Session::new(Box::new(AqKSlack::for_completeness(0.999)));
    let handle = session.register(&billing).expect("valid query");
    let mut emitted = 0usize;
    for (i, e) in stream.events.iter().enumerate() {
        session.push(e.clone());
        emitted += handle.poll().len();
        if i == stream.events.len() / 2 {
            let stats = session.stats();
            println!(
                "  midway: clock {}, K {}, buffered {}, {} results so far",
                stats.clock.map(|t| t.raw()).unwrap_or(0),
                stats.current_k,
                stats.buffered,
                emitted
            );
        }
    }
    session.finish();
    emitted += handle.poll().len();
    println!(
        "  finished: {} results, mean latency {:.1}",
        emitted,
        handle.stats().mean_latency
    );

    section("keyed data-parallel execution (4 shards)");
    // Order the stream once, then fan out by host across threads.
    let mut buffer = AqKSlack::for_completeness(0.99);
    let mut elements = Vec::new();
    for e in &stream.events {
        buffer.on_event(e.clone(), &mut elements);
    }
    buffer.finish(&mut elements);
    let t0 = std::time::Instant::now();
    let out = run_keyed_parallel(elements, netmon::HOST_FIELD, 4, || {
        Box::new(
            WindowAggregateOp::new(
                WindowSpec::tumbling(1_000u64),
                vec![AggregateSpec::new(
                    AggregateKind::Sum,
                    netmon::BYTES_FIELD,
                    "bytes",
                )],
                Some(netmon::HOST_FIELD),
                LatePolicy::Drop,
            )
            .expect("valid op"),
        )
    })
    .expect("parallel run");
    println!(
        "  {} window results across 4 shards in {:.1} ms",
        out.len(),
        t0.elapsed().as_secs_f64() * 1000.0
    );
}
