//! Quickstart: the 60-second tour of quill.
//!
//! Generates a small out-of-order stream, runs the same windowed query
//! under four disorder-control strategies, and prints the quality/latency
//! trade-off each one lands on.
//!
//! Run with: `cargo run --example quickstart`

use oos_examples::{print_run, section};
use quill_core::prelude::*;

fn main() {
    // 1. A synthetic stream: one event every 10 time units, transport
    //    delays exponential with mean 100 → heavy disorder.
    let stream = quill_gen::workload::synthetic::exponential(20_000, 10, 100.0, 7);
    section("workload");
    println!(
        "  {} events, disorder ratio {:.1}%, mean delay {:.1}, max delay {}",
        stream.len(),
        stream.stats.disorder_ratio() * 100.0,
        stream.stats.mean_delay(),
        stream.stats.max_delay
    );

    // 2. The continuous query: mean of the value field over tumbling
    //    500-unit windows.
    let query = QuerySpec::builder()
        .window(WindowSpec::tumbling(500u64))
        .aggregate(AggregateKind::Mean, 0, "mean")
        .build()
        .expect("valid query spec");

    // 3. Same query, four strategies.
    section("strategy comparison (target completeness for AQ: 95%)");
    let opts = ExecOptions::sequential();
    let mut drop = DropAll::new();
    print_run(&execute(&stream.events, &mut drop, &query, &opts).expect("valid query"));
    let mut fixed = FixedKSlack::new(300u64);
    print_run(&execute(&stream.events, &mut fixed, &query, &opts).expect("valid query"));
    let mut mp = MpKSlack::new();
    print_run(&execute(&stream.events, &mut mp, &query, &opts).expect("valid query"));
    let mut aq = AqKSlack::for_completeness(0.95);
    let aq_out = execute(&stream.events, &mut aq, &query, &opts).expect("valid query");
    print_run(&aq_out);

    // 4. What AQ actually did: the adaptive K.
    section("AQ adaptation");
    println!(
        "  adaptations: {}, final K: {}, mean K: {:.1}",
        aq.aq_stats().adaptations,
        aq.current_k(),
        aq_out.mean_k
    );
    println!(
        "  sample result windows: {:?}",
        aq_out
            .results
            .iter()
            .take(3)
            .map(|r| format!("{} -> {}", r.window, r.aggregates[0]))
            .collect::<Vec<_>>()
    );
}
