//! Live player-speed monitoring over bursty multiplexed sensors.
//!
//! Simulates a DEBS'13-style setup: 16 player sensors with bursty radio
//! delays feed one receiver; the query keeps a per-player mean speed over
//! sliding 5-second windows. Compares what each disorder-control strategy
//! delivers to the dashboard.
//!
//! Run with: `cargo run --example soccer_monitor`

use oos_examples::{print_run, section};
use quill_core::prelude::*;
use quill_engine::aggregate::{AggregateKind, AggregateSpec};
use quill_engine::prelude::{Value, WindowSpec};
use quill_gen::workload::soccer::{self, SoccerConfig};

fn main() {
    let cfg = SoccerConfig::default();
    let stream = soccer::generate(&cfg, 50_000, 3);
    section("sensor feed");
    println!(
        "  {} readings from {} players, disorder {:.1}%, mean delay {:.1}, max delay {}",
        stream.len(),
        cfg.players,
        stream.stats.disorder_ratio() * 100.0,
        stream.stats.mean_delay(),
        stream.stats.max_delay
    );

    let query = QuerySpec::new(
        WindowSpec::sliding(5_000u64, 1_000u64),
        vec![
            AggregateSpec::new(AggregateKind::Mean, soccer::SPEED_FIELD, "mean_speed"),
            AggregateSpec::new(AggregateKind::Max, soccer::SPEED_FIELD, "max_speed"),
        ],
        Some(soccer::PLAYER_FIELD),
    );

    section("strategies (dashboard wants 97% complete windows)");
    let mut drop = DropAll::new();
    print_run(
        &execute(
            &stream.events,
            &mut drop,
            &query,
            &ExecOptions::sequential(),
        )
        .expect("valid query"),
    );
    let mut mp = MpKSlack::new();
    print_run(
        &execute(&stream.events, &mut mp, &query, &ExecOptions::sequential()).expect("valid query"),
    );
    let mut aq = AqKSlack::for_completeness(0.97);
    let out =
        execute(&stream.events, &mut aq, &query, &ExecOptions::sequential()).expect("valid query");
    print_run(&out);

    section("player 0, first complete windows (AQ results)");
    let mut shown = 0;
    for r in &out.results {
        if r.key == Value::Int(0) && shown < 5 {
            println!(
                "  {}: mean {:.2} m/s, max {:.2} m/s over {} samples",
                r.window,
                r.aggregates[0].as_f64().unwrap_or(0.0),
                r.aggregates[1].as_f64().unwrap_or(0.0),
                r.count
            );
            shown += 1;
        }
    }

    section("why not just MP?");
    println!(
        "  MP pays for the worst radio burst forever; AQ hovers at the 97th\n  \
         delay percentile. AQ mean K: {:.0}, max delay seen: {} — the gap is\n  \
         the latency AQ gives back to the dashboard.",
        out.mean_k, stream.stats.max_delay
    );
}
