//! Watching AQ-K-slack adapt to a network-delay regime change.
//!
//! A monitoring stream's transport delays suddenly quadruple mid-run
//! (congestion). The example plots (as terminal sparklines) how the
//! adaptive buffer bound K tracks the regime for AQ vs. MP, and what that
//! does to result latency.
//!
//! Run with: `cargo run --example adaptive_netmon`

use oos_examples::{print_run, section, sparkline};
use quill_core::prelude::*;
use quill_gen::workload::netmon::{self, NetmonConfig};

fn main() {
    let n = 60_000usize;
    let horizon = n as u64 * 5;
    let cfg = NetmonConfig::default().with_step_drift(horizon / 2);
    let stream = netmon::generate(&cfg, n, 19);
    section("monitoring feed (delay scale x4 at t=half)");
    println!(
        "  {} reports from {} hosts, disorder {:.1}%, max delay {}",
        stream.len(),
        cfg.hosts,
        stream.stats.disorder_ratio() * 100.0,
        stream.stats.max_delay
    );

    let query = QuerySpec::builder()
        .window(WindowSpec::tumbling(1_000u64))
        .aggregate(AggregateKind::Sum, netmon::BYTES_FIELD, "bytes")
        .key_field(netmon::HOST_FIELD)
        .build()
        .expect("valid query spec");

    // Watch the run live: periodic registry snapshots every 10k events.
    let telemetry = Registry::new();
    let opts = ExecOptions::sequential()
        .with_telemetry(&telemetry)
        .with_snapshot_every(10_000);
    let mut aq = AqKSlack::for_completeness(0.95);
    let aq_out = execute(&stream.events, &mut aq, &query, &opts).expect("valid query");
    let mut mp = MpKSlack::new();
    let mp_out =
        execute(&stream.events, &mut mp, &query, &ExecOptions::sequential()).expect("valid query");

    section("buffer bound K over time (left = calm, right = congested)");
    println!("  aq  {}", sparkline(&aq_out.k_series, 72));
    println!("  mp  {}", sparkline(&mp_out.k_series, 72));
    println!("      (mp ratchets to the worst burst and stays; aq tracks the regime)");

    section("what it costs");
    print_run(&aq_out);
    print_run(&mp_out);

    section("per-window completeness over time (aq)");
    let mut q_series = quill_metrics::TimeSeries::new("aq_quality");
    for w in &aq_out.quality.per_window {
        q_series.push(w.window.end, w.completeness);
    }
    println!("  aq  {}", sparkline(&q_series, 72));
    println!(
        "  violation rate vs q=0.95: {:.2}%",
        aq_out.quality.violation_rate(0.95) * 100.0
    );

    section("telemetry: controller K gauge across snapshots (aq)");
    for snap in &aq_out.snapshots {
        println!(
            "  at {:>6} events: K {:>7.1}, adaptations {:>3}, buffer depth {:>5}, est p95 {:>7.1}",
            snap.at_events,
            snap.gauge("quill.controller.k").unwrap_or(0.0),
            snap.counter("quill.controller.adaptations"),
            snap.gauge("quill.buffer.depth").unwrap_or(0.0),
            snap.gauge("quill.estimator.p95").unwrap_or(0.0),
        );
    }

    // Re-run with a bounded flight recorder and the quality target attached:
    // every violated window yields a post-mortem — its provenance record
    // plus the causal trace slice (late arrivals, drops, the K decision in
    // force at the finalize). Persist them with `write_post_mortems_jsonl`
    // and render the file with `cargo run --bin quill-inspect -- <file>`.
    section("flight recorder: explaining the worst violated window (aq)");
    let trace = FlightRecorder::with_default_capacity();
    let mut aq_traced = AqKSlack::for_completeness(0.95);
    let traced = execute(
        &stream.events,
        &mut aq_traced,
        &query,
        &ExecOptions::sequential()
            .with_trace(&trace)
            .with_required_completeness(0.95),
    )
    .expect("valid query");
    println!(
        "  {} windows scored, {} missed the 0.95 target, {} trace events on the ring",
        traced.provenance.len(),
        traced.post_mortems.len(),
        trace.events().len()
    );
    if let Some(pm) = traced.post_mortems.iter().min_by(|a, b| {
        a.record
            .achieved_completeness
            .total_cmp(&b.record.achieved_completeness)
    }) {
        let r = &pm.record;
        println!(
            "  worst: window [{}, {}) key={} achieved {:.1}% — {} contributed, {} late, {} dropped (max lateness {})",
            r.start,
            r.end,
            r.key,
            r.achieved_completeness * 100.0,
            r.contributing,
            r.late_arrivals,
            r.dropped,
            r.lateness_max
        );
        if let (Some(k), Some(seq)) = (r.k_at_finalize, r.k_decision_seq) {
            println!(
                "  K in force at finalize: {k} (decision seq {seq}); causal slice holds {} events",
                pm.slice.len()
            );
        }
    }
}
