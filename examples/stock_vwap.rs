//! Per-symbol VWAP over a simulated out-of-order trade feed, driven by a
//! *relative-error* quality target.
//!
//! A trading dashboard can tolerate a small error in the displayed VWAP but
//! wants it as fresh as possible. Instead of guessing a buffer size, the
//! query declares "VWAP error ≤ 1 %" and AQ-K-slack finds the latency.
//!
//! Run with: `cargo run --example stock_vwap`

use oos_examples::{print_run, section};
use quill_core::prelude::*;
use quill_engine::aggregate::{AggregateKind, AggregateSpec};
use quill_engine::prelude::{Value, WindowSpec};
use quill_gen::workload::stock::{self, StockConfig};

fn main() {
    let stream = stock::generate(&StockConfig::default(), 40_000, 11);
    section("trade feed");
    println!(
        "  {} trades, {} symbols (Zipf), disorder {:.1}%, max delay {}",
        stream.len(),
        StockConfig::default().symbols,
        stream.stats.disorder_ratio() * 100.0,
        stream.stats.max_delay
    );

    // VWAP = sum(price·volume) / sum(volume): append a notional column and
    // aggregate both sums per symbol; the example then divides.
    let events: Vec<_> = stream
        .events
        .iter()
        .cloned()
        .map(|mut e| {
            let p = e.row.f64(stock::PRICE_FIELD).unwrap_or(0.0);
            let v = e.row.f64(stock::VOLUME_FIELD).unwrap_or(0.0);
            e.row = std::mem::take(&mut e.row).with(Value::Float(p * v));
            e
        })
        .collect();
    const NOTIONAL_FIELD: usize = 3;
    let query = QuerySpec::new(
        WindowSpec::tumbling(5_000u64),
        vec![
            AggregateSpec::new(AggregateKind::Sum, NOTIONAL_FIELD, "notional"),
            AggregateSpec::new(AggregateKind::Sum, stock::VOLUME_FIELD, "volume"),
        ],
        Some(stock::SYMBOL_FIELD),
    );

    section("error-driven execution (VWAP error <= 1%)");
    let mut aq = AqKSlack::new(AqConfig::max_rel_error(0.01, stock::PRICE_FIELD));
    let out = execute(&events, &mut aq, &query, &ExecOptions::sequential()).expect("valid query");
    print_run(&out);
    println!(
        "  achieved mean rel error: notional {:.3}%, volume {:.3}%",
        out.quality.mean_rel_error[0] * 100.0,
        out.quality.mean_rel_error[1] * 100.0
    );

    section("sample VWAPs (hottest symbol, first windows)");
    let mut shown = 0;
    for r in &out.results {
        if r.key == Value::Int(0) && shown < 5 {
            let notional = r.aggregates[0].as_f64().unwrap_or(0.0);
            let volume = r.aggregates[1].as_f64().unwrap_or(0.0);
            if volume > 0.0 {
                println!(
                    "  window {}: vwap = {:.3} over {} trades",
                    r.window,
                    notional / volume,
                    r.count
                );
                shown += 1;
            }
        }
    }

    section("versus a strict completeness target (99.9%)");
    let mut strict = AqKSlack::for_completeness(0.999);
    let strict_out =
        execute(&events, &mut strict, &query, &ExecOptions::sequential()).expect("valid query");
    print_run(&strict_out);
    println!(
        "  => error budget saved {:.1}x mean latency ({:.1} vs {:.1})",
        strict_out.latency.mean / out.latency.mean.max(1e-9),
        strict_out.latency.mean,
        out.latency.mean
    );
}
