//! Property-based tests of engine invariants: window assignment, aggregate
//! order-independence, and windowed aggregation vs. a brute-force model.

use proptest::prelude::*;
use quill_engine::aggregate::{AggregateKind, AggregateSpec};
use quill_engine::operator::{LatePolicy, Operator, WindowAggregateOp, WindowResult};
use quill_engine::prelude::*;

fn window_specs() -> impl Strategy<Value = WindowSpec> {
    prop_oneof![
        (1u64..500).prop_map(WindowSpec::tumbling),
        (1u64..500)
            .prop_flat_map(|len| (Just(len), 1u64..=len))
            .prop_map(|(len, slide)| WindowSpec::sliding(len, slide)),
    ]
}

proptest! {
    #[test]
    fn every_assigned_window_contains_the_timestamp(
        spec in window_specs(),
        ts in 0u64..1_000_000,
    ) {
        let ts = Timestamp(ts);
        let windows = spec.assign(ts);
        prop_assert!(!windows.is_empty());
        for w in &windows {
            prop_assert!(w.contains(ts), "{w} does not contain {ts}");
            prop_assert_eq!(w.length(), spec.length());
            prop_assert_eq!(w.start.raw() % spec.slide().raw(), 0);
        }
        // Distinct and sorted by start.
        for pair in windows.windows(2) {
            prop_assert!(pair[0].start < pair[1].start);
        }
        // Away from the origin, the count is the number of aligned starts in
        // (ts - length, ts], which is floor(len/slide) or ceil(len/slide)
        // depending on alignment.
        let len = spec.length().raw();
        let slide = spec.slide().raw();
        let ceil = len.div_ceil(slide);
        let floor = (len / slide).max(1);
        if ts.raw() >= len {
            prop_assert!(
                (floor..=ceil).contains(&(windows.len() as u64)),
                "{} windows outside [{floor}, {ceil}]",
                windows.len()
            );
        } else {
            prop_assert!(windows.len() as u64 <= ceil);
        }
    }

    #[test]
    fn no_window_outside_assignment_contains_the_timestamp(
        spec in window_specs(),
        ts in 0u64..100_000,
    ) {
        // Completeness of assign(): any aligned window containing ts is in
        // the returned set.
        let ts = Timestamp(ts);
        let assigned = spec.assign(ts);
        let slide = spec.slide().raw();
        let len = spec.length().raw();
        let mut start = ts.raw().saturating_sub(len) / slide * slide;
        while start <= ts.raw() {
            let w = Window::new(Timestamp(start), Timestamp(start + len));
            if w.contains(ts) {
                prop_assert!(assigned.contains(&w), "missing window {w} for {ts}");
            }
            start += slide;
        }
    }

    #[test]
    fn order_independent_aggregates_ignore_permutation(
        values in prop::collection::vec((0u64..10_000, -1000.0f64..1000.0), 1..60),
        rotation in 0usize..59,
    ) {
        // Rotate the input as a cheap permutation; results must not change
        // for permutation-invariant aggregates.
        for kind in [
            AggregateKind::Count,
            AggregateKind::Sum,
            AggregateKind::Mean,
            AggregateKind::Min,
            AggregateKind::Max,
            AggregateKind::StdDev,
            AggregateKind::Median,
            AggregateKind::Quantile(0.75),
            AggregateKind::DistinctCount,
        ] {
            let spec = AggregateSpec::new(kind, 0, "a");
            let tv: Vec<(Timestamp, Value)> = values
                .iter()
                .map(|&(t, v)| (Timestamp(t), Value::Float(v)))
                .collect();
            let mut rotated = tv.clone();
            rotated.rotate_left(rotation % tv.len());
            let a = spec.compute(&tv);
            let b = spec.compute(&rotated);
            match (a, b) {
                (Value::Float(x), Value::Float(y)) => {
                    prop_assert!((x - y).abs() < 1e-6, "{kind}: {x} != {y}")
                }
                (x, y) => prop_assert_eq!(x, y),
            }
        }
    }

    #[test]
    fn incremental_aggregation_matches_reference(
        values in prop::collection::vec((0u64..10_000, -1000.0f64..1000.0), 0..60),
    ) {
        for kind in [AggregateKind::Sum, AggregateKind::StdDev, AggregateKind::Median] {
            let spec = AggregateSpec::new(kind, 0, "a");
            let tv: Vec<(Timestamp, Value)> = values
                .iter()
                .map(|&(t, v)| (Timestamp(t), Value::Float(v)))
                .collect();
            let mut agg = spec.build();
            for (t, v) in &tv {
                agg.insert(*t, v);
            }
            match (agg.finalize(), spec.compute(&tv)) {
                (Value::Float(x), Value::Float(y)) => {
                    prop_assert!((x - y).abs() < 1e-6)
                }
                (x, y) => prop_assert_eq!(x, y),
            }
        }
    }

    #[test]
    fn windowed_aggregation_matches_brute_force_on_ordered_input(
        mut tss in prop::collection::vec(0u64..5_000, 1..200),
        len in 1u64..300,
    ) {
        tss.sort_unstable();
        let spec = WindowSpec::tumbling(len);
        let aggs = vec![AggregateSpec::new(AggregateKind::Count, 0, "n")];
        let mut op = WindowAggregateOp::new(spec, aggs.clone(), None, LatePolicy::Drop)
            .expect("valid op");
        let mut results = Vec::new();
        for (seq, &ts) in tss.iter().enumerate() {
            op.process(
                StreamElement::Event(Event::new(ts, seq as u64, Row::new([Value::Int(1)]))),
                &mut |o| {
                    if let StreamElement::Event(e) = o {
                        if let Some(r) = WindowResult::from_row(&e.row) {
                            results.push(r);
                        }
                    }
                },
            );
        }
        op.process(StreamElement::Flush, &mut |o| {
            if let StreamElement::Event(e) = o {
                if let Some(r) = WindowResult::from_row(&e.row) {
                    results.push(r);
                }
            }
        });
        // Brute force: count per aligned window.
        let mut expected: std::collections::BTreeMap<u64, u64> = Default::default();
        for &ts in &tss {
            *expected.entry(ts / len * len).or_default() += 1;
        }
        prop_assert_eq!(results.len(), expected.len());
        for r in &results {
            prop_assert_eq!(
                r.count,
                expected[&r.window.start.raw()],
                "window {}", r.window
            );
        }
    }

    #[test]
    fn value_total_order_is_antisymmetric_and_transitive(
        vals in prop::collection::vec(
            prop_oneof![
                Just(Value::Null),
                any::<bool>().prop_map(Value::Bool),
                any::<i32>().prop_map(|i| Value::Int(i as i64)),
                (-1e12f64..1e12).prop_map(Value::Float),
                "[a-z]{0,6}".prop_map(Value::str),
            ],
            3..10,
        ),
    ) {
        use std::cmp::Ordering;
        for a in &vals {
            prop_assert_eq!(a.total_cmp(a), Ordering::Equal);
            for b in &vals {
                prop_assert_eq!(a.total_cmp(b), b.total_cmp(a).reverse());
                for c in &vals {
                    if a.total_cmp(b) != Ordering::Greater
                        && b.total_cmp(c) != Ordering::Greater
                    {
                        prop_assert_ne!(a.total_cmp(c), Ordering::Greater);
                    }
                }
            }
        }
    }
}
