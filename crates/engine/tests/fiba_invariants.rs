//! Structural-invariant fuzz for the finger B-tree aggregator.
//!
//! A seeded operation fuzz drives `FibaTree` through adversarial insert /
//! bulk-evict mixes (appends, prepends, tie storms, deep stragglers,
//! uniform noise) and calls [`FibaTree::check_invariants`] after **every**
//! mutation: B-tree arity bounds, finger validity, parent partial-aggregate
//! consistency and subtree counts. A flat mirror vector checks the
//! observable behaviour (length, order, aggregates, rank selection) so a
//! structurally valid but semantically wrong tree cannot pass.
//!
//! This suite runs in the CI `sim` job alongside the quill-sim
//! differential battery.

use quill_engine::fiba::{FibaItem, FibaTree};

/// Exact (wrapping) integer sum: parent partial-aggregate consistency is
/// checked with `==`, so the item must be associative and drift-free.
#[derive(Clone, Debug, PartialEq)]
struct Sum(u64);

impl FibaItem for Sum {
    fn combine(&mut self, later: &Self) {
        self.0 = self.0.wrapping_add(later.0);
    }
}

/// Tiny deterministic RNG (xorshift64*), independent of any external crate
/// state so failures reproduce from the seed alone.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// Flat mirror of the tree: `(key, weight)` in stable key order.
struct Mirror {
    entries: Vec<((u64, u64), u64)>,
}

impl Mirror {
    fn insert(&mut self, key: (u64, u64), w: u64) {
        let at = self.entries.partition_point(|(k, _)| *k <= key);
        self.entries.insert(at, (key, w));
    }

    fn evict_before(&mut self, cut: (u64, u64)) -> u64 {
        let before = self.entries.len();
        self.entries.retain(|(k, _)| *k >= cut);
        (before - self.entries.len()) as u64
    }

    fn range_sum(&self, lo: (u64, u64), hi: (u64, u64)) -> (Option<u64>, u64) {
        let mut acc: Option<u64> = None;
        let mut n = 0u64;
        for (k, w) in &self.entries {
            if *k >= lo && *k <= hi {
                n += 1;
                acc = Some(acc.unwrap_or(0).wrapping_add(*w));
            }
        }
        (acc, n)
    }
}

fn check(tree: &FibaTree<Sum>, seed: u64, step: usize, what: &str) {
    if let Err(e) = tree.check_invariants(&|a, b| a == b) {
        panic!("seed {seed} step {step} after {what}: {e}");
    }
}

fn fuzz_one_seed(seed: u64, steps: usize) {
    let mut rng = XorShift(seed | 1);
    let mut tree: FibaTree<Sum> = FibaTree::new();
    let mut mirror = Mirror {
        entries: Vec::new(),
    };
    let mut seq = 0u64;
    let mut min_ts = 0u64;
    let mut max_ts = 0u64;

    for step in 0..steps {
        let roll = rng.next() % 100;
        if roll < 70 || tree.is_empty() {
            // Insert, with the ts drawn from one of five adversarial
            // regimes chosen per step.
            let ts = match rng.next() % 5 {
                // In-order append near the right finger.
                0 => max_ts + rng.next() % 3,
                // Prepend near the left finger.
                1 => min_ts.saturating_sub(rng.next() % 3),
                // Tie storm: reuse an existing timestamp exactly.
                2 if !mirror.entries.is_empty() => {
                    let at = (rng.next() % mirror.entries.len() as u64) as usize;
                    mirror.entries[at].0 .0
                }
                // Deep straggler: far behind the current maximum.
                3 => max_ts.saturating_sub(50 + rng.next() % 200),
                // Uniform noise over the live span.
                _ => min_ts + rng.next() % (max_ts - min_ts + 10),
            };
            min_ts = min_ts.min(ts);
            max_ts = max_ts.max(ts);
            let key = (ts, seq);
            seq += 1;
            let w = rng.next() % 1_000;
            tree.insert(key, Sum(w));
            mirror.insert(key, w);
            check(&tree, seed, step, "insert");
        } else if roll < 85 {
            // Bulk eviction at a random rank's key (plus occasionally past
            // the end, which must empty the tree).
            let cut = if mirror.entries.is_empty() || rng.next().is_multiple_of(8) {
                (max_ts + 1, 0)
            } else {
                let at = (rng.next() % mirror.entries.len() as u64) as usize;
                mirror.entries[at].0
            };
            let dropped = tree.evict_before(cut);
            assert_eq!(
                dropped,
                mirror.evict_before(cut),
                "seed {seed} step {step}: eviction count diverged at cut {cut:?}"
            );
            check(&tree, seed, step, "evict_before");
            min_ts = mirror.entries.first().map_or(max_ts, |(k, _)| k.0);
        } else {
            // Read-only probes: random range aggregate + rank selection.
            let lo_ts = min_ts + rng.next() % (max_ts - min_ts + 5);
            let hi_ts = lo_ts + rng.next() % 60;
            let (lo, hi) = ((lo_ts, 0), (hi_ts, u64::MAX));
            let (got, got_n) = tree.range_agg(lo, hi);
            let (want, want_n) = mirror.range_sum(lo, hi);
            assert_eq!(got.map(|s| s.0), want, "seed {seed} step {step}: range_agg");
            assert_eq!(got_n, want_n, "seed {seed} step {step}: range count");
            let k = rng.next() % (mirror.entries.len() as u64 + 2);
            assert_eq!(
                tree.select(k),
                mirror.entries.get(k as usize).map(|(key, _)| *key),
                "seed {seed} step {step}: select({k})"
            );
        }
        assert_eq!(
            tree.len(),
            mirror.entries.len() as u64,
            "seed {seed} step {step}: length diverged"
        );
    }

    // End-state: traversal order and the full-range aggregate must match
    // the mirror exactly.
    let mut walked = Vec::new();
    tree.for_each(&mut |k, item| walked.push((k, item.0)));
    assert_eq!(walked, mirror.entries, "seed {seed}: final traversal order");
    let (total, n) = tree.range_agg((0, 0), (u64::MAX, u64::MAX));
    let (want_total, want_n) = mirror.range_sum((0, 0), (u64::MAX, u64::MAX));
    assert_eq!(total.map(|s| s.0), want_total, "seed {seed}: final total");
    assert_eq!(n, want_n, "seed {seed}: final count");
    assert_eq!(tree.min_key(), mirror.entries.first().map(|(k, _)| *k));
    assert_eq!(tree.max_key(), mirror.entries.last().map(|(k, _)| *k));
}

#[test]
fn invariants_hold_after_every_mutation_across_seeds() {
    for seed in [
        0x5eed_0001,
        0x5eed_0002,
        0xdead_beef,
        0x0bad_cafe,
        0x1234_5678,
        0xfeed_f00d,
    ] {
        fuzz_one_seed(seed, 3_000);
    }
}

#[test]
fn pure_append_and_pure_prepend_keep_fingers_valid() {
    // Degenerate regimes that stress one spine at a time: the finger
    // fast-path must stay valid while the opposite spine goes stale-cold.
    let mut tree: FibaTree<Sum> = FibaTree::new();
    for i in 0..2_000u64 {
        tree.insert((i, i), Sum(i));
        if i % 97 == 0 {
            tree.check_invariants(&|a, b| a == b)
                .unwrap_or_else(|e| panic!("append step {i}: {e}"));
        }
    }
    tree.check_invariants(&|a, b| a == b)
        .expect("after appends");
    let appends_cheap = tree.stats().finger_short_climbs;
    assert!(
        appends_cheap > 1_500,
        "appends should overwhelmingly take the finger fast path, got {appends_cheap}"
    );

    let mut tree: FibaTree<Sum> = FibaTree::new();
    for i in 0..2_000u64 {
        tree.insert((u64::MAX - i, i), Sum(i));
        if i % 97 == 0 {
            tree.check_invariants(&|a, b| a == b)
                .unwrap_or_else(|e| panic!("prepend step {i}: {e}"));
        }
    }
    tree.check_invariants(&|a, b| a == b)
        .expect("after prepends");
}

#[test]
fn repeated_grow_shrink_cycles_do_not_degrade_structure() {
    // Arena reuse under churn: grow to ~1k entries, evict ~90%, repeat.
    // Heights must stay logarithmic and invariants must hold at every
    // boundary.
    let mut tree: FibaTree<Sum> = FibaTree::new();
    let mut rng = XorShift(0xc0ff_ee00_c0ff_ee01);
    let mut seq = 0u64;
    let mut low = 0u64;
    for cycle in 0..20 {
        for _ in 0..1_000 {
            let ts = low + rng.next() % 500;
            tree.insert((ts, seq), Sum(1));
            seq += 1;
        }
        tree.check_invariants(&|a, b| a == b)
            .unwrap_or_else(|e| panic!("cycle {cycle} after growth: {e}"));
        assert!(
            tree.height() <= 7,
            "cycle {cycle}: height {} is not logarithmic for {} entries",
            tree.height(),
            tree.len()
        );
        low += 450;
        tree.evict_before((low, 0));
        tree.check_invariants(&|a, b| a == b)
            .unwrap_or_else(|e| panic!("cycle {cycle} after eviction: {e}"));
    }
    let (total, n) = tree.range_agg((0, 0), (u64::MAX, u64::MAX));
    assert_eq!(
        total.map(|s| s.0),
        Some(n),
        "unit weights must sum to the count"
    );
}
