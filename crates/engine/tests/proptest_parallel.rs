//! Property test: the batched keyed-parallel executor is observationally
//! identical to the sequential operator for *every* `AggregateKind`, under
//! out-of-order input with late events, across shard counts and batch sizes.

use proptest::prelude::*;
use quill_engine::aggregate::{AggregateKind, AggregateSpec};
use quill_engine::operator::{LatePolicy, Operator, WindowAggregateOp, WindowResult};
use quill_engine::parallel::{run_keyed_parallel_with, ParallelConfig};
use quill_engine::prelude::*;
use quill_engine::value::Key;

/// Every aggregate kind, including the order-sensitive and non-combinable
/// ones. `ArgMin`/`ArgMax` rank by row field 2.
fn all_kinds() -> Vec<AggregateSpec> {
    [
        AggregateKind::Count,
        AggregateKind::Sum,
        AggregateKind::Mean,
        AggregateKind::Min,
        AggregateKind::Max,
        AggregateKind::StdDev,
        AggregateKind::Variance,
        AggregateKind::Median,
        AggregateKind::Quantile(0.9),
        AggregateKind::DistinctCount,
        AggregateKind::First,
        AggregateKind::Last,
        AggregateKind::ArgMin(2),
        AggregateKind::ArgMax(2),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, kind)| AggregateSpec::new(kind, 1, format!("a{i}")))
    .collect()
}

/// Only combinable kinds, so an eligible sliding spec takes the shared-pane
/// path on every shard.
fn combinable_kinds() -> Vec<AggregateSpec> {
    [
        AggregateKind::Sum,
        AggregateKind::Mean,
        AggregateKind::Variance,
        AggregateKind::Max,
        AggregateKind::Last,
        AggregateKind::ArgMin(2),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, kind)| AggregateSpec::new(kind, 1, format!("a{i}")))
    .collect()
}

/// Out-of-order keyed stream: events carry `[Int key, Float value, Float
/// by]`; watermarks trail the max seen timestamp by `slack`, which makes
/// jittered-back events genuinely late.
fn stream(
    rows: &[(u64, i64, f64, f64)], // (ts, key, value, by)
    wm_every: usize,
    slack: u64,
) -> Vec<StreamElement> {
    let mut out = Vec::with_capacity(rows.len() + rows.len() / wm_every.max(1) + 1);
    let mut max_ts = 0u64;
    let mut wm = 0u64;
    for (i, &(ts, key, value, by)) in rows.iter().enumerate() {
        max_ts = max_ts.max(ts);
        out.push(StreamElement::Event(Event::new(
            ts,
            i as u64,
            Row::new([Value::Int(key), Value::Float(value), Value::Float(by)]),
        )));
        if (i + 1) % wm_every.max(1) == 0 {
            wm = wm.max(max_ts.saturating_sub(slack));
            out.push(StreamElement::Watermark(Timestamp(wm)));
        }
    }
    out.push(StreamElement::Flush);
    out
}

fn sequential_reference(
    elements: &[StreamElement],
    make_op: &dyn Fn() -> WindowAggregateOp,
) -> Vec<WindowResult> {
    let mut op = make_op();
    let mut results = Vec::new();
    for el in elements {
        op.process(el.clone(), &mut |o| {
            if let StreamElement::Event(e) = o {
                if let Some(r) = WindowResult::from_row(&e.row) {
                    results.push(r);
                }
            }
        });
    }
    results.sort_by_key(|r| (r.window.end, r.window.start, Key(r.key.clone())));
    results
}

fn check_identical(
    elements: Vec<StreamElement>,
    make_op: impl Fn() -> WindowAggregateOp + Copy,
) -> std::result::Result<(), TestCaseError> {
    let reference = sequential_reference(&elements, &make_op);
    for shards in [1usize, 2, 4, 8] {
        for batch in [1usize, 7, 1024] {
            let (out, _) = run_keyed_parallel_with(
                elements.clone(),
                0,
                ParallelConfig::new(shards).with_batch_size(batch),
                make_op,
            )
            .expect("parallel run");
            let got: Vec<WindowResult> = out
                .iter()
                .filter_map(|e| e.as_event())
                .filter_map(|e| WindowResult::from_row(&e.row))
                .collect();
            prop_assert_eq!(&got, &reference, "shards={} batch={}", shards, batch);
        }
    }
    Ok(())
}

fn rows_strategy(n: usize) -> impl Strategy<Value = Vec<(u64, i64, f64, f64)>> {
    // Mostly-increasing timestamps with jitter that can pull an event far
    // behind the watermark (late under slack below).
    prop::collection::vec((0u64..120, 0i64..5, -100.0f64..100.0, -10.0f64..10.0), 1..n).prop_map(
        |raw| {
            raw.into_iter()
                .enumerate()
                .map(|(i, (jitter, key, value, by))| {
                    let base = (i as u64) * 9;
                    (base.saturating_sub(jitter), key, value, by)
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_executor_identical_for_all_aggregate_kinds(
        rows in rows_strategy(120),
        wm_every in 1usize..20,
        slack in 0u64..80,
    ) {
        let elements = stream(&rows, wm_every, slack);
        for spec in [WindowSpec::tumbling(100u64), WindowSpec::sliding(150u64, 50u64)] {
            check_identical(elements.clone(), move || {
                WindowAggregateOp::new(spec, all_kinds(), Some(0), LatePolicy::Drop)
                    .expect("valid op")
            })?;
        }
    }

    #[test]
    fn batched_executor_identical_on_shared_pane_path(
        rows in rows_strategy(150),
        wm_every in 1usize..16,
        slack in 0u64..60,
    ) {
        let spec = WindowSpec::sliding(150u64, 50u64);
        let make = move || {
            WindowAggregateOp::new(spec, combinable_kinds(), Some(0), LatePolicy::Drop)
                .expect("valid op")
        };
        // The configuration must actually take the pane path.
        prop_assert!(make().shares_panes());
        check_identical(stream(&rows, wm_every, slack), make)?;
    }
}
