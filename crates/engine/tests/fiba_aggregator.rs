//! FiBA aggregator property battery.
//!
//! Three layers of differential evidence that the finger B-tree aggregator
//! is a drop-in replacement for the legacy window state:
//!
//! 1. **Structure vs. a naive sorted-Vec model** — random interleavings of
//!    in-order / out-of-order inserts, bulk evictions and range queries are
//!    replayed against a flat sorted vector. The tree item is an
//!    order-*recording* aggregate (concatenation), so a matching range
//!    aggregate proves both membership and left-to-right combine order, not
//!    just a commutative summary.
//! 2. **Ordered-f64 key encoding** — bit-exact round-trips for NaN, ±inf
//!    and -0.0, and agreement with `f64::total_cmp` on arbitrary bit
//!    patterns (the order-statistic trees index values through this map).
//! 3. **Operator-level differential across all 14 aggregate kinds** — the
//!    FiBA backend against the legacy backend on scrambled streams with
//!    deep stragglers, exact for every kind except the non-associative
//!    float reductions (Sum/Mean/Variance/StdDev over arbitrary floats),
//!    which are gated on the tolerance rule documented in DESIGN.md §17.

use proptest::prelude::*;
use quill_engine::aggregate::{AggregateKind, AggregateSpec};
use quill_engine::fiba::{
    f64_to_ordered, ordered_to_f64, FibaItem, FibaKey, FibaTree, WindowState,
};
use quill_engine::operator::{LatePolicy, Operator, WindowAggregateOp, WindowResult};
use quill_engine::prelude::*;

// ---------------------------------------------------------------------------
// Layer 1: FibaTree vs. a naive sorted-Vec model
// ---------------------------------------------------------------------------

/// Order-recording aggregate: combining concatenates the key lists, so the
/// subtree caches are only consistent if every node combines its children
/// strictly left-to-right. Any mis-ordered repair, stale cache, or wrong
/// routing shows up as a permuted (not merely different) aggregate.
#[derive(Clone, Debug, PartialEq)]
struct Trace(Vec<FibaKey>);

impl FibaItem for Trace {
    fn combine(&mut self, later: &Self) {
        self.0.extend_from_slice(&later.0);
    }
}

/// The reference model: a flat vector kept in stable `(ts, seq)` order with
/// the same insert tie-breaking as the tree (new entries go after equals).
#[derive(Default)]
struct Model {
    entries: Vec<(FibaKey, Trace)>,
}

impl Model {
    fn insert(&mut self, key: FibaKey, item: Trace) {
        let at = self.entries.partition_point(|(k, _)| *k <= key);
        self.entries.insert(at, (key, item));
    }

    fn range_agg(&self, lo: FibaKey, hi: FibaKey) -> (Option<Trace>, u64) {
        let mut acc: Option<Trace> = None;
        let mut n = 0u64;
        for (k, item) in &self.entries {
            if *k >= lo && *k <= hi {
                n += 1;
                match &mut acc {
                    None => acc = Some(item.clone()),
                    Some(a) => a.combine(item),
                }
            }
        }
        (acc, n)
    }

    fn evict_before(&mut self, cut: FibaKey) -> u64 {
        let before = self.entries.len();
        self.entries.retain(|(k, _)| *k >= cut);
        (before - self.entries.len()) as u64
    }

    fn select(&self, k: u64) -> Option<FibaKey> {
        self.entries.get(k as usize).map(|(key, _)| *key)
    }
}

#[derive(Debug, Clone)]
enum TreeOp {
    /// Insert at this timestamp (seq is assigned monotonically at replay, so
    /// equal timestamps are tie-dense but stably ordered).
    Insert(u64),
    /// Bulk-evict everything strictly below `(cut, 0)`.
    Evict(u64),
    /// Inclusive range aggregate + count over `[lo, lo + span]`.
    Range(u64, u64),
    /// Rank lookup.
    Select(u64),
}

fn tree_ops() -> impl Strategy<Value = Vec<TreeOp>> {
    // Timestamps on a narrow band so ties and out-of-order inserts are the
    // common case, not the exception. The insert arm is repeated to bias
    // the uniform union toward growth.
    let op = prop_oneof![
        (0u64..64).prop_map(TreeOp::Insert),
        (0u64..64).prop_map(TreeOp::Insert),
        (0u64..64).prop_map(TreeOp::Insert),
        (0u64..64).prop_map(TreeOp::Insert),
        (0u64..64).prop_map(TreeOp::Insert),
        (0u64..64).prop_map(TreeOp::Evict),
        (0u64..64, 0u64..32).prop_map(|(lo, span)| TreeOp::Range(lo, span)),
        (0u64..64, 0u64..32).prop_map(|(lo, span)| TreeOp::Range(lo, span)),
        (0u64..300).prop_map(TreeOp::Select),
    ];
    proptest::collection::vec(op, 1..250)
}

proptest! {
    #[test]
    fn tree_matches_sorted_vec_model_under_random_interleavings(ops in tree_ops()) {
        let mut tree: FibaTree<Trace> = FibaTree::new();
        let mut model = Model::default();
        let mut seq = 0u64;
        let mut evicted_total = 0u64;
        for op in &ops {
            match *op {
                TreeOp::Insert(ts) => {
                    let key = (ts, seq);
                    seq += 1;
                    tree.insert(key, Trace(vec![key]));
                    model.insert(key, Trace(vec![key]));
                }
                TreeOp::Evict(cut) => {
                    let dropped = tree.evict_before((cut, 0));
                    prop_assert_eq!(dropped, model.evict_before((cut, 0)));
                    evicted_total += dropped;
                }
                TreeOp::Range(lo, span) => {
                    let hi = lo + span;
                    let got = tree.range_agg((lo, 0), (hi, u64::MAX));
                    let want = model.range_agg((lo, 0), (hi, u64::MAX));
                    prop_assert_eq!(&got, &want);
                    prop_assert_eq!(tree.count_range((lo, 0), (hi, u64::MAX)), want.1);
                }
                TreeOp::Select(k) => {
                    prop_assert_eq!(tree.select(k), model.select(k));
                }
            }
            prop_assert_eq!(tree.len(), model.entries.len() as u64);
        }
        // Exhaustive end-state checks: traversal order, every rank, the full
        // range, min/max, eviction accounting, and structural invariants.
        let mut walked = Vec::new();
        tree.for_each(&mut |k, item| walked.push((k, item.clone())));
        prop_assert_eq!(&walked, &model.entries);
        for k in 0..model.entries.len() as u64 + 2 {
            prop_assert_eq!(tree.select(k), model.select(k));
        }
        let full = tree.range_agg((0, 0), (u64::MAX, u64::MAX));
        prop_assert_eq!(&full, &model.range_agg((0, 0), (u64::MAX, u64::MAX)));
        prop_assert_eq!(tree.min_key(), model.entries.first().map(|(k, _)| *k));
        prop_assert_eq!(tree.max_key(), model.entries.last().map(|(k, _)| *k));
        prop_assert_eq!(tree.stats().evicted, evicted_total);
        tree.check_invariants(&|a, b| a == b).expect("structural invariants");
    }
}

// ---------------------------------------------------------------------------
// Layer 2: ordered-f64 key encoding (NaN / ±inf / -0.0 bit-exactness)
// ---------------------------------------------------------------------------

#[test]
fn ordered_f64_roundtrip_is_bit_exact_for_special_values() {
    let specials = [
        f64::NAN,
        -f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        0.0,
        -0.0,
        f64::MIN_POSITIVE,
        -f64::MIN_POSITIVE,
        f64::MAX,
        f64::MIN,
        1.5,
        -1.5,
    ];
    for x in specials {
        let back = ordered_to_f64(f64_to_ordered(x));
        assert_eq!(
            back.to_bits(),
            x.to_bits(),
            "round-trip changed the bit pattern of {x:?}"
        );
    }
    // total_cmp order: -NaN < -inf < -1.5 < -0.0 < +0.0 < 1.5 < +inf < +NaN.
    let ordered = [
        -f64::NAN,
        f64::NEG_INFINITY,
        -1.5,
        -0.0,
        0.0,
        1.5,
        f64::INFINITY,
        f64::NAN,
    ];
    for pair in ordered.windows(2) {
        assert!(
            f64_to_ordered(pair[0]) < f64_to_ordered(pair[1]),
            "{:?} !< {:?} in the ordered encoding",
            pair[0],
            pair[1]
        );
    }
}

proptest! {
    #[test]
    fn ordered_f64_agrees_with_total_cmp_on_arbitrary_bits(a in any::<u64>(), b in any::<u64>()) {
        let (x, y) = (f64::from_bits(a), f64::from_bits(b));
        prop_assert_eq!(f64_to_ordered(x).cmp(&f64_to_ordered(y)), x.total_cmp(&y));
        prop_assert_eq!(ordered_to_f64(f64_to_ordered(x)).to_bits(), x.to_bits());
    }
}

// ---------------------------------------------------------------------------
// Layer 3: operator-level differential across all 14 aggregate kinds
// ---------------------------------------------------------------------------

/// All 14 aggregate kinds over field 1, with field 2 as the Arg* companion.
fn all_kinds() -> Vec<AggregateSpec> {
    vec![
        AggregateSpec::new(AggregateKind::Count, 1, "count"),
        AggregateSpec::new(AggregateKind::Sum, 1, "sum"),
        AggregateSpec::new(AggregateKind::Mean, 1, "mean"),
        AggregateSpec::new(AggregateKind::Min, 1, "min"),
        AggregateSpec::new(AggregateKind::Max, 1, "max"),
        AggregateSpec::new(AggregateKind::StdDev, 1, "stddev"),
        AggregateSpec::new(AggregateKind::Variance, 1, "var"),
        AggregateSpec::new(AggregateKind::Median, 1, "median"),
        AggregateSpec::new(AggregateKind::Quantile(0.25), 1, "q25"),
        AggregateSpec::new(AggregateKind::DistinctCount, 1, "distinct"),
        AggregateSpec::new(AggregateKind::First, 1, "first"),
        AggregateSpec::new(AggregateKind::Last, 1, "last"),
        AggregateSpec::new(AggregateKind::ArgMin(2), 1, "argmin"),
        AggregateSpec::new(AggregateKind::ArgMax(2), 1, "argmax"),
    ]
}

/// Non-associative float reductions: their combine tree shape differs
/// between the FiBA and legacy backends, so equality is gated on the
/// relative tolerance documented in DESIGN.md §17. Everything else —
/// including Min/Max/Median/Quantile on floats, which only *order* values —
/// must be bit-exact. Sum and Mean become exact again when every input is
/// an integer-valued float with an exactly representable sum (addition is
/// then exact in every nesting), while Variance/StdDev stay
/// nesting-sensitive even on integers: Welford inserts and Chan-style
/// partial merges round their divisions differently.
fn must_be_exact(name: &str, integer_inputs: bool) -> bool {
    match name {
        "sum" | "mean" => integer_inputs,
        "stddev" | "var" => false,
        _ => true,
    }
}

/// DESIGN.md §17 tolerance rule for non-associative float aggregates.
const FLOAT_COMBINE_REL_TOL: f64 = 1e-9;

fn values_close(a: &Value, b: &Value) -> bool {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => {
            (x.is_nan() && y.is_nan())
                || x == y
                || (x - y).abs() <= FLOAT_COMBINE_REL_TOL * x.abs().max(y.abs())
        }
        _ => a == b,
    }
}

fn run_backend(
    window: WindowSpec,
    aggs: &[AggregateSpec],
    key_field: Option<usize>,
    state: WindowState,
    input: &[StreamElement],
) -> Vec<WindowResult> {
    let mut op = WindowAggregateOp::new(window, aggs.to_vec(), key_field, LatePolicy::Drop)
        .expect("valid spec")
        .with_window_state(state);
    let mut out = Vec::new();
    for el in input {
        op.process(el.clone(), &mut |o| {
            if let Some(e) = o.as_event() {
                if let Some(r) = WindowResult::from_row(&e.row) {
                    out.push(r);
                }
            }
        });
    }
    op.process(StreamElement::Flush, &mut |o| {
        if let Some(e) = o.as_event() {
            if let Some(r) = WindowResult::from_row(&e.row) {
                out.push(r);
            }
        }
    });
    out
}

fn assert_backends_agree(
    window: WindowSpec,
    aggs: &[AggregateSpec],
    key_field: Option<usize>,
    input: &[StreamElement],
    integer_inputs: bool,
) {
    let fiba = run_backend(window, aggs, key_field, WindowState::Fiba, input);
    let legacy = run_backend(window, aggs, key_field, WindowState::Legacy, input);
    assert_eq!(fiba.len(), legacy.len(), "result counts diverged");
    assert!(!fiba.is_empty(), "stream produced no windows");
    for (f, l) in fiba.iter().zip(&legacy) {
        assert_eq!(f.window, l.window);
        assert_eq!(f.key, l.key);
        assert_eq!(f.aggregates.len(), l.aggregates.len());
        for (spec, (fv, lv)) in aggs.iter().zip(f.aggregates.iter().zip(&l.aggregates)) {
            let name = spec.name.as_str();
            if must_be_exact(name, integer_inputs) {
                assert_eq!(
                    fv, lv,
                    "{name} diverged in window {:?} key {:?}",
                    f.window, f.key
                );
            } else {
                assert!(
                    values_close(fv, lv),
                    "{name} outside tolerance in window {:?}: {fv:?} vs {lv:?}",
                    f.window
                );
            }
        }
    }
}

/// Deterministic scrambled stream: integer-valued floats (so Sum/Mean are
/// exact in f64 and the whole battery can assert bit-equality), a null every
/// 11th event, deep stragglers every 7th event, and periodic watermarks that
/// make some of those stragglers late.
fn scrambled_stream(n: u64, keys: u64) -> Vec<StreamElement> {
    let mut out = Vec::new();
    let mut max_ts = 0u64;
    for i in 0..n {
        let base = (i / 3) * 9;
        let ts = if i % 7 == 3 {
            base.saturating_sub(70) // deep straggler, >= W/2 behind
        } else {
            base + (i * 5) % 13
        };
        max_ts = max_ts.max(ts);
        let v = if i % 11 == 10 {
            Value::Null
        } else {
            Value::Float(((i * 37) % 101) as f64 - 50.0)
        };
        let by = Value::Float(((i * 29) % 53) as f64);
        out.push(StreamElement::Event(Event::new(
            ts,
            i,
            Row::new([Value::Int((i % keys) as i64), v, by]),
        )));
        if i % 13 == 12 {
            out.push(StreamElement::Watermark(Timestamp(
                max_ts.saturating_sub(25),
            )));
        }
    }
    out
}

#[test]
fn all_fourteen_kinds_are_exact_on_integer_valued_floats() {
    let input = scrambled_stream(400, 5);
    for window in [
        WindowSpec::tumbling(40u64),
        WindowSpec::sliding(60u64, 20u64),
        // Misaligned slide: panes are unavailable to the legacy backend, so
        // this leg compares FiBA against the per-window sorted-Vec path.
        WindowSpec::sliding(50u64, 15u64),
    ] {
        assert_backends_agree(window, &all_kinds(), Some(0), &input, true);
        assert_backends_agree(window, &all_kinds(), None, &input, true);
    }
}

#[test]
fn float_combine_nesting_stays_within_documented_tolerance() {
    // Catastrophic-cancellation values: different combine tree shapes give
    // different roundings, which is exactly what the DESIGN.md §17 tolerance
    // rule exists for. Min/Max/Median/Quantile stay bit-exact even here.
    let mut out = Vec::new();
    let vals = [
        1.0e16,
        1.0,
        -1.0e16,
        0.1,
        3.333_333_3,
        -7.77e-3,
        1.0e12,
        -0.999,
    ];
    for i in 0..240u64 {
        let base = (i / 4) * 10;
        let ts = if i % 5 == 2 {
            base.saturating_sub(45)
        } else {
            base + i % 7
        };
        out.push(StreamElement::Event(Event::new(
            ts,
            i,
            Row::new([
                Value::Int((i % 3) as i64),
                Value::Float(vals[(i % 8) as usize] * (1.0 + (i % 9) as f64 * 1e-6)),
                Value::Float((i % 10) as f64),
            ]),
        )));
        if i % 12 == 11 {
            out.push(StreamElement::Watermark(Timestamp(base.saturating_sub(20))));
        }
    }
    assert_backends_agree(
        WindowSpec::sliding(40u64, 10u64),
        &all_kinds(),
        Some(0),
        &out,
        false,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn backends_agree_on_random_streams(
        raw in proptest::collection::vec((0u64..240, 0i64..40, any::<bool>()), 20..200),
        len in 1u64..80,
        slide_frac in 1u64..=4,
        keyed in any::<bool>(),
    ) {
        let slide = (len / slide_frac).max(1);
        let mut input = Vec::new();
        let mut max_ts = 0u64;
        for (i, (ts, v, null)) in raw.iter().enumerate() {
            max_ts = max_ts.max(*ts);
            let val = if *null { Value::Null } else { Value::Float(*v as f64) };
            input.push(StreamElement::Event(Event::new(
                *ts,
                i as u64,
                Row::new([Value::Int(v % 4), val, Value::Float((*ts % 19) as f64)]),
            )));
            if i % 16 == 15 {
                input.push(StreamElement::Watermark(Timestamp(max_ts.saturating_sub(len))));
            }
        }
        let key_field = if keyed { Some(0) } else { None };
        let specs = all_kinds();
        let fiba = run_backend(WindowSpec::sliding(len, slide), &specs, key_field, WindowState::Fiba, &input);
        let legacy = run_backend(WindowSpec::sliding(len, slide), &specs, key_field, WindowState::Legacy, &input);
        // Integer-valued floats: everything except Variance/StdDev (whose
        // Welford-vs-Chan roundings differ even on integers) is bit-exact.
        prop_assert_eq!(fiba.len(), legacy.len());
        for (f, l) in fiba.iter().zip(&legacy) {
            prop_assert_eq!(&f.window, &l.window);
            prop_assert_eq!(&f.key, &l.key);
            for (spec, (fv, lv)) in specs.iter().zip(f.aggregates.iter().zip(&l.aggregates)) {
                if must_be_exact(&spec.name, true) {
                    prop_assert_eq!(fv, lv, "{} diverged in {:?}", spec.name, f.window);
                } else {
                    prop_assert!(
                        values_close(fv, lv),
                        "{} outside tolerance in {:?}: {:?} vs {:?}",
                        spec.name, f.window, fv, lv
                    );
                }
            }
        }
    }
}
