//! Regression: equal-timestamp tie-breaking in the k-way parallel merge.
//!
//! Streams whose timestamps cluster onto a coarse quantum produce many
//! `(window end, window start)` merge-key ties — across keys on different
//! shards, and within one key on one shard. The merged result sequence must
//! be byte-identical across 1/2/4/8 shards, across batch sizes, and between
//! the threaded and deterministic-inline schedulers; anything less means the
//! merge order (and therefore downstream consumers) depends on scheduling.

use quill_engine::aggregate::{AggregateKind, AggregateSpec};
use quill_engine::fiba::WindowState;
use quill_engine::operator::{LatePolicy, Operator, ShardStage, WindowAggregateOp, WindowResult};
use quill_engine::parallel::{
    run_keyed_parallel_observed, run_keyed_parallel_with, ParallelConfig,
};
use quill_engine::prelude::*;
use quill_engine::value::Key;
use quill_telemetry::trace::FlightRecorder;
use quill_telemetry::Registry;

/// Tie-heavy keyed stream: every timestamp is a multiple of 10, each `(ts,
/// key)` pair occurs several times with distinct values, and periodic
/// watermarks make some events late.
fn tie_stream() -> Vec<StreamElement> {
    let mut out = Vec::new();
    let mut seq = 0u64;
    let mut max_ts = 0u64;
    for step in 0..120u64 {
        // Quantized timestamps with a deterministic back-jitter: plenty of
        // duplicates, some behind the watermark.
        let ts = ((step * 7) % 300) / 10 * 10;
        max_ts = max_ts.max(ts);
        for dup in 0..3u64 {
            let key = (step + dup) % 8;
            out.push(StreamElement::Event(Event::new(
                ts,
                seq,
                Row::new([
                    Value::Int(key as i64),
                    Value::Float((step * 31 + dup * 17) as f64 % 97.0),
                    Value::Float((dup * 13) as f64 - (step % 5) as f64),
                ]),
            )));
            seq += 1;
        }
        if step % 9 == 8 {
            out.push(StreamElement::Watermark(Timestamp(
                max_ts.saturating_sub(40),
            )));
        }
    }
    out.push(StreamElement::Flush);
    out
}

fn make_op() -> WindowAggregateOp {
    WindowAggregateOp::new(
        WindowSpec::sliding(60u64, 20u64),
        vec![
            AggregateSpec::new(AggregateKind::First, 1, "first"),
            AggregateSpec::new(AggregateKind::Last, 1, "last"),
            AggregateSpec::new(AggregateKind::Sum, 1, "sum"),
            AggregateSpec::new(AggregateKind::ArgMax(2), 1, "am"),
        ],
        Some(0),
        LatePolicy::Drop,
    )
    .expect("valid spec")
}

/// Full result sequence (order matters — this is what the merge emits).
fn results_of(cfg: ParallelConfig) -> Vec<WindowResult> {
    let (out, _) = run_keyed_parallel_with(tie_stream(), 0, cfg, make_op).expect("parallel run");
    out.iter()
        .filter_map(|e| e.as_event())
        .filter_map(|e| WindowResult::from_row(&e.row))
        .collect()
}

#[test]
fn merge_order_is_identical_across_shard_counts() {
    let reference = results_of(ParallelConfig::new(1));
    assert!(!reference.is_empty(), "test stream produced no windows");
    for shards in [2usize, 4, 8] {
        for batch in [1usize, 16, 256] {
            let got = results_of(ParallelConfig::new(shards).with_batch_size(batch));
            assert_eq!(
                got, reference,
                "merged sequence diverged at shards={shards} batch={batch}"
            );
        }
    }
}

#[test]
fn merge_order_is_sorted_by_window_then_key() {
    let results = results_of(ParallelConfig::new(4));
    let keys: Vec<(Timestamp, Timestamp, Key)> = results
        .iter()
        .map(|r| (r.window.end, r.window.start, Key(r.key.clone())))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(
        keys, sorted,
        "merge emitted windows out of (end, start, key) order"
    );
}

#[test]
fn deterministic_inline_scheduler_reproduces_threaded_merge() {
    for shards in [1usize, 2, 4, 8] {
        let threaded = results_of(ParallelConfig::new(shards).with_batch_size(32));
        let inline = results_of(
            ParallelConfig::new(shards)
                .with_batch_size(32)
                .with_deterministic(true),
        );
        assert_eq!(inline, threaded, "schedulers diverged at shards={shards}");
    }
}

/// Result sequence from the shard-local finalization path: each shard's
/// window operator is wrapped in a [`ShardStage`] and fed the *unordered*
/// stream exactly as a control-only disorder strategy would forward it —
/// events in arrival order with the watermark sequence interleaved.
fn staged_results_of(cfg: ParallelConfig) -> Vec<WindowResult> {
    let (out, _) = run_keyed_parallel_observed(
        tie_stream(),
        0,
        cfg,
        &Registry::disabled(),
        &FlightRecorder::disabled(),
        |_| ShardStage::new(make_op()),
    )
    .expect("staged parallel run");
    out.iter()
        .filter_map(|e| e.as_event())
        .filter_map(|e| WindowResult::from_row(&e.row))
        .collect()
}

#[test]
fn shard_local_staging_reproduces_global_staging_ties() {
    // Global-staging reference: one ShardStage re-orders the whole stream
    // (exactly what a global SlackBuffer delivers), then one operator
    // finalizes every key. Tie-heavy late events exercise the late-pass
    // forwarding inside the stage.
    let mut stage = ShardStage::new(make_op());
    let mut reference = Vec::new();
    for el in tie_stream() {
        stage.process(el, &mut |o| {
            if let Some(e) = o.as_event() {
                if let Some(r) = WindowResult::from_row(&e.row) {
                    reference.push(r);
                }
            }
        });
    }
    reference.sort_by_key(|r| (r.window.end, r.window.start, Key(r.key.clone())));
    assert!(!reference.is_empty(), "staged stream produced no windows");

    let mut merged_order: Option<Vec<WindowResult>> = None;
    for shards in [1usize, 2, 4, 8] {
        for deterministic in [false, true] {
            let got = staged_results_of(
                ParallelConfig::new(shards)
                    .with_batch_size(16)
                    .with_deterministic(deterministic),
            );
            let mut sorted = got.clone();
            sorted.sort_by_key(|r| (r.window.end, r.window.start, Key(r.key.clone())));
            assert_eq!(
                sorted, reference,
                "shard-local finalization diverged from global staging at \
                 shards={shards} deterministic={deterministic}"
            );
            // The merged sequence itself must also be identical across shard
            // counts and schedulers, not just as a sorted set.
            match &merged_order {
                None => merged_order = Some(got),
                Some(first) => assert_eq!(
                    &got, first,
                    "merged sequence depends on shards={shards} \
                     deterministic={deterministic}"
                ),
            }
        }
    }
}

/// Full result sequence for an explicit window state backend.
fn results_with_state(cfg: ParallelConfig, state: WindowState) -> Vec<WindowResult> {
    let (out, _) = run_keyed_parallel_with(tie_stream(), 0, cfg, move || {
        make_op().with_window_state(state)
    })
    .expect("parallel run");
    out.iter()
        .filter_map(|e| e.as_event())
        .filter_map(|e| WindowResult::from_row(&e.row))
        .collect()
}

/// Shard-local finalization variant (ShardStage wrapping) for a backend.
fn staged_results_with_state(cfg: ParallelConfig, state: WindowState) -> Vec<WindowResult> {
    let (out, _) = run_keyed_parallel_observed(
        tie_stream(),
        0,
        cfg,
        &Registry::disabled(),
        &FlightRecorder::disabled(),
        move |_| ShardStage::new(make_op().with_window_state(state)),
    )
    .expect("staged parallel run");
    out.iter()
        .filter_map(|e| e.as_event())
        .filter_map(|e| WindowResult::from_row(&e.row))
        .collect()
}

#[test]
fn fiba_and_legacy_finalize_equal_timestamp_ties_identically() {
    // The FiBA backend orders equal-timestamp events by `(ts, seq)`; the
    // legacy backend folds them in arrival order. Within one key on one
    // shard those coincide, so First/Last/ArgMax on tied timestamps — and
    // the merged result sequence — must be identical across backends at
    // every shard count and under both schedulers. The stream's Sum values
    // are integer-valued floats, so even the float column is bit-exact.
    for shards in [1usize, 2, 4, 8] {
        for deterministic in [false, true] {
            let cfg = || {
                ParallelConfig::new(shards)
                    .with_batch_size(16)
                    .with_deterministic(deterministic)
            };
            let legacy = results_with_state(cfg(), WindowState::Legacy);
            let fiba = results_with_state(cfg(), WindowState::Fiba);
            assert!(!legacy.is_empty(), "test stream produced no windows");
            assert_eq!(
                fiba, legacy,
                "backends diverged at shards={shards} deterministic={deterministic}"
            );
            let staged_legacy = staged_results_with_state(cfg(), WindowState::Legacy);
            let staged_fiba = staged_results_with_state(cfg(), WindowState::Fiba);
            assert_eq!(
                staged_fiba, staged_legacy,
                "staged backends diverged at shards={shards} deterministic={deterministic}"
            );
        }
    }
}

#[test]
fn same_key_equal_timestamp_folds_are_shard_invariant() {
    // All duplicates of one key land on one shard; their fold order (and so
    // First/Last on tied timestamps) must not depend on the shard count.
    let reference = results_of(ParallelConfig::new(1));
    let eight = results_of(ParallelConfig::new(8));
    for (a, b) in reference.iter().zip(&eight) {
        assert_eq!(
            a.aggregates, b.aggregates,
            "window {:?} key {:?}",
            a.window, a.key
        );
    }
}
