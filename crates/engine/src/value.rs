//! Dynamically-typed tuple values, rows and schemas.
//!
//! Queries in quill operate on [`Row`]s — flat tuples of [`Value`]s described
//! by a [`Schema`]. A dynamic representation (rather than generics) keeps
//! pipelines composable at runtime, which the benchmark harness relies on to
//! construct queries from experiment specifications.

use crate::error::{EngineError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The type of a field in a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FieldType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl fmt::Display for FieldType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldType::Int => write!(f, "int"),
            FieldType::Float => write!(f, "float"),
            FieldType::Str => write!(f, "str"),
            FieldType::Bool => write!(f, "bool"),
        }
    }
}

/// A single dynamically-typed value.
///
/// `Null` is the absence of a value (e.g. a failed projection); aggregates
/// skip nulls rather than poisoning the result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Absent value.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// UTF-8 string (cheaply cloneable).
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Value {
        Value::Str(s.into())
    }

    /// The [`FieldType`] of this value, or `None` for `Null`.
    pub fn field_type(&self) -> Option<FieldType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(FieldType::Int),
            Value::Float(_) => Some(FieldType::Float),
            Value::Str(_) => Some(FieldType::Str),
            Value::Bool(_) => Some(FieldType::Bool),
        }
    }

    /// Whether the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: ints and floats widen to `f64`; everything else is
    /// `None`. This is the view aggregation functions use.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view (exact; floats are not silently truncated).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A total ordering usable for grouping keys and min/max aggregates.
    ///
    /// Orders by variant first (`Null < Bool < Int/Float < Str`), with ints
    /// and floats compared numerically against each other and NaN sorted
    /// greatest among numbers.
    pub fn total_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

/// A grouping key: a `Value` wrapper that is `Eq + Hash + Ord` using the
/// total ordering (floats hashed by bit pattern).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Key(pub Value);

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}
/// Hash a [`Value`] consistently with [`Key`]'s equality (`total_cmp`):
/// ints hash as their `f64` bit pattern so `Int(3)` and `Float(3.0)` — equal
/// keys — collide, and floats hash by bits. Borrows the value, so hot paths
/// (shard routing) hash without cloning into a [`Key`] first.
pub fn hash_value<H: std::hash::Hasher>(v: &Value, state: &mut H) {
    use std::hash::Hash;
    match v {
        Value::Null => 0u8.hash(state),
        Value::Bool(b) => {
            1u8.hash(state);
            b.hash(state);
        }
        Value::Int(i) => {
            2u8.hash(state);
            (*i as f64).to_bits().hash(state);
        }
        Value::Float(f) => {
            2u8.hash(state);
            f.to_bits().hash(state);
        }
        Value::Str(s) => {
            3u8.hash(state);
            s.hash(state);
        }
    }
}

impl std::hash::Hash for Key {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        hash_value(&self.0, state);
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A named, typed field of a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Field name, unique within the schema.
    pub name: String,
    /// Declared type. `Null`s are permitted in any field.
    pub ty: FieldType,
}

/// An ordered list of named fields describing a [`Row`] layout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    ///
    /// # Errors
    /// Returns [`EngineError::DuplicateField`] on repeated names.
    pub fn new(fields: impl IntoIterator<Item = (impl Into<String>, FieldType)>) -> Result<Schema> {
        let fields: Vec<Field> = fields
            .into_iter()
            .map(|(name, ty)| Field {
                name: name.into(),
                ty,
            })
            .collect();
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(EngineError::DuplicateField(f.name.clone()));
            }
        }
        Ok(Schema { fields })
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the field with the given name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| EngineError::UnknownField(name.to_string()))
    }

    /// Type of the named field.
    pub fn type_of(&self, name: &str) -> Result<FieldType> {
        Ok(self.fields[self.index_of(name)?].ty)
    }

    /// Check that `row` matches this schema (arity and non-null types).
    pub fn validate(&self, row: &Row) -> Result<()> {
        if row.len() != self.fields.len() {
            return Err(EngineError::ArityMismatch {
                expected: self.fields.len(),
                got: row.len(),
            });
        }
        for (f, v) in self.fields.iter().zip(row.values()) {
            if let Some(ty) = v.field_type() {
                if ty != f.ty {
                    return Err(EngineError::TypeMismatch {
                        field: f.name.clone(),
                        expected: f.ty,
                        got: ty,
                    });
                }
            }
        }
        Ok(())
    }
}

/// A flat tuple of values.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Row(Vec<Value>);

impl Row {
    /// Build a row from values.
    pub fn new(values: impl IntoIterator<Item = impl Into<Value>>) -> Row {
        Row(values.into_iter().map(Into::into).collect())
    }

    /// An empty row.
    pub fn empty() -> Row {
        Row(Vec::new())
    }

    /// The values in order.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the row is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Value at position `i`, or `Null` when out of bounds.
    pub fn get(&self, i: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.0.get(i).unwrap_or(&NULL)
    }

    /// Numeric view of position `i`.
    pub fn f64(&self, i: usize) -> Option<f64> {
        self.get(i).as_f64()
    }

    /// Append a value, returning the extended row.
    pub fn with(mut self, v: impl Into<Value>) -> Row {
        self.0.push(v.into());
        self
    }

    /// Mutable access for in-place operators.
    pub fn set(&mut self, i: usize, v: Value) {
        if i < self.0.len() {
            self.0[i] = v;
        }
    }

    /// Project onto the given column indices (missing indices become null).
    pub fn project(&self, indices: &[usize]) -> Row {
        Row(indices.iter().map(|&i| self.get(i).clone()).collect())
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Row(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_rejects_duplicates() {
        let err = Schema::new([("a", FieldType::Int), ("a", FieldType::Float)]).unwrap_err();
        assert!(matches!(err, EngineError::DuplicateField(f) if f == "a"));
    }

    #[test]
    fn schema_lookup() {
        let s = Schema::new([("a", FieldType::Int), ("b", FieldType::Float)]).unwrap();
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert_eq!(s.type_of("a").unwrap(), FieldType::Int);
        assert!(s.index_of("c").is_err());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn schema_validates_rows() {
        let s = Schema::new([("a", FieldType::Int), ("b", FieldType::Float)]).unwrap();
        assert!(s
            .validate(&Row::new([Value::Int(1), Value::Float(2.0)]))
            .is_ok());
        // Nulls are allowed in any field.
        assert!(s
            .validate(&Row::new([Value::Null, Value::Float(2.0)]))
            .is_ok());
        assert!(s
            .validate(&Row::new([Value::Float(1.0), Value::Float(2.0)]))
            .is_err());
        assert!(s.validate(&Row::new([Value::Int(1)])).is_err());
    }

    #[test]
    fn value_numeric_views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Float(2.5).as_i64(), None);
    }

    #[test]
    fn total_cmp_orders_across_numeric_types() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Less);
        assert_eq!(Value::Float(3.0).total_cmp(&Value::Int(3)), Equal);
        assert_eq!(Value::Null.total_cmp(&Value::Int(0)), Less);
        assert_eq!(Value::str("a").total_cmp(&Value::Int(0)), Greater);
    }

    #[test]
    fn key_equality_and_hash_agree_for_int_float() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(Key(Value::Int(3)), 1);
        // 3 and 3.0 are the same key under the numeric total order.
        assert_eq!(m.get(&Key(Value::Float(3.0))), Some(&1));
    }

    #[test]
    fn row_projection_and_access() {
        let r = Row::new([Value::Int(1), Value::str("a"), Value::Float(3.0)]);
        assert_eq!(
            r.project(&[2, 0]),
            Row::new([Value::Float(3.0), Value::Int(1)])
        );
        assert_eq!(r.get(99), &Value::Null);
        assert_eq!(r.f64(2), Some(3.0));
        let r2 = r.clone().with(true);
        assert_eq!(r2.len(), 4);
    }
}
