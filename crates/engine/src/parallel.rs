//! Keyed data-parallel execution.
//!
//! Keyed window aggregation partitions cleanly by grouping key: each shard
//! owns a disjoint key subset, receives every watermark (broadcast), and
//! runs an independent operator instance on its own thread. Results are
//! merged deterministically, so the parallel run is observationally
//! identical (as a set, and in (window, key) order) to the single-threaded
//! one — asserted by tests and a proptest, and used by the scalability
//! bench.
//!
//! The executor is batched and allocation-lean:
//!
//! * **Batched routing** — events travel to shards as `Vec<StreamElement>`
//!   chunks over bounded channels ([`ParallelConfig::batch_size`] per chunk)
//!   instead of one channel send per event. Watermarks are appended to
//!   *every* shard's pending batch, and a watermark that neither follows a
//!   shard event nor releases one the shard still holds staged *coalesces*
//!   (the trailing watermark is replaced in place) — see the internal
//!   `ShardRouter` for why the release guard is load-bearing. `Flush`
//!   still forces every pending batch out.
//! * **Shard routing** — [`shard_of`] hashes the key `Value` in place with a
//!   seeded [`FxHasher`]: no `Key` clone, no per-event `DefaultHasher`
//!   construction, stable across runs/threads/platforms.
//! * **Result channel** — workers ship finished result-run segments back
//!   over one shared unbounded channel as they are produced instead of
//!   holding their whole output until join; segments concatenate per shard
//!   in FIFO order, so each shard's run is preserved exactly.
//! * **Single-shard bypass** — `shards == 1` skips channels, threads and
//!   routing buffers entirely and runs the operator inline; the output
//!   still goes through the same merge so ordering (and merge telemetry)
//!   semantics are unchanged.
//! * **Ordered merge** — each shard's [`WindowAggregateOp`] already emits in
//!   `(window.end, window.start, key)` order, so the global order is
//!   recovered by a batch-at-a-time galloping merge of the per-shard runs:
//!   pick the run whose head is smallest (ties broken by shard index),
//!   binary-search how far it may run before the next run's head, and copy
//!   that whole prefix at once — O(total) moves with O(log) comparisons per
//!   *chunk* rather than a heap operation per *element*. If a shard's run
//!   is not sorted — e.g. a revising operator interleaves revision rows —
//!   the merge falls back to one stable sort over order keys that are
//!   computed *once per element* (no per-comparison `String` allocation).
//!
//! Shard-local window finalization (staging inside each shard via
//! [`ShardStage`](crate::operator::ShardStage), merging finalized window
//! results instead of re-ordering events) is built on these primitives by
//! `quill-core`'s runner: the disorder-control strategy runs in
//! control-only mode and each shard re-orders only its own keys.
//!
//! [`WindowAggregateOp`]: crate::operator::WindowAggregateOp

use crate::error::{EngineError, Result};
use crate::event::StreamElement;
use crate::hash::FxHasher;
use crate::operator::{Operator, WindowResult};
use crate::time::Timestamp;
use crate::value::{hash_value, Key, Value};
use crossbeam::channel;
use quill_telemetry::trace::{FlightRecorder, TraceKind, MERGE_SHARD};
use quill_telemetry::{Counter, Gauge, Registry, SpanRecorder, Stage};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tuning knobs for [`run_keyed_parallel_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of worker shards (threads). Must be > 0.
    pub shards: usize,
    /// Events per routed batch. `1` degenerates to per-event sends; larger
    /// batches amortise channel synchronisation. Must be > 0.
    pub batch_size: usize,
    /// Bounded channel capacity, in *batches*, per shard. Bounds memory to
    /// roughly `shards × channel_capacity × batch_size` in-flight events.
    /// Must be > 0.
    pub channel_capacity: usize,
    /// Run the shards inline on the caller thread, in shard order, instead
    /// of spawning worker threads. Routing, batching and the output merge
    /// are byte-for-byte the code the threaded path runs, so the output is
    /// identical — this is the deterministic shard-scheduler seam the
    /// `quill-sim` differential harness sweeps to prove the merged output is
    /// independent of worker scheduling (and to run thousands of small cases
    /// without thread-spawn overhead).
    pub deterministic: bool,
}

impl ParallelConfig {
    /// Config with the given shard count and default batching parameters.
    pub fn new(shards: usize) -> ParallelConfig {
        ParallelConfig {
            shards,
            ..ParallelConfig::default()
        }
    }

    /// Set the routed batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> ParallelConfig {
        self.batch_size = batch_size;
        self
    }

    /// Set the per-shard channel capacity (in batches).
    pub fn with_channel_capacity(mut self, capacity: usize) -> ParallelConfig {
        self.channel_capacity = capacity;
        self
    }

    /// Toggle deterministic inline execution (no worker threads; shards run
    /// on the caller thread in shard order). Output is identical to the
    /// threaded path by construction.
    pub fn with_deterministic(mut self, deterministic: bool) -> ParallelConfig {
        self.deterministic = deterministic;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(EngineError::InvalidPipeline("shards must be > 0".into()));
        }
        if self.batch_size == 0 {
            return Err(EngineError::InvalidPipeline(
                "batch_size must be > 0".into(),
            ));
        }
        if self.channel_capacity == 0 {
            return Err(EngineError::InvalidPipeline(
                "channel_capacity must be > 0".into(),
            ));
        }
        Ok(())
    }
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        ParallelConfig {
            shards: 4,
            batch_size: 256,
            channel_capacity: 64,
            deterministic: false,
        }
    }
}

/// Stable shard assignment for a key: hashes the borrowed `Value` with a
/// seeded [`FxHasher`] — no clone, no hasher key-schedule per call, and
/// coherent with [`Key`] equality (`Int(3)` and `Float(3.0)` land on the
/// same shard).
pub fn shard_of(key: &Value, shards: usize) -> usize {
    let mut h = FxHasher::new();
    hash_value(key, &mut h);
    (h.finish() % shards.max(1) as u64) as usize
}

/// Run a keyed operator data-parallel over `config.shards` threads, routing
/// events in batches, and return the merged output together with the
/// per-shard operator instances (for stats aggregation).
///
/// * `elements` — the (already disorder-controlled) input stream;
/// * `key_field` — the row index events are partitioned by;
/// * `config` — shard count and batching parameters;
/// * `make_op` — factory producing one operator instance per shard (each
///   must behave identically on its key subset).
///
/// Events are routed by key hash; watermarks and flush are broadcast to all
/// shards as batch delimiters. Returns all output *events* (window results)
/// in deterministic `(window.end, window.start, key)` order, plus the
/// operators in shard order.
///
/// # Errors
/// [`EngineError::ExecutorFailure`] if a worker panics or dies early;
/// [`EngineError::InvalidPipeline`] for a zero shard count, batch size or
/// channel capacity.
pub fn run_keyed_parallel_with<O>(
    elements: Vec<StreamElement>,
    key_field: usize,
    config: ParallelConfig,
    make_op: impl Fn() -> O,
) -> Result<(Vec<StreamElement>, Vec<O>)>
where
    O: Operator + 'static,
{
    run_keyed_parallel_instrumented(elements, key_field, config, &Registry::disabled(), make_op)
}

/// Per-shard executor telemetry: routed-event/batch counters, a derived
/// queue-depth gauge (batches sent minus batches the worker finished — the
/// stub channel has no `len()`), and a shared done-counter the worker
/// bumps. All `None`-backed no-ops when the registry is disabled.
struct ShardMetrics {
    shard: u32,
    events: Counter,
    batches: Counter,
    /// Window results this shard finalized (`quill.shard.<i>.finalized_windows`);
    /// cloned into the worker thread, bumped once per output event.
    finalized: Counter,
    queue_depth: Gauge,
    /// Batches the worker thread has fully processed (shared with it).
    done: Option<Arc<AtomicU64>>,
    /// Batches the router has sent to this shard.
    sent: u64,
}

impl ShardMetrics {
    /// `observe` enables the done-counter handshake with the worker (needed
    /// by either telemetry or tracing; without it `depth()` is always 0).
    fn new(telemetry: &Registry, shard: usize, observe: bool) -> ShardMetrics {
        ShardMetrics {
            shard: shard as u32,
            events: telemetry.counter(&format!("quill.shard.{shard}.events")),
            batches: telemetry.counter(&format!("quill.shard.{shard}.batches")),
            finalized: telemetry.counter(&format!("quill.shard.{shard}.finalized_windows")),
            queue_depth: telemetry.gauge(&format!("quill.shard.{shard}.queue_depth")),
            done: observe.then(|| Arc::new(AtomicU64::new(0))),
            sent: 0,
        }
    }

    /// In-flight batches right now (0 when observation is disabled).
    fn depth(&self) -> u64 {
        self.done
            .as_ref()
            .map_or(0, |d| self.sent.saturating_sub(d.load(Ordering::Relaxed)))
    }
}

/// Sum of per-shard in-flight batch depths (the explicit cross-shard
/// aggregate behind `quill.executor.queue_depth`).
fn depth_sum(metrics: &[ShardMetrics]) -> u64 {
    metrics.iter().map(ShardMetrics::depth).sum()
}

/// Per-shard pending batches with watermark coalescing — the one routing
/// policy both the threaded and the deterministic inline executors use, so
/// each shard consumes the identical batch sequence under either scheduler.
///
/// Events go to their key's shard; watermarks are broadcast but do *not*
/// force a flush, and a watermark `W2` landing directly behind another
/// watermark `W1` in a shard's pending batch replaces it in place —
/// *provided `W2` releases nothing the shard still holds staged*. Under
/// shard-local finalization a [`ShardStage`](crate::operator::ShardStage)
/// may be holding an event with `W1 < ts <= W2` that arrived before `W1`;
/// eliding `W1` would then fold that event *before* the windows ending in
/// `(.., W1]` are finalized instead of after, and floating-point aggregates
/// are sensitive to that interleaving (the two-stacks pane combine nests
/// differently). The router therefore mirrors just the staged *timestamps*
/// per shard — an event is staged iff `ts >= ` the latest broadcast
/// watermark, exactly the stage's own rule — and only coalesces a watermark
/// run when the replacement drains nothing from that mirror. An event
/// routed between two watermarks pins the earlier one anyway (it is no
/// longer trailing), so every shard event is still preceded by exactly the
/// watermarks that preceded it globally. With the guard, the elided and
/// unelided streams produce bit-identical operator state: between `W1` and
/// its replacement the inner operator would have performed zero folds, and
/// watermark handling without interleaved folds is idempotent and monotone.
/// `Flush` is broadcast and flushes every pending batch immediately, ending
/// the stream.
struct ShardRouter {
    bufs: Vec<Vec<StreamElement>>,
    /// Min-heap per shard of routed event timestamps a downstream stage
    /// would still be holding (not yet passed by a broadcast watermark).
    staged_ts: Vec<BinaryHeap<Reverse<Timestamp>>>,
    /// Latest broadcast watermark — the stage's lateness threshold.
    wm_hi: Timestamp,
    batch_size: usize,
}

impl ShardRouter {
    fn new(shards: usize, batch_size: usize) -> ShardRouter {
        ShardRouter {
            bufs: (0..shards)
                .map(|_| Vec::with_capacity(batch_size))
                .collect(),
            staged_ts: (0..shards).map(|_| BinaryHeap::new()).collect(),
            wm_hi: Timestamp::MIN,
            batch_size,
        }
    }

    /// Append an event to its shard's pending batch; `true` means the batch
    /// reached `batch_size` and must be flushed now.
    fn push_event(&mut self, shard: usize, el: StreamElement) -> bool {
        if let StreamElement::Event(e) = &el {
            // Late events (ts < wm_hi) are forwarded straight through the
            // stage, never held — only staged timestamps guard coalescing.
            if e.ts >= self.wm_hi {
                self.staged_ts[shard].push(Reverse(e.ts));
            }
        }
        let buf = &mut self.bufs[shard];
        buf.push(el);
        buf.len() >= self.batch_size
    }

    /// Broadcast punctuation to every shard's pending batch, coalescing
    /// adjacent watermarks where sound; `true` means every batch must be
    /// flushed now (`Flush` — the stream is over).
    fn push_punctuation(&mut self, el: &StreamElement) -> bool {
        if let StreamElement::Watermark(w) = el {
            for (buf, staged) in self.bufs.iter_mut().zip(&mut self.staged_ts) {
                // Timestamps this watermark drains from the shard's stage.
                let mut releases = false;
                while staged.peek().is_some_and(|Reverse(t)| *t <= *w) {
                    staged.pop();
                    releases = true;
                }
                if !releases {
                    if let Some(last) = buf.last_mut() {
                        if matches!(&*last, StreamElement::Watermark(prev) if *prev <= *w) {
                            // quill-lint: allow(hot-path-alloc, reason = "punctuation broadcast: one copy per shard, and watermarks are sparse relative to events")
                            *last = el.clone();
                            continue;
                        }
                    }
                }
                // quill-lint: allow(hot-path-alloc, reason = "punctuation broadcast: one copy per shard, and watermarks are sparse relative to events")
                buf.push(el.clone());
            }
            self.wm_hi = self.wm_hi.max(*w);
            return false;
        }
        for buf in &mut self.bufs {
            // quill-lint: allow(hot-path-alloc, reason = "Flush broadcast: one copy per shard, once per stream")
            buf.push(el.clone());
        }
        true
    }
}

/// Like [`run_keyed_parallel_with`], but recording executor telemetry into
/// `telemetry`: per shard `quill.shard.<i>.events` / `.batches` counters
/// and a `.queue_depth` gauge, `quill.executor.send_stalls` (sends issued
/// while the shard's channel was at capacity, i.e. backpressure), and
/// `quill.merge.elements` / `quill.merge.fallback_sorts` for the output
/// merge. With a disabled registry this *is* `run_keyed_parallel_with` —
/// every instrument update folds to a branch on `None`.
///
/// # Errors
/// Same as [`run_keyed_parallel_with`].
pub fn run_keyed_parallel_instrumented<O>(
    elements: Vec<StreamElement>,
    key_field: usize,
    config: ParallelConfig,
    telemetry: &Registry,
    make_op: impl Fn() -> O,
) -> Result<(Vec<StreamElement>, Vec<O>)>
where
    O: Operator + 'static,
{
    run_keyed_parallel_observed(
        elements,
        key_field,
        config,
        telemetry,
        &FlightRecorder::disabled(),
        move |_shard| make_op(),
    )
}

/// Like [`run_keyed_parallel_instrumented`], but additionally recording
/// flight-recorder trace events into `trace` and passing the shard index to
/// the operator factory (so each shard's operator can tag its own trace
/// events):
///
/// * [`TraceKind::SendStall`] whenever a batch send finds the shard's
///   channel at capacity (timestamped with the batch's first event time);
/// * [`TraceKind::MergeProgress`] once for the output merge, on the
///   [`MERGE_SHARD`] pseudo-shard.
///
/// Executor telemetry additionally gains `quill.executor.queue_depth`, an
/// explicit cross-shard aggregate gauge (sum of every
/// `quill.shard.<i>.queue_depth`), updated on each flush. With a disabled
/// registry *and* a disabled recorder this is exactly
/// [`run_keyed_parallel_with`].
///
/// # Errors
/// Same as [`run_keyed_parallel_with`].
pub fn run_keyed_parallel_observed<O>(
    elements: Vec<StreamElement>,
    key_field: usize,
    config: ParallelConfig,
    telemetry: &Registry,
    trace: &FlightRecorder,
    make_op: impl Fn(usize) -> O,
) -> Result<(Vec<StreamElement>, Vec<O>)>
where
    O: Operator + 'static,
{
    run_keyed_parallel_traced(
        elements,
        key_field,
        config,
        telemetry,
        trace,
        &SpanRecorder::disabled(),
        make_op,
    )
}

/// Like [`run_keyed_parallel_observed`], but additionally recording pipeline
/// spans into `spans` (logical clock domain):
///
/// * [`Stage::Route`] — one span per flushed shard batch, `begin` = the
///   earliest and `end` = the latest event timestamp in the batch (the
///   event-time extent the router grouped into one channel send);
/// * [`Stage::Merge`] — one span for the output merge on the
///   [`MERGE_SHARD`] pseudo-shard spanning the merged window-end range.
///
/// Downstream stage spans ([`Stage::ShardStage`], [`Stage::WindowFinalize`])
/// come from the per-shard operators via their `attach_spans` hooks — pass
/// the same recorder to the factory. With a disabled recorder this is
/// exactly [`run_keyed_parallel_observed`]: every span call folds to a
/// branch on `None`.
///
/// # Errors
/// Same as [`run_keyed_parallel_with`].
#[allow(clippy::too_many_arguments)]
pub fn run_keyed_parallel_traced<O>(
    elements: Vec<StreamElement>,
    key_field: usize,
    config: ParallelConfig,
    telemetry: &Registry,
    trace: &FlightRecorder,
    spans: &SpanRecorder,
    make_op: impl Fn(usize) -> O,
) -> Result<(Vec<StreamElement>, Vec<O>)>
where
    O: Operator + 'static,
{
    config.validate()?;
    if config.shards == 1 {
        return run_keyed_single(elements, config, telemetry, trace, spans, make_op);
    }
    if config.deterministic {
        return run_keyed_parallel_inline(
            elements, key_field, config, telemetry, trace, spans, make_op,
        );
    }
    let shards = config.shards;
    let observe = telemetry.is_enabled() || trace.is_enabled();
    let mut metrics: Vec<ShardMetrics> = (0..shards)
        .map(|s| ShardMetrics::new(telemetry, s, observe))
        .collect();
    let send_stalls = telemetry.counter("quill.executor.send_stalls");
    let agg_depth = telemetry.gauge("quill.executor.queue_depth");
    let result_depth = telemetry.gauge("quill.executor.result_queue_depth");
    // Workers ship finished result-run segments back as they are produced.
    // Unbounded on purpose: a bounded result channel could deadlock against
    // the bounded input channels (router blocked sending input, worker
    // blocked sending results). Memory stays bounded by the output size,
    // which the caller materialises anyway.
    let (result_tx, result_rx) = channel::unbounded::<(usize, Vec<StreamElement>)>();
    let result_pending = observe.then(|| Arc::new(AtomicU64::new(0)));
    // Ship segments at a floor of 256 results so tiny input batch sizes
    // (stress configs) don't degenerate into per-result channel traffic.
    let result_batch = config.batch_size.max(256);
    let mut txs = Vec::with_capacity(shards);
    let mut handles = Vec::with_capacity(shards);
    for (s, m) in metrics.iter().enumerate() {
        let (tx, rx) = channel::bounded::<Vec<StreamElement>>(config.channel_capacity);
        let mut op = make_op(s);
        // quill-lint: allow(hot-path-alloc, reason = "executor startup: runs once per shard, not per event")
        let done = m.done.clone();
        // quill-lint: allow(hot-path-alloc, reason = "executor startup: runs once per shard, not per event")
        let finalized = m.finalized.clone();
        // quill-lint: allow(hot-path-alloc, reason = "executor startup: runs once per shard, not per event")
        let result_tx = result_tx.clone();
        // quill-lint: allow(hot-path-alloc, reason = "executor startup: runs once per shard, not per event")
        let pending = result_pending.clone();
        handles.push(std::thread::spawn(move || {
            // quill-lint: allow(hot-path-alloc, reason = "one output buffer per worker thread, allocated at spawn")
            let mut outs: Vec<StreamElement> = Vec::new();
            for batch in rx {
                for el in batch {
                    op.process(el, &mut |o| {
                        // Punctuation is re-derived after the merge; keep
                        // only data.
                        if matches!(o, StreamElement::Event(_)) {
                            finalized.inc();
                            outs.push(o);
                        }
                    });
                }
                if let Some(d) = &done {
                    d.fetch_add(1, Ordering::Relaxed);
                }
                if outs.len() >= result_batch {
                    if let Some(p) = &pending {
                        p.fetch_add(1, Ordering::Relaxed);
                    }
                    let _ = result_tx.send((s, std::mem::take(&mut outs)));
                }
            }
            if !outs.is_empty() {
                if let Some(p) = &pending {
                    p.fetch_add(1, Ordering::Relaxed);
                }
                let _ = result_tx.send((s, outs));
            }
            op
        }));
        txs.push(tx);
    }
    drop(result_tx);

    // Route. Events accumulate in per-shard buffers flushed at batch_size;
    // watermarks are broadcast (and coalesced) without forcing a flush;
    // Flush forces every pending batch out.
    let mut router = ShardRouter::new(shards, config.batch_size);
    for el in elements {
        match &el {
            StreamElement::Event(e) => {
                let shard = shard_of(e.row.get(key_field), shards);
                metrics[shard].events.inc();
                if router.push_event(shard, el) {
                    flush_batch(
                        &txs[shard],
                        &mut router.bufs[shard],
                        &config,
                        &mut metrics[shard],
                        &send_stalls,
                        trace,
                        spans,
                    )?;
                    if telemetry.is_enabled() {
                        agg_depth.set_u64(depth_sum(&metrics));
                    }
                }
            }
            _ => {
                if router.push_punctuation(&el) {
                    for ((tx, buf), m) in txs.iter().zip(&mut router.bufs).zip(&mut metrics) {
                        flush_batch(tx, buf, &config, m, &send_stalls, trace, spans)?;
                    }
                    if telemetry.is_enabled() {
                        agg_depth.set_u64(depth_sum(&metrics));
                    }
                }
            }
        }
    }
    for ((tx, buf), m) in txs.iter().zip(&mut router.bufs).zip(&mut metrics) {
        flush_batch(tx, buf, &config, m, &send_stalls, trace, spans)?;
    }
    drop(txs);

    // Drain result segments until every worker hangs up, concatenating each
    // shard's segments in FIFO order (crossbeam preserves per-sender order,
    // so this reconstructs each shard's run exactly).
    let mut shard_outs: Vec<Vec<StreamElement>> = (0..shards).map(|_| Vec::new()).collect();
    for (s, mut segment) in result_rx {
        if let Some(p) = &result_pending {
            let left = p.fetch_sub(1, Ordering::Relaxed).saturating_sub(1);
            if telemetry.is_enabled() {
                result_depth.set_u64(left);
            }
        }
        shard_outs[s].append(&mut segment);
    }
    let mut ops = Vec::with_capacity(shards);
    for (h, m) in handles.into_iter().zip(&metrics) {
        let op = h
            .join()
            .map_err(|_| EngineError::ExecutorFailure("shard thread panicked".into()))?;
        m.queue_depth.set_u64(0);
        ops.push(op);
    }
    agg_depth.set_u64(0);
    result_depth.set_u64(0);
    Ok((
        merge_shard_outputs(shard_outs, telemetry, trace, spans),
        ops,
    ))
}

/// Single-shard bypass: no channels, no threads, no routing buffers — the
/// operator runs inline on the caller thread over the element stream, and
/// its output goes through [`merge_shard_outputs`] as a one-run merge so
/// ordering semantics (including the unsorted-run fallback) and merge
/// telemetry are identical to the multi-shard paths.
fn run_keyed_single<O>(
    elements: Vec<StreamElement>,
    config: ParallelConfig,
    telemetry: &Registry,
    trace: &FlightRecorder,
    spans: &SpanRecorder,
    make_op: impl Fn(usize) -> O,
) -> Result<(Vec<StreamElement>, Vec<O>)>
where
    O: Operator + 'static,
{
    debug_assert_eq!(config.shards, 1);
    let m = ShardMetrics::new(telemetry, 0, false);
    let mut op = make_op(0);
    let mut outs: Vec<StreamElement> = Vec::new();
    let routed = !elements.is_empty();
    if spans.is_enabled() {
        // The whole stream is one logical batch: one Route span over its
        // event-time extent, mirroring the per-batch spans of the routed
        // paths.
        record_route_span(spans, &elements, 0);
    }
    for el in elements {
        if matches!(el, StreamElement::Event(_)) {
            m.events.inc();
        }
        op.process(el, &mut |o| {
            if matches!(o, StreamElement::Event(_)) {
                m.finalized.inc();
                outs.push(o);
            }
        });
    }
    if routed {
        // The whole stream is one logical batch.
        m.batches.inc();
    }
    Ok((
        merge_shard_outputs(vec![outs], telemetry, trace, spans),
        vec![op],
    ))
}

/// Deterministic inline variant of [`run_keyed_parallel_observed`]: the same
/// routing (key hash, batch accumulation, punctuation broadcast as batch
/// delimiter) and the same output merge, but every shard's operator runs on
/// the caller thread — a flushed batch is processed immediately, shards in
/// shard order. Each operator therefore consumes exactly the batch sequence
/// the threaded path would deliver it, which makes the merged output equal
/// by construction and the whole run independent of thread scheduling.
///
/// Telemetry: per-shard `.events` / `.batches` counters and the merge
/// instruments record as in the threaded path; `quill.executor.send_stalls`
/// and the queue-depth gauges stay at zero (there are no channels).
fn run_keyed_parallel_inline<O>(
    elements: Vec<StreamElement>,
    key_field: usize,
    config: ParallelConfig,
    telemetry: &Registry,
    trace: &FlightRecorder,
    spans: &SpanRecorder,
    make_op: impl Fn(usize) -> O,
) -> Result<(Vec<StreamElement>, Vec<O>)>
where
    O: Operator + 'static,
{
    let shards = config.shards;
    let metrics: Vec<ShardMetrics> = (0..shards)
        .map(|s| ShardMetrics::new(telemetry, s, false))
        .collect();
    let mut ops: Vec<O> = (0..shards).map(&make_op).collect();
    let mut outs: Vec<Vec<StreamElement>> = (0..shards).map(|_| Vec::new()).collect();
    let mut router = ShardRouter::new(shards, config.batch_size);
    let drain = |shard: usize,
                 buf: &mut Vec<StreamElement>,
                 ops: &mut Vec<O>,
                 outs: &mut Vec<Vec<StreamElement>>| {
        if buf.is_empty() {
            return;
        }
        metrics[shard].batches.inc();
        if spans.is_enabled() {
            record_route_span(spans, buf, shard as u32);
        }
        let out = &mut outs[shard];
        for el in buf.drain(..) {
            ops[shard].process(el, &mut |o| {
                // Same rule as the worker threads: punctuation is re-derived
                // after the merge; keep only data.
                if matches!(o, StreamElement::Event(_)) {
                    metrics[shard].finalized.inc();
                    out.push(o);
                }
            });
        }
    };
    for el in elements {
        match &el {
            StreamElement::Event(e) => {
                let shard = shard_of(e.row.get(key_field), shards);
                metrics[shard].events.inc();
                if router.push_event(shard, el) {
                    let mut buf = std::mem::take(&mut router.bufs[shard]);
                    drain(shard, &mut buf, &mut ops, &mut outs);
                    router.bufs[shard] = buf;
                }
            }
            _ => {
                if router.push_punctuation(&el) {
                    for (shard, slot) in router.bufs.iter_mut().enumerate() {
                        let mut buf = std::mem::take(slot);
                        drain(shard, &mut buf, &mut ops, &mut outs);
                        *slot = buf;
                    }
                }
            }
        }
    }
    for (shard, slot) in router.bufs.iter_mut().enumerate() {
        let mut buf = std::mem::take(slot);
        drain(shard, &mut buf, &mut ops, &mut outs);
    }
    Ok((merge_shard_outputs(outs, telemetry, trace, spans), ops))
}

/// Record one [`Stage::Route`] span for a flushed shard batch: `begin` is
/// the earliest and `end` the latest event timestamp in the batch (the
/// event-time extent routed in one channel send). Batches holding only
/// punctuation record nothing — there is no event-time extent to attribute.
fn record_route_span(spans: &SpanRecorder, batch: &[StreamElement], shard: u32) {
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    for el in batch {
        if let Some(e) = el.as_event() {
            lo = lo.min(e.ts.raw());
            hi = hi.max(e.ts.raw());
        }
    }
    if lo != u64::MAX {
        spans.record(Stage::Route, lo, hi, shard);
    }
}

/// Run a keyed operator data-parallel over `shards` threads with default
/// batching. See [`run_keyed_parallel_with`] for semantics.
///
/// # Errors
/// [`EngineError::ExecutorFailure`] if a worker panics;
/// [`EngineError::InvalidPipeline`] for zero shards.
pub fn run_keyed_parallel(
    elements: Vec<StreamElement>,
    key_field: usize,
    shards: usize,
    make_op: impl Fn() -> Box<dyn Operator>,
) -> Result<Vec<StreamElement>> {
    run_keyed_parallel_with(elements, key_field, ParallelConfig::new(shards), make_op)
        .map(|(out, _ops)| out)
}

fn flush_batch(
    tx: &channel::Sender<Vec<StreamElement>>,
    buf: &mut Vec<StreamElement>,
    config: &ParallelConfig,
    metrics: &mut ShardMetrics,
    send_stalls: &Counter,
    trace: &FlightRecorder,
    spans: &SpanRecorder,
) -> Result<()> {
    if buf.is_empty() {
        return Ok(());
    }
    if spans.is_enabled() {
        record_route_span(spans, buf, metrics.shard);
    }
    if metrics.done.is_some() {
        // Backpressure: the bounded send below will block until the worker
        // drains a batch.
        let depth = metrics.depth();
        if depth >= config.channel_capacity as u64 {
            send_stalls.inc();
            if trace.is_enabled() {
                let at = buf
                    .iter()
                    .find_map(|el| el.as_event())
                    .map_or(0, |e| e.ts.raw());
                trace.record(at, metrics.shard, TraceKind::SendStall { depth });
            }
        }
        metrics.batches.inc();
    }
    let batch = std::mem::replace(buf, Vec::with_capacity(config.batch_size));
    tx.send(batch)
        .map_err(|_| EngineError::ExecutorFailure("shard died".into()))?;
    if metrics.done.is_some() {
        metrics.sent += 1;
        metrics.queue_depth.set_u64(metrics.depth());
    }
    Ok(())
}

/// Global output order: window end, window start, key. Computed once per
/// element — comparisons are allocation-free (`Key` compares the `Value` in
/// place; no `String` per comparison).
type MergeKey = (u64, u64, Key);

fn merge_key(el: &StreamElement) -> MergeKey {
    match el {
        StreamElement::Event(e) => {
            // Read the window-result metadata columns directly (same layout
            // checks as [`WindowResult::from_row`]) instead of materialising
            // a full `WindowResult`, which would clone the aggregates vec
            // for every merged element.
            let meta = if e.row.len() >= WindowResult::META_COLS {
                match (
                    e.row.get(1).as_i64(),
                    e.row.get(2).as_i64(),
                    e.row.get(3).as_i64(),
                    e.row.get(4).as_i64(),
                ) {
                    (Some(start), Some(end), Some(_), Some(_)) => Some((end as u64, start as u64)),
                    _ => None,
                }
            } else {
                None
            };
            match meta {
                Some((end, start)) => (end, start, Key(e.row.get(0).clone())),
                None => (e.ts.raw(), e.seq, Key(Value::Null)),
            }
        }
        _ => (u64::MAX, u64::MAX, Key(Value::Null)),
    }
}

/// Merge per-shard output runs into one deterministically ordered stream.
///
/// Fast path: every run is already sorted by [`MergeKey`] (non-strictly —
/// revisions of the same window compare equal), so the global order is
/// recovered by a batch-at-a-time *galloping* merge: repeatedly pick the run
/// whose head is smallest under `(key, shard)`, binary-search how far that
/// run may gallop before the smallest other head would sort first, and move
/// the whole prefix into the output at once. Ties reproduce the classic
/// heap merge exactly — equal keys emit in shard-index order — but a run
/// with no contention (the common case when shards own disjoint keys and
/// windows cluster) is copied in O(1) comparisons per chunk instead of one
/// heap rebalance per element. Fallback: one stable sort over the cached
/// keys, preserving within-shard emission order.
///
/// Telemetry: `quill.merge.elements` counts merged elements,
/// `quill.merge.windows` counts distinct merge keys among them (window
/// revisions collapse onto their window), `quill.merge.fallback_sorts`
/// counts sort-path activations.
fn merge_shard_outputs(
    shard_outs: Vec<Vec<StreamElement>>,
    telemetry: &Registry,
    trace: &FlightRecorder,
    spans: &SpanRecorder,
) -> Vec<StreamElement> {
    let total: usize = shard_outs.iter().map(Vec::len).sum();
    telemetry.counter("quill.merge.elements").add(total as u64);
    let keyed: Vec<Vec<(MergeKey, StreamElement)>> = shard_outs
        .into_iter()
        .map(|outs| outs.into_iter().map(|el| (merge_key(&el), el)).collect())
        .collect();
    if spans.is_enabled() && total > 0 {
        // One Merge span on the pseudo-shard spanning the merged window-end
        // range (the event-time extent the merge interleaves).
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for run in &keyed {
            for (k, _) in run {
                if k.0 != u64::MAX {
                    lo = lo.min(k.0);
                    hi = hi.max(k.0);
                }
            }
        }
        if lo != u64::MAX {
            spans.record(Stage::Merge, lo, hi, MERGE_SHARD);
        }
    }
    let sorted = keyed
        .iter()
        .all(|run| run.windows(2).all(|w| w[0].0 <= w[1].0));
    trace.record(
        0,
        MERGE_SHARD,
        TraceKind::MergeProgress {
            elements: total as u64,
            fallback: !sorted,
        },
    );
    let count_windows = telemetry.is_enabled();
    let mut windows = 0u64;
    let mut prev_key: Option<MergeKey> = None;
    let mut out = Vec::with_capacity(total);
    if sorted {
        // Split keys (kept addressable for binary search) from payloads
        // (consumed front to back without cloning).
        let mut key_runs: Vec<Vec<MergeKey>> = Vec::with_capacity(keyed.len());
        let mut el_runs: Vec<std::vec::IntoIter<StreamElement>> = Vec::with_capacity(keyed.len());
        for run in keyed {
            let (keys, els): (Vec<MergeKey>, Vec<StreamElement>) = run.into_iter().unzip();
            key_runs.push(keys);
            el_runs.push(els.into_iter());
        }
        let mut idxs = vec![0usize; key_runs.len()];
        loop {
            // The run whose head sorts first under (key, shard) — the same
            // total order the heap merge used.
            let mut best: Option<(usize, &MergeKey)> = None;
            let mut bound: Option<(usize, &MergeKey)> = None;
            for (s, keys) in key_runs.iter().enumerate() {
                if idxs[s] < keys.len() {
                    let k = &keys[idxs[s]];
                    match best {
                        None => best = Some((s, k)),
                        Some((bs, bk)) if (k, s) < (bk, bs) => {
                            bound = best;
                            best = Some((s, k));
                        }
                        _ => match bound {
                            None => bound = Some((s, k)),
                            Some((os, ok)) if (k, s) < (ok, os) => bound = Some((s, k)),
                            _ => {}
                        },
                    }
                }
            }
            let Some((s, _)) = best else { break };
            let start = idxs[s];
            let keys = &key_runs[s];
            let take = match bound {
                // Sole remaining run: gallop to its end.
                None => keys.len() - start,
                Some((bs, bk)) => {
                    // Emit while (key, s) < (bk, bs): for s < bs that is
                    // key <= bk (equal keys break toward the lower shard),
                    // otherwise strictly key < bk.
                    if s < bs {
                        keys[start..].partition_point(|k| k <= bk)
                    } else {
                        keys[start..].partition_point(|k| k < bk)
                    }
                }
            };
            debug_assert!(take >= 1, "the minimal head must always be emittable");
            if count_windows {
                for k in &keys[start..start + take] {
                    if prev_key.as_ref() != Some(k) {
                        windows += 1;
                        // quill-lint: allow(hot-path-alloc, reason = "cloned only on key change — once per window, not per element")
                        prev_key = Some(k.clone());
                    }
                }
            }
            out.extend(el_runs[s].by_ref().take(take));
            idxs[s] = start + take;
        }
    } else {
        telemetry.counter("quill.merge.fallback_sorts").inc();
        let mut flat: Vec<(MergeKey, usize, StreamElement)> = keyed
            .into_iter()
            .enumerate()
            .flat_map(|(shard, run)| run.into_iter().map(move |(k, el)| (k, shard, el)))
            .collect();
        flat.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
        if count_windows {
            for (k, _, _) in &flat {
                if prev_key.as_ref() != Some(k) {
                    windows += 1;
                    // quill-lint: allow(hot-path-alloc, reason = "cloned only on key change — once per window, not per element")
                    prev_key = Some(k.clone());
                }
            }
        }
        out.extend(flat.into_iter().map(|(_, _, el)| el));
    }
    if count_windows {
        telemetry.counter("quill.merge.windows").add(windows);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AggregateKind, AggregateSpec};
    use crate::event::Event;
    use crate::operator::{LatePolicy, WindowAggregateOp};
    use crate::time::Timestamp;
    use crate::value::Row;
    use crate::window::WindowSpec;

    fn window_op() -> WindowAggregateOp {
        WindowAggregateOp::new(
            WindowSpec::tumbling(100u64),
            vec![
                AggregateSpec::new(AggregateKind::Sum, 1, "sum"),
                AggregateSpec::new(AggregateKind::Count, 1, "n"),
            ],
            Some(0),
            LatePolicy::Drop,
        )
        .expect("valid op")
    }

    fn make_op() -> Box<dyn Operator> {
        Box::new(window_op())
    }

    fn input(n: u64, keys: i64) -> Vec<StreamElement> {
        let mut v: Vec<StreamElement> = (0..n)
            .map(|i| {
                StreamElement::Event(Event::new(
                    i * 3,
                    i,
                    Row::new([Value::Int((i as i64) % keys), Value::Float(1.0)]),
                ))
            })
            .collect();
        v.push(StreamElement::Flush);
        v
    }

    fn results_of(out: &[StreamElement]) -> Vec<WindowResult> {
        out.iter()
            .filter_map(|e| e.as_event())
            .filter_map(|e| WindowResult::from_row(&e.row))
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_as_ordered_results() {
        let elements = input(3_000, 17);
        // Sequential reference.
        let mut seq_op = make_op();
        let mut seq_out = Vec::new();
        for el in elements.clone() {
            seq_op.process(el, &mut |o| {
                if matches!(o, StreamElement::Event(_)) {
                    seq_out.push(o);
                }
            });
        }
        let mut seq_results = results_of(&seq_out);
        seq_results.sort_by_key(|r| (r.window.end, r.window.start, Key(r.key.clone())));

        for shards in [1usize, 2, 4, 8] {
            let par_out =
                run_keyed_parallel(elements.clone(), 0, shards, make_op).expect("parallel run");
            let par_results = results_of(&par_out);
            assert_eq!(par_results, seq_results, "shards={shards}");
        }
    }

    #[test]
    fn batch_size_does_not_change_results() {
        let elements = input(2_000, 13);
        let reference = run_keyed_parallel_with(
            elements.clone(),
            0,
            ParallelConfig::new(4).with_batch_size(1),
            window_op,
        )
        .expect("batch=1 run")
        .0;
        for batch in [7usize, 256, 1024, 100_000] {
            let out = run_keyed_parallel_with(
                elements.clone(),
                0,
                ParallelConfig::new(4)
                    .with_batch_size(batch)
                    .with_channel_capacity(2),
                window_op,
            )
            .expect("batched run")
            .0;
            assert_eq!(out, reference, "batch_size={batch}");
        }
    }

    #[test]
    fn deterministic_inline_matches_threaded() {
        let elements = input(2_000, 13);
        for shards in [1usize, 3, 4, 8] {
            let cfg = ParallelConfig::new(shards).with_batch_size(32);
            let threaded = run_keyed_parallel_with(elements.clone(), 0, cfg, window_op)
                .expect("threaded run")
                .0;
            let inline = run_keyed_parallel_with(
                elements.clone(),
                0,
                cfg.with_deterministic(true),
                window_op,
            )
            .expect("inline run")
            .0;
            assert_eq!(inline, threaded, "shards={shards}");
        }
    }

    #[test]
    fn inline_mode_counts_shard_events() {
        let reg = Registry::new();
        let n = 1_000u64;
        let cfg = ParallelConfig::new(4).with_deterministic(true);
        let (out, ops) =
            run_keyed_parallel_instrumented(input(n, 8), 0, cfg, &reg, window_op).expect("run");
        let snap = reg.snapshot();
        assert_eq!(snap.counter_family_sum("quill.shard.", ".events"), n);
        assert_eq!(snap.counter("quill.merge.elements"), out.len() as u64);
        let accepted: u64 = ops.iter().map(|op| op.stats().accepted).sum();
        assert_eq!(accepted, n);
    }

    #[test]
    fn returned_ops_carry_shard_stats() {
        let n = 1_000u64;
        let (_, ops) = run_keyed_parallel_with(input(n, 8), 0, ParallelConfig::new(4), window_op)
            .expect("parallel run");
        assert_eq!(ops.len(), 4);
        let accepted: u64 = ops.iter().map(|op| op.stats().accepted).sum();
        assert_eq!(accepted, n, "every event lands on exactly one shard");
    }

    #[test]
    fn shard_assignment_is_stable_and_within_bounds() {
        for k in 0..100i64 {
            let v = Value::Int(k);
            let s = shard_of(&v, 7);
            assert!(s < 7);
            assert_eq!(s, shard_of(&v, 7), "unstable shard for {k}");
        }
        // Int/Float key coherence (same hash for 3 and 3.0).
        assert_eq!(shard_of(&Value::Int(3), 5), shard_of(&Value::Float(3.0), 5));
        // Strings route without cloning the Arc payload and stay stable.
        let s = Value::str("alpha");
        assert_eq!(shard_of(&s, 9), shard_of(&Value::str("alpha"), 9));
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(matches!(
            run_keyed_parallel(vec![], 0, 0, make_op),
            Err(EngineError::InvalidPipeline(_))
        ));
    }

    #[test]
    fn degenerate_config_rejected() {
        for cfg in [
            ParallelConfig::new(4).with_batch_size(0),
            ParallelConfig::new(4).with_channel_capacity(0),
            ParallelConfig::new(0),
        ] {
            assert!(matches!(
                run_keyed_parallel_with(vec![], 0, cfg, window_op),
                Err(EngineError::InvalidPipeline(_))
            ));
        }
    }

    #[test]
    fn watermarks_are_broadcast_so_all_shards_emit() {
        // Without Flush broadcast, shards would hold their windows forever.
        let elements = input(500, 8);
        let out = run_keyed_parallel(elements, 0, 4, make_op).expect("parallel run");
        let results = results_of(&out);
        let keys: std::collections::HashSet<String> =
            results.iter().map(|r| r.key.to_string()).collect();
        assert_eq!(keys.len(), 8, "all key groups must produce results");
        let total: u64 = results.iter().map(|r| r.count).sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn instrumented_run_records_shard_and_merge_metrics() {
        let reg = Registry::new();
        let n = 1_000u64;
        let cfg = ParallelConfig::new(4)
            .with_batch_size(64)
            .with_channel_capacity(2);
        let (out, _ops) =
            run_keyed_parallel_instrumented(input(n, 8), 0, cfg, &reg, window_op).expect("run");
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter_family_sum("quill.shard.", ".events"),
            n,
            "every event routed to exactly one shard"
        );
        assert!(snap.counter_family_sum("quill.shard.", ".batches") >= 4);
        assert_eq!(snap.counter("quill.merge.elements"), out.len() as u64);
        assert_eq!(snap.counter("quill.merge.fallback_sorts"), 0);
        // Workers drained everything before join, so depth gauges end at 0.
        for s in 0..4 {
            assert_eq!(
                snap.gauge(&format!("quill.shard.{s}.queue_depth")),
                Some(0.0)
            );
        }
        // The explicit cross-shard aggregate is present and agrees with the
        // (drained) per-shard gauges.
        assert_eq!(snap.gauge("quill.executor.queue_depth"), Some(0.0));
        assert_eq!(snap.gauge_family_sum("quill.shard.", ".queue_depth"), 0.0);
        // Result-channel segments were all drained before the merge.
        assert_eq!(snap.gauge("quill.executor.result_queue_depth"), Some(0.0));
        // Every merged element was finalized by exactly one shard, and the
        // window counter matches the distinct merge keys in the output.
        assert_eq!(
            snap.counter_family_sum("quill.shard.", ".finalized_windows"),
            out.len() as u64
        );
        let mut keys: Vec<MergeKey> = out.iter().map(merge_key).collect();
        keys.dedup();
        assert_eq!(snap.counter("quill.merge.windows"), keys.len() as u64);
    }

    #[test]
    fn single_shard_bypass_matches_multi_shard_output() {
        // Regression for the shards=1, batch_size=1 pathology: the bypass
        // must skip channels/threads entirely yet emit the exact element
        // sequence the multi-shard merge produces, with the same merge
        // telemetry so dashboards don't go dark at shards=1.
        let elements = input(2_000, 13);
        let multi = run_keyed_parallel_with(
            elements.clone(),
            0,
            ParallelConfig::new(4).with_batch_size(64),
            window_op,
        )
        .expect("4-shard run")
        .0;

        let reg = Registry::new();
        let cfg = ParallelConfig::new(1).with_batch_size(1);
        let (out, ops) =
            run_keyed_parallel_instrumented(elements, 0, cfg, &reg, window_op).expect("bypass run");
        // Result `seq` numbers are per-operator, so compare the parsed window
        // results in merged order: same windows, same aggregates, same order.
        assert_eq!(
            results_of(&out),
            results_of(&multi),
            "bypass results must match the multi-shard merge, in order"
        );
        assert_eq!(ops.len(), 1);

        let snap = reg.snapshot();
        assert_eq!(snap.counter("quill.shard.0.events"), 2_000);
        // The whole stream is one logical batch in the bypass.
        assert_eq!(snap.counter("quill.shard.0.batches"), 1);
        assert_eq!(
            snap.counter("quill.shard.0.finalized_windows"),
            out.len() as u64
        );
        // The one-run merge still records its instruments.
        assert_eq!(snap.counter("quill.merge.elements"), out.len() as u64);
        assert_eq!(snap.counter("quill.merge.fallback_sorts"), 0);
        assert!(snap.counter("quill.merge.windows") > 0);
        // No channels exist on this path, so nothing can stall.
        assert_eq!(snap.counter("quill.executor.send_stalls"), 0);
    }

    #[test]
    fn shard_gauges_are_labeled_per_shard_not_last_write_wins() {
        // Regression: each shard owns its own `quill.shard.<i>.queue_depth`
        // gauge; writes must not collide on a single shared name, and the
        // family sum must see every shard.
        let reg = Registry::new();
        let m0 = ShardMetrics::new(&reg, 0, true);
        let m1 = ShardMetrics::new(&reg, 1, true);
        m0.queue_depth.set_u64(3);
        m1.queue_depth.set_u64(5);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("quill.shard.0.queue_depth"), Some(3.0));
        assert_eq!(snap.gauge("quill.shard.1.queue_depth"), Some(5.0));
        assert_eq!(snap.gauge_family_sum("quill.shard.", ".queue_depth"), 8.0);
    }

    #[test]
    fn observed_run_records_trace_events_without_telemetry() {
        let trace = FlightRecorder::new(8192);
        let n = 1_000u64;
        let cfg = ParallelConfig::new(4)
            .with_batch_size(16)
            .with_channel_capacity(1);
        let (out, _ops) = run_keyed_parallel_observed(
            input(n, 8),
            0,
            cfg,
            &Registry::disabled(),
            &trace,
            |shard| {
                let mut op = window_op();
                op.attach_trace(&trace, shard as u32);
                op
            },
        )
        .expect("observed run");
        let evs = trace.events();
        // Every event lands in exactly one finalized window; counts add up.
        let fin_count: u64 = evs
            .iter()
            .filter_map(|t| match t.kind {
                TraceKind::WindowFinalize { count, .. } => Some(count),
                _ => None,
            })
            .sum();
        assert_eq!(fin_count, n);
        // Finalizations are tagged with real shard ids, not a single shard.
        let fin_shards: std::collections::HashSet<u32> = evs
            .iter()
            .filter(|t| matches!(t.kind, TraceKind::WindowFinalize { .. }))
            .map(|t| t.shard)
            .collect();
        assert!(fin_shards.len() > 1, "8 keys over 4 shards span shards");
        // The merge reports once, on the pseudo-shard, fast path.
        let merges: Vec<(u32, u64, bool)> = evs
            .iter()
            .filter_map(|t| match t.kind {
                TraceKind::MergeProgress { elements, fallback } => {
                    Some((t.shard, elements, fallback))
                }
                _ => None,
            })
            .collect();
        assert_eq!(merges, vec![(MERGE_SHARD, out.len() as u64, false)]);
        // Sequence numbers interleave deterministically (strictly monotone).
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn traced_run_records_route_and_merge_spans() {
        let spans = SpanRecorder::new(8192);
        let n = 1_000u64;
        let cfg = ParallelConfig::new(4)
            .with_batch_size(16)
            .with_channel_capacity(2);
        let (out, _ops) = run_keyed_parallel_traced(
            input(n, 8),
            0,
            cfg,
            &Registry::disabled(),
            &FlightRecorder::disabled(),
            &spans,
            |_shard| window_op(),
        )
        .expect("traced run");
        let recorded = spans.spans();
        // Route spans: one per flushed batch, shard-tagged, with a sane
        // event-time extent (begin <= end, within the input's ts range).
        let routes: Vec<_> = recorded
            .iter()
            .filter(|s| s.stage == Stage::Route)
            .collect();
        assert!(routes.len() >= 4, "at least one batch per shard");
        for r in routes {
            assert!(r.begin <= r.end);
            assert!(r.end < n * 3);
            assert!(r.shard < 4);
        }
        // Exactly one Merge span, on the pseudo-shard, spanning the merged
        // window-end range.
        let merges: Vec<_> = recorded
            .iter()
            .filter(|s| s.stage == Stage::Merge)
            .collect();
        assert_eq!(merges.len(), 1);
        assert_eq!(merges[0].shard, MERGE_SHARD);
        let ends: Vec<u64> = results_of(&out)
            .iter()
            .map(|r| r.window.end.raw())
            .collect();
        assert_eq!(merges[0].begin, *ends.iter().min().expect("results"));
        assert_eq!(merges[0].end, *ends.iter().max().expect("results"));
        // Deterministic inline scheduling records the same span *set* shape.
        let det_spans = SpanRecorder::new(8192);
        run_keyed_parallel_traced(
            input(n, 8),
            0,
            cfg.with_deterministic(true),
            &Registry::disabled(),
            &FlightRecorder::disabled(),
            &det_spans,
            |_shard| window_op(),
        )
        .expect("inline traced run");
        assert_eq!(
            det_spans
                .spans()
                .iter()
                .filter(|s| s.stage == Stage::Merge)
                .count(),
            1
        );
    }

    #[test]
    fn disabled_spans_keep_observed_semantics() {
        // run_keyed_parallel_observed delegates with a disabled recorder:
        // output must be identical to the traced run.
        let elements = input(500, 5);
        let cfg = ParallelConfig::new(3).with_batch_size(32);
        let (observed, _) = run_keyed_parallel_observed(
            elements.clone(),
            0,
            cfg,
            &Registry::disabled(),
            &FlightRecorder::disabled(),
            |_| window_op(),
        )
        .expect("observed");
        let spans = SpanRecorder::new(1024);
        let (traced, _) = run_keyed_parallel_traced(
            elements,
            0,
            cfg,
            &Registry::disabled(),
            &FlightRecorder::disabled(),
            &spans,
            |_| window_op(),
        )
        .expect("traced");
        assert_eq!(results_of(&traced), results_of(&observed));
        assert!(!spans.is_empty(), "enabled recorder captured spans");
    }

    #[test]
    fn merge_fallback_handles_unsorted_shard_runs() {
        // An operator that emits events with descending timestamps breaks
        // the sortedness invariant; the fallback must still produce a
        // deterministic global order.
        struct Backwards(u64);
        impl Operator for Backwards {
            fn name(&self) -> &str {
                "backwards"
            }
            fn process(&mut self, el: StreamElement, out: &mut dyn FnMut(StreamElement)) {
                if let StreamElement::Event(mut e) = el {
                    self.0 += 1;
                    e.ts = Timestamp(1_000_000 - self.0);
                    out(StreamElement::Event(e));
                }
            }
        }
        let elements = input(100, 5);
        let (out, _) =
            run_keyed_parallel_with(elements, 0, ParallelConfig::new(3), || Backwards(0))
                .expect("parallel run");
        assert_eq!(out.len(), 100);
        let ts: Vec<u64> = out
            .iter()
            .filter_map(|e| e.as_event())
            .map(|e| e.ts.raw())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "fallback sorts output");
    }

    #[test]
    fn watermark_coalescing_is_blocked_by_staged_releases() {
        // Regression (differential seed 53): an event with W1 < ts <= W2
        // routed *before* W1 sits staged in the shard; replacing W1 with W2
        // would fold it before the windows ending in (.., W1] finalize
        // instead of after, perturbing float combine nesting. Both
        // watermarks must survive in the batch.
        let ev = |ts: u64, seq: u64| {
            StreamElement::Event(Event::new(ts, seq, Row::new([Value::Int(0)])))
        };
        let mut router = ShardRouter::new(1, 1024);
        assert!(!router.push_event(0, ev(50, 0)));
        router.push_punctuation(&StreamElement::Watermark(Timestamp(40)));
        // ts 50 is still staged and 40 < 50 <= 60: W1=40 must stay pinned.
        router.push_punctuation(&StreamElement::Watermark(Timestamp(60)));
        // Nothing staged in (60, 70]: this one coalesces in place.
        router.push_punctuation(&StreamElement::Watermark(Timestamp(70)));
        assert_eq!(
            router.bufs[0],
            vec![
                ev(50, 0),
                StreamElement::Watermark(Timestamp(40)),
                StreamElement::Watermark(Timestamp(70)),
            ]
        );
        // An event arriving behind the broadcast watermark is a late pass —
        // it never stages, so it must not pin later watermarks either.
        assert!(!router.push_event(0, ev(10, 1)));
        router.push_punctuation(&StreamElement::Watermark(Timestamp(80)));
        router.push_punctuation(&StreamElement::Watermark(Timestamp(90)));
        assert_eq!(router.bufs[0].len(), 5, "late event appended exactly once");
        assert_eq!(
            router.bufs[0].last(),
            Some(&StreamElement::Watermark(Timestamp(90))),
            "watermarks after a late pass still coalesce"
        );
    }
}
