//! Keyed data-parallel execution.
//!
//! Keyed window aggregation partitions cleanly by grouping key: each shard
//! owns a disjoint key subset, receives every watermark (broadcast), and
//! runs an independent operator instance on its own thread. Results are
//! merged and re-ordered deterministically, so the parallel run is
//! observationally identical (as a set, and in (window, key) order) to the
//! single-threaded one — asserted by tests and used by the scalability
//! bench.

use crate::error::{EngineError, Result};
use crate::event::StreamElement;
use crate::operator::{Operator, WindowResult};
use crate::value::{Key, Value};
use crossbeam::channel;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Stable shard assignment for a key.
pub fn shard_of(key: &Value, shards: usize) -> usize {
    let mut h = DefaultHasher::new();
    Key(key.clone()).hash(&mut h);
    (h.finish() % shards.max(1) as u64) as usize
}

/// Run a keyed operator data-parallel over `shards` threads.
///
/// * `elements` — the (already disorder-controlled) input stream;
/// * `key_field` — the row index events are partitioned by;
/// * `make_op` — factory producing one operator instance per shard (each
///   must behave identically on its key subset).
///
/// Events are routed by key hash; watermarks and flush are broadcast.
/// Returns all output *events* (window results), re-sorted by
/// (timestamp, window metadata) so the result is deterministic.
///
/// # Errors
/// [`EngineError::ExecutorFailure`] if a worker panics;
/// [`EngineError::InvalidPipeline`] for zero shards.
pub fn run_keyed_parallel(
    elements: Vec<StreamElement>,
    key_field: usize,
    shards: usize,
    make_op: impl Fn() -> Box<dyn Operator>,
) -> Result<Vec<StreamElement>> {
    if shards == 0 {
        return Err(EngineError::InvalidPipeline("shards must be > 0".into()));
    }
    let mut txs = Vec::with_capacity(shards);
    let mut handles = Vec::with_capacity(shards);
    let (out_tx, out_rx) = channel::unbounded::<(usize, StreamElement)>();
    for shard in 0..shards {
        let (tx, rx) = channel::bounded::<StreamElement>(1024);
        let mut op = make_op();
        let out_tx = out_tx.clone();
        handles.push(std::thread::spawn(move || {
            for el in rx {
                op.process(el, &mut |o| {
                    // Punctuation is re-derived after the merge; forward
                    // only data.
                    if matches!(o, StreamElement::Event(_)) {
                        let _ = out_tx.send((shard, o));
                    }
                });
            }
        }));
        txs.push(tx);
    }
    drop(out_tx);
    for el in elements {
        match &el {
            StreamElement::Event(e) => {
                let shard = shard_of(e.row.get(key_field), shards);
                txs[shard]
                    .send(el)
                    .map_err(|_| EngineError::ExecutorFailure("shard died".into()))?;
            }
            _ => {
                for tx in &txs {
                    tx.send(el.clone())
                        .map_err(|_| EngineError::ExecutorFailure("shard died".into()))?;
                }
            }
        }
    }
    drop(txs);
    let mut out: Vec<(usize, StreamElement)> = out_rx.into_iter().collect();
    for h in handles {
        h.join()
            .map_err(|_| EngineError::ExecutorFailure("shard thread panicked".into()))?;
    }
    // Deterministic global order: by event timestamp, then parsed window
    // result metadata (start, key), then shard.
    out.sort_by(|(sa, a), (sb, b)| {
        let ka = order_key(a);
        let kb = order_key(b);
        ka.cmp(&kb).then(sa.cmp(sb))
    });
    Ok(out.into_iter().map(|(_, el)| el).collect())
}

type OrderKey = (u64, u64, String);

fn order_key(el: &StreamElement) -> OrderKey {
    match el {
        StreamElement::Event(e) => {
            if let Some(r) = WindowResult::from_row(&e.row) {
                (r.window.end.raw(), r.window.start.raw(), r.key.to_string())
            } else {
                (e.ts.raw(), e.seq, String::new())
            }
        }
        _ => (u64::MAX, u64::MAX, String::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AggregateKind, AggregateSpec};
    use crate::event::Event;
    use crate::operator::{LatePolicy, WindowAggregateOp};
    use crate::time::Timestamp;
    use crate::value::Row;
    use crate::window::WindowSpec;

    fn make_op() -> Box<dyn Operator> {
        Box::new(
            WindowAggregateOp::new(
                WindowSpec::tumbling(100u64),
                vec![
                    AggregateSpec::new(AggregateKind::Sum, 1, "sum"),
                    AggregateSpec::new(AggregateKind::Count, 1, "n"),
                ],
                Some(0),
                LatePolicy::Drop,
            )
            .expect("valid op"),
        )
    }

    fn input(n: u64, keys: i64) -> Vec<StreamElement> {
        let mut v: Vec<StreamElement> = (0..n)
            .map(|i| {
                StreamElement::Event(Event::new(
                    i * 3,
                    i,
                    Row::new([Value::Int((i as i64) % keys), Value::Float(1.0)]),
                ))
            })
            .collect();
        v.push(StreamElement::Flush);
        v
    }

    fn results_of(out: &[StreamElement]) -> Vec<WindowResult> {
        out.iter()
            .filter_map(|e| e.as_event())
            .filter_map(|e| WindowResult::from_row(&e.row))
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_as_ordered_results() {
        let elements = input(3_000, 17);
        // Sequential reference.
        let mut seq_op = make_op();
        let mut seq_out = Vec::new();
        for el in elements.clone() {
            seq_op.process(el, &mut |o| {
                if matches!(o, StreamElement::Event(_)) {
                    seq_out.push(o);
                }
            });
        }
        let mut seq_results = results_of(&seq_out);
        seq_results.sort_by_key(|r| (r.window.end, r.window.start, r.key.to_string()));

        for shards in [1usize, 2, 4, 8] {
            let par_out =
                run_keyed_parallel(elements.clone(), 0, shards, make_op).expect("parallel run");
            let par_results = results_of(&par_out);
            assert_eq!(par_results, seq_results, "shards={shards}");
        }
    }

    #[test]
    fn shard_assignment_is_stable_and_within_bounds() {
        for k in 0..100i64 {
            let v = Value::Int(k);
            let s = shard_of(&v, 7);
            assert!(s < 7);
            assert_eq!(s, shard_of(&v, 7), "unstable shard for {k}");
        }
        // Int/Float key coherence (same hash for 3 and 3.0).
        assert_eq!(shard_of(&Value::Int(3), 5), shard_of(&Value::Float(3.0), 5));
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(matches!(
            run_keyed_parallel(vec![], 0, 0, make_op),
            Err(EngineError::InvalidPipeline(_))
        ));
    }

    #[test]
    fn watermarks_are_broadcast_so_all_shards_emit() {
        // Without Flush broadcast, shards would hold their windows forever.
        let elements = input(500, 8);
        let out = run_keyed_parallel(elements, 0, 4, make_op).expect("parallel run");
        let results = results_of(&out);
        let keys: std::collections::HashSet<String> =
            results.iter().map(|r| r.key.to_string()).collect();
        assert_eq!(keys.len(), 8, "all key groups must produce results");
        let total: u64 = results.iter().map(|r| r.count).sum();
        assert_eq!(total, 500);
    }
}
