//! Stream elements: timestamped events, watermarks, and end-of-stream.
//!
//! A quill stream is a sequence of [`StreamElement`]s in *arrival order*.
//! Events carry event-time [`Timestamp`]s that may disagree with arrival
//! order — that disagreement is the disorder this project is about.
//! [`StreamElement::Watermark`]`(t)` is a promise by the producer that no
//! later event will carry a timestamp `< t`; window operators use it to
//! decide when a window's result is complete enough to emit.

use crate::time::{TimeDelta, Timestamp};
use crate::value::Row;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// A single data tuple with its event-time timestamp and arrival sequence
/// number.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Event-time timestamp assigned at the source.
    pub ts: Timestamp,
    /// Arrival sequence number: position in arrival order, assigned by the
    /// source. Strictly increasing within a stream; used to break timestamp
    /// ties deterministically and to measure disorder.
    pub seq: u64,
    /// The payload tuple.
    pub row: Row,
}

impl Event {
    /// Construct an event.
    pub fn new(ts: impl Into<Timestamp>, seq: u64, row: Row) -> Event {
        Event {
            ts: ts.into(),
            seq,
            row,
        }
    }

    /// Timestamp-major, sequence-minor ordering key. Two events never compare
    /// equal under this key within one stream because `seq` is unique.
    #[inline]
    pub fn order_key(&self) -> (Timestamp, u64) {
        (self.ts, self.seq)
    }

    /// Compare events in event-time order (ties broken by arrival order).
    #[inline]
    pub fn time_cmp(&self, other: &Event) -> Ordering {
        self.order_key().cmp(&other.order_key())
    }
}

/// One element of a stream in arrival order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StreamElement {
    /// A data tuple.
    Event(Event),
    /// Promise: no future event will have `ts` strictly less than this.
    Watermark(Timestamp),
    /// End of stream: flush all state; equivalent to `Watermark(MAX)`
    /// followed by shutdown.
    Flush,
}

impl StreamElement {
    /// The contained event, if any.
    pub fn as_event(&self) -> Option<&Event> {
        match self {
            StreamElement::Event(e) => Some(e),
            _ => None,
        }
    }

    /// Consume into the contained event, if any.
    pub fn into_event(self) -> Option<Event> {
        match self {
            StreamElement::Event(e) => Some(e),
            _ => None,
        }
    }

    /// The watermark this element implies: events imply nothing, watermarks
    /// themselves, `Flush` implies `Timestamp::MAX`.
    pub fn implied_watermark(&self) -> Option<Timestamp> {
        match self {
            StreamElement::Event(_) => None,
            StreamElement::Watermark(t) => Some(*t),
            StreamElement::Flush => Some(Timestamp::MAX),
        }
    }

    /// Whether this is the end-of-stream marker.
    pub fn is_flush(&self) -> bool {
        matches!(self, StreamElement::Flush)
    }
}

impl From<Event> for StreamElement {
    fn from(e: Event) -> Self {
        StreamElement::Event(e)
    }
}

/// Statistics about the disorder of an event sequence, computed over arrival
/// order. These are the standard characterization measures reported in
/// out-of-order stream processing evaluations.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DisorderStats {
    /// Total number of events observed.
    pub events: u64,
    /// Events whose timestamp was smaller than an earlier-arrived event's
    /// timestamp (i.e. they arrived "late" w.r.t. the running maximum).
    pub out_of_order: u64,
    /// Sum of delays (running-max timestamp minus event timestamp) over all
    /// events, in time units. Delay of an in-order event is 0.
    pub total_delay: u128,
    /// Maximum observed delay.
    pub max_delay: TimeDelta,
}

impl DisorderStats {
    /// Fraction of events that arrived out of order.
    pub fn disorder_ratio(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.out_of_order as f64 / self.events as f64
        }
    }

    /// Mean delay in time units.
    pub fn mean_delay(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.total_delay as f64 / self.events as f64
        }
    }
}

/// Online tracker of the high-watermark ("stream clock") and disorder
/// statistics of an arriving event sequence.
///
/// The *stream clock* is the maximum event timestamp seen so far. The
/// *delay* of an event is `clock_at_arrival − ts`, the standard K-slack
/// notion of lateness measured in event time.
#[derive(Debug, Clone, Default)]
pub struct ClockTracker {
    clock: Option<Timestamp>,
    stats: DisorderStats,
}

impl ClockTracker {
    /// A fresh tracker with no events observed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe an event's timestamp in arrival order. Returns the event's
    /// delay relative to the stream clock *before* the update (0 for events
    /// that advance or equal the clock).
    pub fn observe(&mut self, ts: Timestamp) -> TimeDelta {
        let delay = match self.clock {
            Some(c) if ts < c => c.delta_since(ts),
            _ => TimeDelta::ZERO,
        };
        self.clock = Some(self.clock.map_or(ts, |c| c.max(ts)));
        self.stats.events += 1;
        if delay > TimeDelta::ZERO {
            self.stats.out_of_order += 1;
        }
        self.stats.total_delay += delay.raw() as u128;
        self.stats.max_delay = self.stats.max_delay.max(delay);
        delay
    }

    /// The stream clock: maximum timestamp observed, if any event arrived.
    pub fn clock(&self) -> Option<Timestamp> {
        self.clock
    }

    /// Disorder statistics accumulated so far.
    pub fn stats(&self) -> DisorderStats {
        self.stats
    }
}

/// Sort a batch of events into event-time order (stable in arrival order for
/// equal timestamps). Used by oracles and tests as the ground-truth ordering.
pub fn sort_by_event_time(events: &mut [Event]) {
    events.sort_by(|a, b| a.time_cmp(b));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn ev(ts: u64, seq: u64) -> Event {
        Event::new(ts, seq, Row::new([Value::Int(ts as i64)]))
    }

    #[test]
    fn clock_tracker_measures_delay_against_running_max() {
        let mut t = ClockTracker::new();
        assert_eq!(t.observe(Timestamp(10)), TimeDelta(0));
        assert_eq!(t.observe(Timestamp(5)), TimeDelta(5));
        assert_eq!(t.observe(Timestamp(20)), TimeDelta(0));
        assert_eq!(t.observe(Timestamp(12)), TimeDelta(8));
        assert_eq!(t.clock(), Some(Timestamp(20)));
        let s = t.stats();
        assert_eq!(s.events, 4);
        assert_eq!(s.out_of_order, 2);
        assert_eq!(s.max_delay, TimeDelta(8));
        assert_eq!(s.total_delay, 13);
        assert!((s.disorder_ratio() - 0.5).abs() < 1e-12);
        assert!((s.mean_delay() - 13.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn clock_never_regresses() {
        let mut t = ClockTracker::new();
        t.observe(Timestamp(100));
        t.observe(Timestamp(1));
        assert_eq!(t.clock(), Some(Timestamp(100)));
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = DisorderStats::default();
        assert_eq!(s.disorder_ratio(), 0.0);
        assert_eq!(s.mean_delay(), 0.0);
    }

    #[test]
    fn sort_is_stable_on_ties() {
        let mut v = vec![ev(5, 2), ev(5, 1), ev(3, 3)];
        sort_by_event_time(&mut v);
        assert_eq!(v.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![3, 1, 2]);
    }

    #[test]
    fn implied_watermarks() {
        assert_eq!(StreamElement::Event(ev(1, 1)).implied_watermark(), None);
        assert_eq!(
            StreamElement::Watermark(Timestamp(7)).implied_watermark(),
            Some(Timestamp(7))
        );
        assert_eq!(
            StreamElement::Flush.implied_watermark(),
            Some(Timestamp::MAX)
        );
        assert!(StreamElement::Flush.is_flush());
    }

    #[test]
    fn element_event_accessors() {
        let el: StreamElement = ev(1, 1).into();
        assert!(el.as_event().is_some());
        assert_eq!(el.into_event().unwrap().ts, Timestamp(1));
        assert!(StreamElement::Flush.into_event().is_none());
    }
}
