//! Engine error types.
//!
//! Hand-rolled (`thiserror` is not in the approved dependency set); every
//! variant carries enough context to be actionable in a test failure.

use crate::value::FieldType;
use std::fmt;

/// Convenience alias used across the engine.
pub type Result<T, E = EngineError> = std::result::Result<T, E>;

/// Errors raised while building or executing a pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A schema declared the same field name twice.
    DuplicateField(String),
    /// A referenced field does not exist in the schema.
    UnknownField(String),
    /// A row had the wrong number of values for its schema.
    ArityMismatch {
        /// Fields the schema declares.
        expected: usize,
        /// Values the row carried.
        got: usize,
    },
    /// A non-null value had the wrong type for its field.
    TypeMismatch {
        /// Offending field.
        field: String,
        /// Declared type.
        expected: FieldType,
        /// Observed type.
        got: FieldType,
    },
    /// A window specification was invalid (zero length, slide > length, ...).
    InvalidWindow(String),
    /// An aggregate was configured with invalid parameters.
    InvalidAggregate(String),
    /// A pipeline was structurally invalid (no source, cycle, ...).
    InvalidPipeline(String),
    /// A worker thread in the parallel executor panicked or disconnected.
    ExecutorFailure(String),
    /// Static plan analysis found the plan unable to meet its stated
    /// requirements (deny-level diagnostic); execution was refused before
    /// any event was processed.
    PlanRejected(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::DuplicateField(name) => write!(f, "duplicate field `{name}` in schema"),
            EngineError::UnknownField(name) => write!(f, "unknown field `{name}`"),
            EngineError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row arity mismatch: schema has {expected} fields, row has {got}"
                )
            }
            EngineError::TypeMismatch {
                field,
                expected,
                got,
            } => {
                write!(
                    f,
                    "type mismatch in field `{field}`: expected {expected}, got {got}"
                )
            }
            EngineError::InvalidWindow(msg) => write!(f, "invalid window: {msg}"),
            EngineError::InvalidAggregate(msg) => write!(f, "invalid aggregate: {msg}"),
            EngineError::InvalidPipeline(msg) => write!(f, "invalid pipeline: {msg}"),
            EngineError::ExecutorFailure(msg) => write!(f, "executor failure: {msg}"),
            EngineError::PlanRejected(msg) => write!(f, "plan rejected: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EngineError::TypeMismatch {
            field: "price".into(),
            expected: FieldType::Float,
            got: FieldType::Str,
        };
        let s = e.to_string();
        assert!(s.contains("price") && s.contains("float") && s.contains("str"));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&EngineError::UnknownField("x".into()));
    }
}
