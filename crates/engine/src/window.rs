//! Window specifications and assignment.
//!
//! Windows are half-open event-time intervals `[start, end)`. A
//! [`WindowSpec`] describes how events map to windows; [`WindowSpec::assign`]
//! returns every window a timestamp belongs to. Count- and session-based
//! windows are stateful and handled by the aggregation operator directly; the
//! time-based specs here are pure functions of the timestamp, which is what
//! makes out-of-order insertion possible (a late event can still be routed to
//! its correct — possibly already-emitted — window).

use crate::error::{EngineError, Result};
use crate::time::{TimeDelta, Timestamp};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open event-time interval `[start, end)` identifying one window
/// instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Window {
    /// Inclusive start.
    pub start: Timestamp,
    /// Exclusive end.
    pub end: Timestamp,
}

impl Window {
    /// Construct a window; `start` must precede `end`.
    pub fn new(start: Timestamp, end: Timestamp) -> Window {
        debug_assert!(start < end, "window start must precede end");
        Window { start, end }
    }

    /// Whether the timestamp falls inside `[start, end)`.
    #[inline]
    pub fn contains(&self, ts: Timestamp) -> bool {
        self.start <= ts && ts < self.end
    }

    /// Window length.
    pub fn length(&self) -> TimeDelta {
        self.end.delta_since(self.start)
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start.raw(), self.end.raw())
    }
}

/// How events are grouped into windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowSpec {
    /// Non-overlapping fixed-length windows aligned to multiples of `length`.
    Tumbling {
        /// Window length (> 0).
        length: TimeDelta,
    },
    /// Overlapping fixed-length windows starting every `slide` units.
    /// `slide` must divide into sensible overlap: `0 < slide <= length`.
    Sliding {
        /// Window length (> 0).
        length: TimeDelta,
        /// Distance between consecutive window starts (> 0, <= length).
        slide: TimeDelta,
    },
}

impl WindowSpec {
    /// Tumbling windows of the given length.
    pub fn tumbling(length: impl Into<TimeDelta>) -> WindowSpec {
        WindowSpec::Tumbling {
            length: length.into(),
        }
    }

    /// Sliding windows of the given length and slide.
    pub fn sliding(length: impl Into<TimeDelta>, slide: impl Into<TimeDelta>) -> WindowSpec {
        WindowSpec::Sliding {
            length: length.into(),
            slide: slide.into(),
        }
    }

    /// Validate the parameters.
    pub fn validate(&self) -> Result<()> {
        match *self {
            WindowSpec::Tumbling { length } => {
                if length == TimeDelta::ZERO {
                    return Err(EngineError::InvalidWindow(
                        "tumbling length must be > 0".into(),
                    ));
                }
            }
            WindowSpec::Sliding { length, slide } => {
                if length == TimeDelta::ZERO || slide == TimeDelta::ZERO {
                    return Err(EngineError::InvalidWindow(
                        "sliding length and slide must be > 0".into(),
                    ));
                }
                if slide > length {
                    return Err(EngineError::InvalidWindow(format!(
                        "slide {slide} exceeds length {length}; windows would not cover the stream"
                    )));
                }
            }
        }
        Ok(())
    }

    /// The window length.
    pub fn length(&self) -> TimeDelta {
        match *self {
            WindowSpec::Tumbling { length } => length,
            WindowSpec::Sliding { length, .. } => length,
        }
    }

    /// Distance between consecutive window starts (equals length for
    /// tumbling windows).
    pub fn slide(&self) -> TimeDelta {
        match *self {
            WindowSpec::Tumbling { length } => length,
            WindowSpec::Sliding { slide, .. } => slide,
        }
    }

    /// Every window instance containing `ts`, in increasing start order.
    ///
    /// For tumbling windows this is exactly one window; for sliding windows
    /// `ceil(length / slide)` windows (fewer near the stream origin where
    /// windows would have negative starts).
    pub fn assign(&self, ts: Timestamp) -> Vec<Window> {
        let length = self.length().raw().max(1);
        let slide = self.slide().raw().max(1);
        let t = ts.raw();
        // Start of the last window containing t: floor(t / slide) * slide.
        let last_start = (t / slide) * slide;
        let mut windows = Vec::with_capacity((length / slide + 1) as usize);
        // Walk backwards while the window still contains t and start >= 0.
        let mut start = last_start;
        loop {
            let end = start.saturating_add(length);
            if t < end {
                windows.push(Window::new(Timestamp(start), Timestamp(end)));
            } else {
                break;
            }
            if start < slide {
                break;
            }
            start -= slide;
        }
        windows.reverse();
        windows
    }

    /// The single window with the largest start containing `ts` (the "home"
    /// window; for tumbling specs, *the* window).
    pub fn home_window(&self, ts: Timestamp) -> Window {
        let length = self.length().raw().max(1);
        let slide = self.slide().raw().max(1);
        let start = (ts.raw() / slide) * slide;
        Window::new(Timestamp(start), Timestamp(start.saturating_add(length)))
    }
}

impl fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowSpec::Tumbling { length } => write!(f, "tumbling({length})"),
            WindowSpec::Sliding { length, slide } => write!(f, "sliding({length}, {slide})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tumbling_assignment_is_unique_and_aligned() {
        let spec = WindowSpec::tumbling(10u64);
        let ws = spec.assign(Timestamp(25));
        assert_eq!(ws, vec![Window::new(Timestamp(20), Timestamp(30))]);
        let ws = spec.assign(Timestamp(20));
        assert_eq!(ws, vec![Window::new(Timestamp(20), Timestamp(30))]);
        let ws = spec.assign(Timestamp(0));
        assert_eq!(ws, vec![Window::new(Timestamp(0), Timestamp(10))]);
    }

    #[test]
    fn sliding_assignment_covers_all_overlapping_windows() {
        let spec = WindowSpec::sliding(10u64, 5u64);
        let ws = spec.assign(Timestamp(12));
        assert_eq!(
            ws,
            vec![
                Window::new(Timestamp(5), Timestamp(15)),
                Window::new(Timestamp(10), Timestamp(20)),
            ]
        );
        for w in &ws {
            assert!(w.contains(Timestamp(12)));
        }
    }

    #[test]
    fn sliding_assignment_near_origin_truncates() {
        let spec = WindowSpec::sliding(10u64, 5u64);
        let ws = spec.assign(Timestamp(3));
        // Only [0,10) exists; [-5,5) would have negative start.
        assert_eq!(ws, vec![Window::new(Timestamp(0), Timestamp(10))]);
    }

    #[test]
    fn sliding_with_fine_slide() {
        let spec = WindowSpec::sliding(10u64, 2u64);
        let ws = spec.assign(Timestamp(100));
        assert_eq!(ws.len(), 5);
        for w in &ws {
            assert!(w.contains(Timestamp(100)));
            assert_eq!(w.length(), TimeDelta(10));
            assert_eq!(w.start.raw() % 2, 0);
        }
        // Windows are in increasing start order and distinct.
        for pair in ws.windows(2) {
            assert!(pair[0].start < pair[1].start);
        }
    }

    #[test]
    fn validate_rejects_degenerate_specs() {
        assert!(WindowSpec::tumbling(0u64).validate().is_err());
        assert!(WindowSpec::sliding(10u64, 0u64).validate().is_err());
        assert!(WindowSpec::sliding(10u64, 11u64).validate().is_err());
        assert!(WindowSpec::sliding(10u64, 10u64).validate().is_ok());
    }

    #[test]
    fn home_window_is_last_assigned() {
        let spec = WindowSpec::sliding(10u64, 5u64);
        let ws = spec.assign(Timestamp(12));
        assert_eq!(spec.home_window(Timestamp(12)), *ws.last().unwrap());
    }

    #[test]
    fn window_contains_is_half_open() {
        let w = Window::new(Timestamp(10), Timestamp(20));
        assert!(w.contains(Timestamp(10)));
        assert!(w.contains(Timestamp(19)));
        assert!(!w.contains(Timestamp(20)));
        assert!(!w.contains(Timestamp(9)));
        assert_eq!(w.length(), TimeDelta(10));
    }
}
