//! Fast, seeded, allocation-free hashing for shard routing.
//!
//! The keyed-parallel executor hashes every event's grouping key to pick a
//! shard. `std`'s [`DefaultHasher`](std::collections::hash_map::DefaultHasher)
//! is SipHash-1-3: strong against adversarial keys, but an order of magnitude
//! slower than needed for routing, and constructing one per event costs a
//! fresh key-schedule each time. [`FxHasher`] is the FxHash multiply-rotate
//! fold used by rustc's internal hash maps: one rotate, one xor and one
//! multiply per word, with an explicit seed so shard assignment is a pure,
//! stable function of the key bytes — identical across runs, threads and
//! platforms (all words are folded in little-endian order).
//!
//! This is *not* a DoS-resistant hash; it is used only for internal shard
//! routing where the key distribution is the workload's own.

use std::hash::Hasher;

/// The multiply constant from FxHash (derived from the golden ratio,
/// `2^64 / φ`, forced odd).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// Seed for shard routing. Any fixed value works; a non-zero seed avoids the
/// degenerate `hash(0) == 0` fixed point of the fold.
pub const SHARD_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// A seeded FxHash-style [`Hasher`]: `state = rotl5(state ^ word) * K` per
/// 64-bit word.
#[derive(Debug, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// A hasher seeded with [`SHARD_SEED`].
    pub fn new() -> FxHasher {
        FxHasher::with_seed(SHARD_SEED)
    }

    /// A hasher with an explicit seed (the initial fold state).
    pub fn with_seed(seed: u64) -> FxHasher {
        FxHasher { hash: seed }
    }

    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash ^ word).rotate_left(5).wrapping_mul(K);
    }
}

impl Default for FxHasher {
    fn default() -> Self {
        FxHasher::new()
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fold full little-endian words, then the zero-padded tail. The tail
        // is folded together with its length so "ab" + "" != "a" + "b".
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.fold(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.fold(u64::from_le_bytes(tail));
        }
        self.fold(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.fold(v as u64);
        self.fold((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.fold(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(f: impl Fn(&mut FxHasher)) -> u64 {
        let mut h = FxHasher::new();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_for_equal_input() {
        let a = hash_of(|h| h.write(b"hello world"));
        let b = hash_of(|h| h.write(b"hello world"));
        assert_eq!(a, b);
    }

    #[test]
    fn sensitive_to_input_and_seed() {
        let a = hash_of(|h| h.write_u64(1));
        let b = hash_of(|h| h.write_u64(2));
        assert_ne!(a, b);
        let mut s = FxHasher::with_seed(123);
        s.write_u64(1);
        assert_ne!(a, s.finish());
    }

    #[test]
    fn byte_stream_framing_distinguishes_splits() {
        // Same bytes, different message boundaries, must differ (length fold).
        let a = hash_of(|h| {
            h.write(b"ab");
            h.write(b"");
        });
        let b = hash_of(|h| {
            h.write(b"a");
            h.write(b"b");
        });
        assert_ne!(a, b);
    }

    #[test]
    fn long_inputs_use_every_word() {
        let mut bytes = [0u8; 32];
        let a = hash_of(|h| h.write(&bytes));
        bytes[31] = 1; // flip a bit in the last chunk
        let b = hash_of(|h| h.write(&bytes));
        assert_ne!(a, b);
    }
}
