//! Pipeline assembly and execution.
//!
//! A [`Pipeline`] is a linear chain of operators. Two executors are
//! provided: a single-threaded push executor (deterministic, used by the
//! experiment harness so runs are reproducible) and a multi-threaded
//! executor that runs each operator on its own thread connected by bounded
//! crossbeam channels (used to measure pipeline-parallel throughput).
//! Both produce identical output sequences for the same input, which an
//! integration test asserts.

use crate::error::{EngineError, Result};
use crate::event::StreamElement;
use crate::operator::{FilterOp, MapOp, Operator, ProjectOp, WindowAggregateOp};
use crate::value::Row;
use crossbeam::channel;
use quill_telemetry::Registry;

/// A linear chain of push-based operators.
#[derive(Default)]
pub struct Pipeline {
    ops: Vec<Box<dyn Operator>>,
}

impl Pipeline {
    /// An empty pipeline (identity).
    pub fn new() -> Pipeline {
        Pipeline { ops: Vec::new() }
    }

    /// Append any operator.
    pub fn then(mut self, op: Box<dyn Operator>) -> Pipeline {
        self.ops.push(op);
        self
    }

    /// Append a map stage.
    pub fn map(
        self,
        name: impl Into<String>,
        f: impl FnMut(Row) -> Row + Send + 'static,
    ) -> Pipeline {
        self.then(Box::new(MapOp::new(name, f)))
    }

    /// Append a filter stage.
    pub fn filter(
        self,
        name: impl Into<String>,
        pred: impl FnMut(&Row) -> bool + Send + 'static,
    ) -> Pipeline {
        self.then(Box::new(FilterOp::new(name, pred)))
    }

    /// Append a projection stage.
    pub fn project(self, indices: impl Into<Vec<usize>>) -> Pipeline {
        self.then(Box::new(ProjectOp::new(indices)))
    }

    /// Append a window aggregation stage.
    pub fn window_aggregate(self, op: WindowAggregateOp) -> Pipeline {
        self.then(Box::new(op))
    }

    /// Operator names, source to sink.
    pub fn describe(&self) -> Vec<&str> {
        self.ops.iter().map(|o| o.name()).collect()
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Run single-threaded over an element source, invoking `sink` for each
    /// output element in order. Deterministic.
    pub fn run_into(
        &mut self,
        source: impl IntoIterator<Item = StreamElement>,
        sink: &mut dyn FnMut(StreamElement),
    ) {
        // Depth-first push through the operator chain without intermediate
        // buffering: each operator's outputs are recursively offered to the
        // next. Implemented iteratively with an explicit per-stage queue to
        // avoid borrowing conflicts.
        fn push_from(
            ops: &mut [Box<dyn Operator>],
            el: StreamElement,
            sink: &mut dyn FnMut(StreamElement),
        ) {
            match ops.split_first_mut() {
                None => sink(el),
                Some((head, rest)) => {
                    let mut staged = Vec::new();
                    head.process(el, &mut |o| staged.push(o));
                    for o in staged {
                        push_from(rest, o, sink);
                    }
                }
            }
        }
        for el in source {
            push_from(&mut self.ops, el, sink);
        }
    }

    /// Run single-threaded and collect all outputs.
    pub fn run_collect(
        &mut self,
        source: impl IntoIterator<Item = StreamElement>,
    ) -> Vec<StreamElement> {
        let mut out = Vec::new();
        self.run_into(source, &mut |el| out.push(el));
        out
    }

    /// Run with one thread per operator, connected by bounded channels of
    /// the given capacity (in batches) with the default batch size.
    /// Consumes the pipeline (operators move to their threads). Returns the
    /// collected output.
    ///
    /// # Errors
    /// [`EngineError::ExecutorFailure`] if any worker thread panics.
    pub fn run_parallel(
        self,
        source: Vec<StreamElement>,
        channel_capacity: usize,
    ) -> Result<Vec<StreamElement>> {
        self.run_parallel_batched(source, channel_capacity, 128)
    }

    /// Like [`Pipeline::run_parallel`], but with an explicit batch size:
    /// elements cross stage boundaries as `Vec<StreamElement>` chunks of up
    /// to `batch_size` elements, amortising channel synchronisation.
    /// Punctuation (watermarks, flush) delimits batches — it forces the
    /// pending chunk out immediately, so downstream stages never see a
    /// watermark lag its events. Output order is identical to the
    /// single-threaded executor.
    ///
    /// # Errors
    /// [`EngineError::ExecutorFailure`] if any worker thread panics;
    /// [`EngineError::InvalidPipeline`] for a zero capacity or batch size.
    pub fn run_parallel_batched(
        self,
        source: Vec<StreamElement>,
        channel_capacity: usize,
        batch_size: usize,
    ) -> Result<Vec<StreamElement>> {
        self.run_parallel_instrumented(source, channel_capacity, batch_size, &Registry::disabled())
    }

    /// Like [`Pipeline::run_parallel_batched`], but recording per-stage
    /// telemetry into `telemetry`: `quill.pipeline.stage.<i>.batches` and
    /// `quill.pipeline.stage.<i>.elements` counters (elements entering each
    /// stage, batches it received) plus `quill.pipeline.source.batches`.
    /// With a disabled registry the instrument updates are no-op branches.
    ///
    /// # Errors
    /// Same as [`Pipeline::run_parallel_batched`].
    pub fn run_parallel_instrumented(
        self,
        source: Vec<StreamElement>,
        channel_capacity: usize,
        batch_size: usize,
        telemetry: &Registry,
    ) -> Result<Vec<StreamElement>> {
        if channel_capacity == 0 {
            return Err(EngineError::InvalidPipeline(
                "channel capacity must be > 0".into(),
            ));
        }
        if batch_size == 0 {
            return Err(EngineError::InvalidPipeline(
                "batch size must be > 0".into(),
            ));
        }
        let mut handles = Vec::new();
        // Source channel.
        let (src_tx, mut rx) = channel::bounded::<Vec<StreamElement>>(channel_capacity);
        let src_batches = telemetry.counter("quill.pipeline.source.batches");
        handles.push(std::thread::spawn(move || {
            let mut buf = Vec::with_capacity(batch_size);
            for el in source {
                let delimit = !matches!(el, StreamElement::Event(_));
                buf.push(el);
                if buf.len() >= batch_size || delimit {
                    src_batches.inc();
                    if src_tx.send(std::mem::take(&mut buf)).is_err() {
                        return;
                    }
                }
            }
            if !buf.is_empty() {
                src_batches.inc();
                let _ = src_tx.send(buf);
            }
        }));
        for (stage, mut op) in self.ops.into_iter().enumerate() {
            let (tx, next_rx) = channel::bounded::<Vec<StreamElement>>(channel_capacity);
            let op_rx = rx;
            let stage_batches = telemetry.counter(&format!("quill.pipeline.stage.{stage}.batches"));
            let stage_elements =
                telemetry.counter(&format!("quill.pipeline.stage.{stage}.elements"));
            handles.push(std::thread::spawn(move || {
                let mut out_buf: Vec<StreamElement> = Vec::with_capacity(batch_size);
                'stage: for batch in op_rx {
                    stage_batches.inc();
                    stage_elements.add(batch.len() as u64);
                    for el in batch {
                        let mut failed = false;
                        op.process(el, &mut |o| {
                            let delimit = !matches!(o, StreamElement::Event(_));
                            out_buf.push(o);
                            if (out_buf.len() >= batch_size || delimit)
                                && tx.send(std::mem::take(&mut out_buf)).is_err()
                            {
                                failed = true;
                            }
                        });
                        if failed {
                            break 'stage;
                        }
                    }
                }
                if !out_buf.is_empty() {
                    let _ = tx.send(out_buf);
                }
            }));
            rx = next_rx;
        }
        let out: Vec<StreamElement> = rx.into_iter().flatten().collect();
        for h in handles {
            h.join()
                .map_err(|_| EngineError::ExecutorFailure("worker thread panicked".into()))?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AggregateKind, AggregateSpec};
    use crate::event::Event;
    use crate::operator::{LatePolicy, WindowResult};
    use crate::value::Value;
    use crate::window::WindowSpec;

    fn source(n: u64) -> Vec<StreamElement> {
        let mut v: Vec<StreamElement> = (0..n)
            .map(|i| StreamElement::Event(Event::new(i, i, Row::new([Value::Float(i as f64)]))))
            .collect();
        v.push(StreamElement::Flush);
        v
    }

    fn test_pipeline() -> Pipeline {
        Pipeline::new()
            .filter("even", |r: &Row| (r.f64(0).unwrap_or(0.0) as i64) % 2 == 0)
            .map("x10", |r: Row| {
                Row::new([Value::Float(r.f64(0).unwrap_or(0.0) * 10.0)])
            })
            .window_aggregate(
                WindowAggregateOp::new(
                    WindowSpec::tumbling(10u64),
                    vec![AggregateSpec::new(AggregateKind::Sum, 0, "sum")],
                    None,
                    LatePolicy::Drop,
                )
                .unwrap(),
            )
    }

    #[test]
    fn single_threaded_chain_works() {
        let mut p = test_pipeline();
        assert_eq!(p.len(), 3);
        let out = p.run_collect(source(20));
        let results: Vec<WindowResult> = out
            .iter()
            .filter_map(|e| e.as_event())
            .filter_map(|e| WindowResult::from_row(&e.row))
            .collect();
        // Windows [0,10): evens 0..8 → (0+2+4+6+8)*10 = 200; [10,20): (10+12+14+16+18)*10 = 700.
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].aggregates[0], Value::Float(200.0));
        assert_eq!(results[1].aggregates[0], Value::Float(700.0));
    }

    #[test]
    fn parallel_matches_single_threaded() {
        let mut p1 = test_pipeline();
        let expected = p1.run_collect(source(200));
        let p2 = test_pipeline();
        let got = p2.run_parallel(source(200), 16).unwrap();
        assert_eq!(expected, got);
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let mut p = Pipeline::new();
        assert!(p.is_empty());
        let input = source(3);
        assert_eq!(p.run_collect(input.clone()), input);
    }

    #[test]
    fn describe_lists_stage_names() {
        let p = test_pipeline();
        let names = p.describe();
        assert_eq!(names[0], "even");
        assert_eq!(names[1], "x10");
        assert!(names[2].starts_with("window-agg"));
    }

    #[test]
    fn parallel_batched_matches_single_threaded() {
        let mut p1 = test_pipeline();
        let expected = p1.run_collect(source(200));
        for batch in [1usize, 3, 64, 1000] {
            let got = test_pipeline()
                .run_parallel_batched(source(200), 4, batch)
                .unwrap();
            assert_eq!(expected, got, "batch={batch}");
        }
    }

    #[test]
    fn instrumented_parallel_records_per_stage_counts() {
        let reg = Registry::new();
        let expected = test_pipeline().run_collect(source(200));
        let got = test_pipeline()
            .run_parallel_instrumented(source(200), 4, 16, &reg)
            .unwrap();
        assert_eq!(expected, got);
        let snap = reg.snapshot();
        assert!(snap.counter("quill.pipeline.source.batches") > 0);
        // Stage 0 sees everything the source sent: 200 events + Flush.
        assert_eq!(snap.counter("quill.pipeline.stage.0.elements"), 201);
        // The filter halves the event count for stage 1 (100 evens + Flush).
        assert_eq!(snap.counter("quill.pipeline.stage.1.elements"), 101);
    }

    #[test]
    fn zero_capacity_rejected() {
        let p = Pipeline::new();
        assert!(matches!(
            p.run_parallel(vec![], 0),
            Err(EngineError::InvalidPipeline(_))
        ));
        assert!(matches!(
            Pipeline::new().run_parallel_batched(vec![], 4, 0),
            Err(EngineError::InvalidPipeline(_))
        ));
    }

    #[test]
    fn traced_window_stage_records_finalizes_through_parallel_pipeline() {
        use quill_telemetry::trace::{FlightRecorder, TraceKind};
        // A window stage keeps its attached recorder when it moves to a
        // worker thread; one WindowFinalize per emitted result.
        let rec = FlightRecorder::new(1024);
        let mut op = WindowAggregateOp::new(
            WindowSpec::tumbling(10u64),
            vec![AggregateSpec::new(AggregateKind::Sum, 0, "sum")],
            None,
            LatePolicy::Drop,
        )
        .unwrap();
        op.attach_trace(&rec, 0);
        let out = Pipeline::new()
            .window_aggregate(op)
            .run_parallel_batched(source(50), 4, 8)
            .unwrap();
        let results = out
            .iter()
            .filter_map(|e| e.as_event())
            .filter(|e| WindowResult::from_row(&e.row).is_some())
            .count();
        let fins = rec
            .events()
            .iter()
            .filter(|t| matches!(t.kind, TraceKind::WindowFinalize { .. }))
            .count();
        assert_eq!(results, 5);
        assert_eq!(fins, results);
    }

    #[test]
    fn flush_reaches_sink_through_all_stages() {
        let mut p = test_pipeline();
        let out = p.run_collect(vec![StreamElement::Flush]);
        assert!(out.iter().any(|e| e.is_flush()));
    }
}
