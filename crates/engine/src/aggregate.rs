//! Aggregate functions over window contents.
//!
//! An [`AggregateSpec`] names an aggregate and the field it reads;
//! [`AggregateSpec::build`] instantiates per-window incremental state (an
//! [`Aggregator`]). Every aggregate also has a *reference implementation*
//! ([`AggregateSpec::compute`]) that recomputes the result from the raw
//! window contents; the incremental and reference paths are checked against
//! each other by property tests, and the reference path is what the in-order
//! oracle uses to score result quality.
//!
//! Nulls and non-numeric values are skipped by numeric aggregates (SQL
//! semantics); `count` counts all non-null values.

use crate::error::{EngineError, Result};
use crate::time::Timestamp;
use crate::value::{Key, Row, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The aggregate function to apply to one field within each window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AggregateKind {
    /// Number of non-null values.
    Count,
    /// Sum of numeric values.
    Sum,
    /// Arithmetic mean of numeric values.
    Mean,
    /// Minimum (total order over values).
    Min,
    /// Maximum (total order over values).
    Max,
    /// Population standard deviation of numeric values.
    StdDev,
    /// Population variance of numeric values.
    Variance,
    /// Exact median of numeric values (midpoint for even counts).
    Median,
    /// Exact p-quantile of numeric values, `0.0 <= p <= 1.0`, nearest-rank
    /// with linear interpolation.
    Quantile(f64),
    /// Number of distinct non-null values.
    DistinctCount,
    /// Value with the smallest event-time timestamp (arrival ties broken by
    /// insertion order).
    First,
    /// Value with the largest event-time timestamp.
    Last,
    /// Value of this spec's field at the row where the *other* field
    /// (the payload of this variant) is minimal. Ties: first in event time.
    ArgMin(usize),
    /// Value of this spec's field at the row where the other field is
    /// maximal. Ties: first in event time.
    ArgMax(usize),
}

impl AggregateKind {
    /// Whether the incremental state size is O(1) (vs. O(window) for
    /// order-statistic and distinct aggregates).
    pub fn constant_space(&self) -> bool {
        matches!(
            self,
            AggregateKind::Count
                | AggregateKind::Sum
                | AggregateKind::Mean
                | AggregateKind::Min
                | AggregateKind::Max
                | AggregateKind::StdDev
                | AggregateKind::Variance
                | AggregateKind::First
                | AggregateKind::Last
                | AggregateKind::ArgMin(_)
                | AggregateKind::ArgMax(_)
        )
    }

    /// Whether per-pane partial states of this aggregate can be merged into
    /// a window result (`AggregateSpec::build_pane` returns `Some`). Exact
    /// order statistics and distinct counts are not decomposable without
    /// retaining per-pane value sets, so they stay on the per-window path.
    pub fn combinable(&self) -> bool {
        self.constant_space()
    }
}

impl fmt::Display for AggregateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggregateKind::Count => write!(f, "count"),
            AggregateKind::Sum => write!(f, "sum"),
            AggregateKind::Mean => write!(f, "mean"),
            AggregateKind::Min => write!(f, "min"),
            AggregateKind::Max => write!(f, "max"),
            AggregateKind::StdDev => write!(f, "stddev"),
            AggregateKind::Variance => write!(f, "variance"),
            AggregateKind::Median => write!(f, "median"),
            AggregateKind::Quantile(p) => write!(f, "q{p}"),
            AggregateKind::DistinctCount => write!(f, "distinct"),
            AggregateKind::First => write!(f, "first"),
            AggregateKind::Last => write!(f, "last"),
            AggregateKind::ArgMin(by) => write!(f, "argmin(by={by})"),
            AggregateKind::ArgMax(by) => write!(f, "argmax(by={by})"),
        }
    }
}

/// An aggregate bound to the row field it reads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateSpec {
    /// Which function.
    pub kind: AggregateKind,
    /// Index of the input field in the row.
    pub field: usize,
    /// Output column name in result rows.
    pub name: String,
}

impl AggregateSpec {
    /// Construct a spec.
    pub fn new(kind: AggregateKind, field: usize, name: impl Into<String>) -> AggregateSpec {
        AggregateSpec {
            kind,
            field,
            name: name.into(),
        }
    }

    /// Validate parameters (quantile range).
    pub fn validate(&self) -> Result<()> {
        if let AggregateKind::Quantile(p) = self.kind {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(EngineError::InvalidAggregate(format!(
                    "quantile p={p} outside [0,1]"
                )));
            }
        }
        Ok(())
    }

    /// Instantiate fresh incremental state.
    pub fn build(&self) -> Box<dyn Aggregator> {
        match self.kind {
            AggregateKind::Count => Box::new(CountAgg::default()),
            AggregateKind::Sum => Box::new(SumAgg::default()),
            AggregateKind::Mean => Box::new(MeanAgg::default()),
            AggregateKind::Min => Box::new(ExtremeAgg::new(false)),
            AggregateKind::Max => Box::new(ExtremeAgg::new(true)),
            AggregateKind::StdDev => Box::new(MomentsAgg::new(true)),
            AggregateKind::Variance => Box::new(MomentsAgg::new(false)),
            AggregateKind::Median => Box::new(QuantileAgg::new(0.5)),
            AggregateKind::Quantile(p) => Box::new(QuantileAgg::new(p)),
            AggregateKind::DistinctCount => Box::new(DistinctAgg::default()),
            AggregateKind::First => Box::new(EdgeAgg::new(false)),
            AggregateKind::Last => Box::new(EdgeAgg::new(true)),
            // Arg aggregates receive the full row via `insert_row` (see
            // `Aggregator::insert_row`); plain `insert` sees only the
            // reported field and cannot resolve the `by` field, so the
            // windowed operator feeds arg aggregates through `insert_row`.
            AggregateKind::ArgMin(by) => Box::new(ArgAgg::new(false, by)),
            AggregateKind::ArgMax(by) => Box::new(ArgAgg::new(true, by)),
        }
    }

    /// Instantiate mergeable per-pane partial state, or `None` for kinds
    /// whose partials cannot be combined (order statistics, distinct
    /// counts). Used by the shared-pane sliding-window path; see
    /// [`PaneAgg`].
    pub(crate) fn build_pane(&self) -> Option<PaneAgg> {
        Some(match self.kind {
            AggregateKind::Count => PaneAgg::Count(CountAgg::default()),
            AggregateKind::Sum => PaneAgg::Sum(SumAgg::default()),
            AggregateKind::Mean => PaneAgg::Mean(MeanAgg::default()),
            AggregateKind::Min => PaneAgg::Extreme(ExtremeAgg::new(false)),
            AggregateKind::Max => PaneAgg::Extreme(ExtremeAgg::new(true)),
            AggregateKind::StdDev => PaneAgg::Moments(MomentsAgg::new(true)),
            AggregateKind::Variance => PaneAgg::Moments(MomentsAgg::new(false)),
            AggregateKind::First => PaneAgg::Edge(EdgeAgg::new(false)),
            AggregateKind::Last => PaneAgg::Edge(EdgeAgg::new(true)),
            AggregateKind::ArgMin(by) => PaneAgg::Arg(ArgAgg::new(false, by)),
            AggregateKind::ArgMax(by) => PaneAgg::Arg(ArgAgg::new(true, by)),
            AggregateKind::Median | AggregateKind::Quantile(_) | AggregateKind::DistinctCount => {
                return None
            }
        })
    }

    /// Reference implementation: compute the aggregate from the raw window
    /// contents in one pass. `values` is `(event timestamp, field value)` in
    /// any order. Arg-aggregates need the full rows — use
    /// [`AggregateSpec::compute_rows`] for them (this method returns `Null`
    /// for arg kinds since the `by` field is unavailable).
    pub fn compute(&self, values: &[(Timestamp, Value)]) -> Value {
        let mut agg = self.build();
        // The reference path must be insertion-order independent for every
        // aggregate except First/Last, which are defined by timestamp; feed
        // in timestamp order so ties resolve identically to sorted input.
        let mut sorted: Vec<&(Timestamp, Value)> = values.iter().collect();
        sorted.sort_by_key(|(ts, _)| *ts);
        for (ts, v) in sorted {
            agg.insert(*ts, v);
        }
        agg.finalize()
    }

    /// Full-row reference implementation: like [`AggregateSpec::compute`]
    /// but with access to whole rows, supporting arg-aggregates. Used by the
    /// in-order oracle.
    pub fn compute_rows(&self, rows: &[(Timestamp, &Row)]) -> Value {
        let mut agg = self.build();
        let mut sorted: Vec<&(Timestamp, &Row)> = rows.iter().collect();
        sorted.sort_by_key(|(ts, _)| *ts);
        for (ts, row) in sorted {
            agg.insert_row(*ts, row.get(self.field), row);
        }
        agg.finalize()
    }
}

/// Incremental per-window aggregate state.
pub trait Aggregator: Send {
    /// Fold one value (with its event timestamp) into the state.
    fn insert(&mut self, ts: Timestamp, v: &Value);
    /// Produce the current result. `Null` when no qualifying values arrived.
    fn finalize(&self) -> Value;
    /// Number of values folded in (for completeness accounting).
    fn count(&self) -> u64;
    /// Fold one value with access to its full row. Only arg-aggregates need
    /// the row; the default delegates to [`Aggregator::insert`]. Window
    /// operators call this method so arg-aggregates work transparently.
    fn insert_row(&mut self, ts: Timestamp, v: &Value, _row: &Row) {
        self.insert(ts, v);
    }
}

/// Mergeable per-pane partial aggregate state.
///
/// The shared-pane sliding-window path (stream slicing) folds each event
/// into exactly one *pane* — the `[k·slide, (k+1)·slide)` interval owning its
/// timestamp — and assembles window results by merging pane partials instead
/// of re-folding raw events into every overlapping window. Each variant
/// wraps the corresponding incremental aggregator and adds a `merge`
/// operation combining two disjoint partials; merges always fold the *later*
/// pane into the *earlier* one, so tie-breaking matches event-time order.
///
/// Per-event cost is O(1); per-window cost is O(aggs) amortized through the
/// two-stacks suffix cache in the window operator.
#[derive(Clone)]
pub(crate) enum PaneAgg {
    Count(CountAgg),
    Sum(SumAgg),
    Mean(MeanAgg),
    Extreme(ExtremeAgg),
    Moments(MomentsAgg),
    Edge(EdgeAgg),
    Arg(ArgAgg),
}

impl PaneAgg {
    /// Fold one event into the partial (same contract as
    /// [`Aggregator::insert_row`]).
    pub(crate) fn insert_row(&mut self, ts: Timestamp, v: &Value, row: &Row) {
        match self {
            PaneAgg::Count(a) => a.insert(ts, v),
            PaneAgg::Sum(a) => a.insert(ts, v),
            PaneAgg::Mean(a) => a.insert(ts, v),
            PaneAgg::Extreme(a) => a.insert(ts, v),
            PaneAgg::Moments(a) => a.insert(ts, v),
            PaneAgg::Edge(a) => a.insert(ts, v),
            PaneAgg::Arg(a) => a.insert_row(ts, v, row),
        }
    }

    /// Merge a *later* pane's partial into this one. Both sides must come
    /// from the same [`AggregateSpec`] (enforced by construction; mismatched
    /// variants are a logic error).
    pub(crate) fn merge(&mut self, later: &PaneAgg) {
        match (self, later) {
            (PaneAgg::Count(a), PaneAgg::Count(b)) => a.merge(b),
            (PaneAgg::Sum(a), PaneAgg::Sum(b)) => a.merge(b),
            (PaneAgg::Mean(a), PaneAgg::Mean(b)) => a.merge(b),
            (PaneAgg::Extreme(a), PaneAgg::Extreme(b)) => a.merge(b),
            (PaneAgg::Moments(a), PaneAgg::Moments(b)) => a.merge(b),
            (PaneAgg::Edge(a), PaneAgg::Edge(b)) => a.merge(b),
            (PaneAgg::Arg(a), PaneAgg::Arg(b)) => a.merge(b),
            _ => debug_assert!(false, "merging mismatched pane aggregates"),
        }
    }

    /// Produce the current result (same contract as
    /// [`Aggregator::finalize`]).
    pub(crate) fn finalize(&self) -> Value {
        match self {
            PaneAgg::Count(a) => a.finalize(),
            PaneAgg::Sum(a) => a.finalize(),
            PaneAgg::Mean(a) => a.finalize(),
            PaneAgg::Extreme(a) => a.finalize(),
            PaneAgg::Moments(a) => a.finalize(),
            PaneAgg::Edge(a) => a.finalize(),
            PaneAgg::Arg(a) => a.finalize(),
        }
    }
}

#[derive(Clone, Default)]
pub(crate) struct CountAgg {
    n: u64,
    seen: u64,
}

impl CountAgg {
    fn merge(&mut self, o: &CountAgg) {
        self.n += o.n;
        self.seen += o.seen;
    }
}

impl Aggregator for CountAgg {
    fn insert(&mut self, _ts: Timestamp, v: &Value) {
        self.seen += 1;
        if !v.is_null() {
            self.n += 1;
        }
    }
    fn finalize(&self) -> Value {
        Value::Int(self.n as i64)
    }
    fn count(&self) -> u64 {
        self.seen
    }
}

#[derive(Clone, Default)]
pub(crate) struct SumAgg {
    sum: f64,
    n: u64,
    seen: u64,
}

impl SumAgg {
    fn merge(&mut self, o: &SumAgg) {
        self.sum += o.sum;
        self.n += o.n;
        self.seen += o.seen;
    }
}

impl Aggregator for SumAgg {
    fn insert(&mut self, _ts: Timestamp, v: &Value) {
        self.seen += 1;
        if let Some(x) = v.as_f64() {
            self.sum += x;
            self.n += 1;
        }
    }
    fn finalize(&self) -> Value {
        if self.n == 0 {
            Value::Null
        } else {
            Value::Float(self.sum)
        }
    }
    fn count(&self) -> u64 {
        self.seen
    }
}

#[derive(Clone, Default)]
pub(crate) struct MeanAgg {
    sum: f64,
    n: u64,
    seen: u64,
}

impl MeanAgg {
    fn merge(&mut self, o: &MeanAgg) {
        self.sum += o.sum;
        self.n += o.n;
        self.seen += o.seen;
    }
}

impl Aggregator for MeanAgg {
    fn insert(&mut self, _ts: Timestamp, v: &Value) {
        self.seen += 1;
        if let Some(x) = v.as_f64() {
            self.sum += x;
            self.n += 1;
        }
    }
    fn finalize(&self) -> Value {
        if self.n == 0 {
            Value::Null
        } else {
            Value::Float(self.sum / self.n as f64)
        }
    }
    fn count(&self) -> u64 {
        self.seen
    }
}

/// Min/Max over the total value order.
#[derive(Clone)]
pub(crate) struct ExtremeAgg {
    max: bool,
    best: Option<Value>,
    seen: u64,
}

impl ExtremeAgg {
    fn new(max: bool) -> Self {
        ExtremeAgg {
            max,
            best: None,
            seen: 0,
        }
    }

    /// Merge a later partial: its extremum replaces ours only when strictly
    /// better, so `total_cmp`-equal values keep the earlier pane's
    /// representative (deterministic in event-time order).
    fn merge(&mut self, o: &ExtremeAgg) {
        self.seen += o.seen;
        if let Some(ov) = &o.best {
            let better = match &self.best {
                None => true,
                Some(b) => {
                    let ord = ov.total_cmp(b);
                    if self.max {
                        ord == std::cmp::Ordering::Greater
                    } else {
                        ord == std::cmp::Ordering::Less
                    }
                }
            };
            if better {
                self.best = Some(ov.clone());
            }
        }
    }
}

impl Aggregator for ExtremeAgg {
    fn insert(&mut self, _ts: Timestamp, v: &Value) {
        self.seen += 1;
        if v.is_null() {
            return;
        }
        let better = match &self.best {
            None => true,
            Some(b) => {
                let ord = v.total_cmp(b);
                if self.max {
                    ord == std::cmp::Ordering::Greater
                } else {
                    ord == std::cmp::Ordering::Less
                }
            }
        };
        if better {
            self.best = Some(v.clone());
        }
    }
    fn finalize(&self) -> Value {
        self.best.clone().unwrap_or(Value::Null)
    }
    fn count(&self) -> u64 {
        self.seen
    }
}

/// Welford-style running moments for variance / standard deviation
/// (population). Numerically stable under long windows.
#[derive(Clone)]
pub(crate) struct MomentsAgg {
    stddev: bool,
    n: u64,
    mean: f64,
    m2: f64,
    seen: u64,
}

impl MomentsAgg {
    fn new(stddev: bool) -> Self {
        MomentsAgg {
            stddev,
            n: 0,
            mean: 0.0,
            m2: 0.0,
            seen: 0,
        }
    }

    /// Chan et al.'s parallel-moments combine: exact counts, and mean/M2
    /// merged without revisiting raw values.
    fn merge(&mut self, o: &MomentsAgg) {
        self.seen += o.seen;
        if o.n == 0 {
            return;
        }
        if self.n == 0 {
            self.n = o.n;
            self.mean = o.mean;
            self.m2 = o.m2;
            return;
        }
        let na = self.n as f64;
        let nb = o.n as f64;
        let n = na + nb;
        let delta = o.mean - self.mean;
        self.m2 += o.m2 + delta * delta * na * nb / n;
        self.mean += delta * nb / n;
        self.n += o.n;
    }
}

impl Aggregator for MomentsAgg {
    fn insert(&mut self, _ts: Timestamp, v: &Value) {
        self.seen += 1;
        if let Some(x) = v.as_f64() {
            self.n += 1;
            let d = x - self.mean;
            self.mean += d / self.n as f64;
            self.m2 += d * (x - self.mean);
        }
    }
    fn finalize(&self) -> Value {
        if self.n == 0 {
            return Value::Null;
        }
        let var = (self.m2 / self.n as f64).max(0.0);
        Value::Float(if self.stddev { var.sqrt() } else { var })
    }
    fn count(&self) -> u64 {
        self.seen
    }
}

/// Exact quantile over incrementally maintained *sorted* state: each ingest
/// binary-searches the insertion point (`O(log n)` compare + `O(n)` shift of
/// plain `f64`s — a fast `memmove`), so finalize is O(1) instead of the old
/// clone-and-sort (`O(n)` allocation + `O(n log n)` compares per emission,
/// which dominated Median/Quantile windows that finalize more often than
/// they grow).
struct QuantileAgg {
    p: f64,
    /// Values in ascending `total_cmp` order at all times.
    sorted: Vec<f64>,
    seen: u64,
}

impl QuantileAgg {
    fn new(p: f64) -> Self {
        QuantileAgg {
            p: p.clamp(0.0, 1.0),
            sorted: Vec::new(),
            seen: 0,
        }
    }
}

/// p-quantile of a sorted slice with linear interpolation between ranks.
pub(crate) fn quantile_sorted(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let n = sorted.len();
    if n == 1 {
        return Some(sorted[0]);
    }
    let rank = p.clamp(0.0, 1.0) * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi.min(n - 1)] - sorted[lo]) * frac)
}

impl Aggregator for QuantileAgg {
    fn insert(&mut self, _ts: Timestamp, v: &Value) {
        self.seen += 1;
        if let Some(x) = v.as_f64() {
            // Insert after any total_cmp-equal values: equal f64s are
            // bit-identical, so this yields exactly the array a stable
            // sort of the raw buffer would.
            let at = self
                .sorted
                .partition_point(|y| y.total_cmp(&x) != std::cmp::Ordering::Greater);
            self.sorted.insert(at, x);
        }
    }
    fn finalize(&self) -> Value {
        match quantile_sorted(&self.sorted, self.p) {
            Some(q) => Value::Float(q),
            None => Value::Null,
        }
    }
    fn count(&self) -> u64 {
        self.seen
    }
}

#[derive(Default)]
struct DistinctAgg {
    set: BTreeSet<Key>,
    seen: u64,
}

impl Aggregator for DistinctAgg {
    fn insert(&mut self, _ts: Timestamp, v: &Value) {
        self.seen += 1;
        if !v.is_null() {
            self.set.insert(Key(v.clone()));
        }
    }
    fn finalize(&self) -> Value {
        Value::Int(self.set.len() as i64)
    }
    fn count(&self) -> u64 {
        self.seen
    }
}

/// First/Last by event timestamp. For equal timestamps, the earliest (resp.
/// latest) *insertion* wins, matching the reference implementation which
/// feeds values in (ts, insertion) order.
#[derive(Clone)]
pub(crate) struct EdgeAgg {
    last: bool,
    best: Option<(Timestamp, Value)>,
    seen: u64,
}

impl EdgeAgg {
    fn new(last: bool) -> Self {
        EdgeAgg {
            last,
            best: None,
            seen: 0,
        }
    }

    /// Merge a later pane's partial. Equal timestamps cannot occur across
    /// panes (a timestamp maps to exactly one pane), so the insert-order tie
    /// rule never fires here.
    fn merge(&mut self, o: &EdgeAgg) {
        self.seen += o.seen;
        if let Some((ots, ov)) = &o.best {
            let take = match &self.best {
                None => true,
                Some((bt, _)) => {
                    if self.last {
                        *ots >= *bt
                    } else {
                        *ots < *bt
                    }
                }
            };
            if take {
                self.best = Some((*ots, ov.clone()));
            }
        }
    }
}

impl Aggregator for EdgeAgg {
    fn insert(&mut self, ts: Timestamp, v: &Value) {
        self.seen += 1;
        if v.is_null() {
            return;
        }
        let take = match &self.best {
            None => true,
            Some((bt, _)) => {
                if self.last {
                    ts >= *bt
                } else {
                    ts < *bt
                }
            }
        };
        if take {
            self.best = Some((ts, v.clone()));
        }
    }
    fn finalize(&self) -> Value {
        self.best
            .as_ref()
            .map(|(_, v)| v.clone())
            .unwrap_or(Value::Null)
    }
    fn count(&self) -> u64 {
        self.seen
    }
}

/// ArgMin/ArgMax: report one field's value at the extremum of another.
#[derive(Clone)]
pub(crate) struct ArgAgg {
    max: bool,
    by: usize,
    best: Option<(Value, Timestamp, Value)>,
    seen: u64,
}

impl ArgAgg {
    fn new(max: bool, by: usize) -> ArgAgg {
        ArgAgg {
            max,
            by,
            best: None,
            seen: 0,
        }
    }

    /// Merge a later pane's partial with the same extremum/tie rule as
    /// `insert_row`: strictly better `by` wins; equal `by` resolves to the
    /// earliest event time.
    fn merge(&mut self, o: &ArgAgg) {
        self.seen += o.seen;
        if let Some((oby, ots, ov)) = &o.best {
            let better = match &self.best {
                None => true,
                Some((best_by, best_ts, _)) => {
                    use std::cmp::Ordering::*;
                    match oby.total_cmp(best_by) {
                        Greater => self.max,
                        Less => !self.max,
                        Equal => *ots < *best_ts,
                    }
                }
            };
            if better {
                self.best = Some((oby.clone(), *ots, ov.clone()));
            }
        }
    }
}

impl Aggregator for ArgAgg {
    fn insert(&mut self, _ts: Timestamp, _v: &Value) {
        // Row-less insertion cannot see the `by` field; count only. The
        // engine's window operators always use `insert_row`.
        self.seen += 1;
    }
    fn insert_row(&mut self, ts: Timestamp, v: &Value, row: &Row) {
        self.seen += 1;
        let by_val = row.get(self.by);
        if by_val.is_null() {
            return;
        }
        let better = match &self.best {
            None => true,
            Some((best_by, best_ts, _)) => {
                use std::cmp::Ordering::*;
                match by_val.total_cmp(best_by) {
                    Greater => self.max,
                    Less => !self.max,
                    // Ties: earliest event time wins.
                    Equal => ts < *best_ts,
                }
            }
        };
        if better {
            self.best = Some((by_val.clone(), ts, v.clone()));
        }
    }
    fn finalize(&self) -> Value {
        self.best
            .as_ref()
            .map(|(_, _, v)| v.clone())
            .unwrap_or(Value::Null)
    }
    fn count(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(kind: AggregateKind, vals: &[Value]) -> Value {
        let spec = AggregateSpec::new(kind, 0, "out");
        let tv: Vec<(Timestamp, Value)> = vals
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, v)| (Timestamp(i as u64), v))
            .collect();
        spec.compute(&tv)
    }

    fn floats(vs: &[f64]) -> Vec<Value> {
        vs.iter().map(|&v| Value::Float(v)).collect()
    }

    #[test]
    fn count_skips_nulls() {
        assert_eq!(
            run(
                AggregateKind::Count,
                &[Value::Int(1), Value::Null, Value::Int(2)]
            ),
            Value::Int(2)
        );
    }

    #[test]
    fn sum_and_mean() {
        assert_eq!(
            run(AggregateKind::Sum, &floats(&[1.0, 2.0, 3.0])),
            Value::Float(6.0)
        );
        assert_eq!(
            run(AggregateKind::Mean, &floats(&[1.0, 2.0, 3.0])),
            Value::Float(2.0)
        );
        assert_eq!(run(AggregateKind::Sum, &[Value::Null]), Value::Null);
    }

    #[test]
    fn sum_mixes_int_and_float() {
        assert_eq!(
            run(AggregateKind::Sum, &[Value::Int(1), Value::Float(2.5)]),
            Value::Float(3.5)
        );
    }

    #[test]
    fn min_max_over_total_order() {
        assert_eq!(
            run(AggregateKind::Min, &floats(&[3.0, 1.0, 2.0])),
            Value::Float(1.0)
        );
        assert_eq!(
            run(AggregateKind::Max, &floats(&[3.0, 1.0, 2.0])),
            Value::Float(3.0)
        );
        assert_eq!(
            run(AggregateKind::Max, &[Value::Int(2), Value::Float(2.5)]),
            Value::Float(2.5)
        );
    }

    #[test]
    fn variance_and_stddev_population() {
        // Var([2,4,4,4,5,5,7,9]) = 4, stddev = 2 (classic example).
        let vs = floats(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        match run(AggregateKind::Variance, &vs) {
            Value::Float(v) => assert!((v - 4.0).abs() < 1e-9),
            other => panic!("expected float, got {other:?}"),
        }
        match run(AggregateKind::StdDev, &vs) {
            Value::Float(v) => assert!((v - 2.0).abs() < 1e-9),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(
            run(AggregateKind::Median, &floats(&[5.0, 1.0, 3.0])),
            Value::Float(3.0)
        );
        assert_eq!(
            run(AggregateKind::Median, &floats(&[4.0, 1.0, 3.0, 2.0])),
            Value::Float(2.5)
        );
    }

    #[test]
    fn quantiles_interpolate() {
        let vs = floats(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(run(AggregateKind::Quantile(0.0), &vs), Value::Float(10.0));
        assert_eq!(run(AggregateKind::Quantile(1.0), &vs), Value::Float(40.0));
        match run(AggregateKind::Quantile(0.5), &vs) {
            Value::Float(v) => assert!((v - 25.0).abs() < 1e-9),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn quantile_validation() {
        assert!(AggregateSpec::new(AggregateKind::Quantile(1.5), 0, "q")
            .validate()
            .is_err());
        assert!(
            AggregateSpec::new(AggregateKind::Quantile(f64::NAN), 0, "q")
                .validate()
                .is_err()
        );
        assert!(AggregateSpec::new(AggregateKind::Quantile(0.99), 0, "q")
            .validate()
            .is_ok());
    }

    #[test]
    fn distinct_count() {
        assert_eq!(
            run(
                AggregateKind::DistinctCount,
                &[Value::Int(1), Value::Int(1), Value::Int(2), Value::Null]
            ),
            Value::Int(2)
        );
        // Int 1 and Float 1.0 coincide under the key order.
        assert_eq!(
            run(
                AggregateKind::DistinctCount,
                &[Value::Int(1), Value::Float(1.0)]
            ),
            Value::Int(1)
        );
    }

    #[test]
    fn first_last_by_timestamp_not_arrival() {
        let spec = AggregateSpec::new(AggregateKind::First, 0, "f");
        // Arrival order: ts=5 then ts=2 — first by event time is ts=2.
        let vals = vec![
            (Timestamp(5), Value::Int(50)),
            (Timestamp(2), Value::Int(20)),
        ];
        assert_eq!(spec.compute(&vals), Value::Int(20));
        let spec = AggregateSpec::new(AggregateKind::Last, 0, "l");
        assert_eq!(spec.compute(&vals), Value::Int(50));
    }

    #[test]
    fn incremental_matches_reference_for_order_independence() {
        // Insert in scrambled order through the incremental path and compare
        // with the sorted reference.
        let spec = AggregateSpec::new(AggregateKind::StdDev, 0, "s");
        let vals: Vec<(Timestamp, Value)> = [(7u64, 3.0), (1, 9.0), (4, 2.0), (2, 7.5)]
            .iter()
            .map(|&(t, v)| (Timestamp(t), Value::Float(v)))
            .collect();
        let mut agg = spec.build();
        for (t, v) in &vals {
            agg.insert(*t, v);
        }
        let (a, b) = (agg.finalize(), spec.compute(&vals));
        match (a, b) {
            (Value::Float(x), Value::Float(y)) => assert!((x - y).abs() < 1e-9),
            other => panic!("expected floats, got {other:?}"),
        }
    }

    #[test]
    fn empty_window_results() {
        assert_eq!(run(AggregateKind::Count, &[]), Value::Int(0));
        assert_eq!(run(AggregateKind::Sum, &[]), Value::Null);
        assert_eq!(run(AggregateKind::Median, &[]), Value::Null);
        assert_eq!(run(AggregateKind::Min, &[]), Value::Null);
        assert_eq!(run(AggregateKind::DistinctCount, &[]), Value::Int(0));
    }

    #[test]
    fn constant_space_classification() {
        assert!(AggregateKind::Sum.constant_space());
        assert!(!AggregateKind::Median.constant_space());
        assert!(!AggregateKind::DistinctCount.constant_space());
    }
}

#[cfg(test)]
mod pane_tests {
    use super::*;

    /// Split `(ts, row)` data into panes of width `slide`, fold each event
    /// into its home pane's partial, merge partials in ascending pane order,
    /// and compare with feeding the same data sequentially (in ts order)
    /// into the plain incremental aggregator.
    fn merged_vs_sequential(
        spec: &AggregateSpec,
        data: &[(u64, Row)],
        slide: u64,
    ) -> (Value, Value) {
        let mut panes: std::collections::BTreeMap<u64, PaneAgg> = Default::default();
        for (t, row) in data {
            let pane = panes
                .entry(t / slide * slide)
                .or_insert_with(|| spec.build_pane().expect("combinable kind"));
            pane.insert_row(Timestamp(*t), row.get(spec.field), row);
        }
        let mut merged: Option<PaneAgg> = None;
        for (_, p) in panes {
            match &mut merged {
                None => merged = Some(p),
                Some(m) => m.merge(&p),
            }
        }
        let merged = merged
            .unwrap_or_else(|| spec.build_pane().expect("combinable kind"))
            .finalize();

        let mut seq = spec.build();
        let mut ordered: Vec<&(u64, Row)> = data.iter().collect();
        ordered.sort_by_key(|(t, _)| *t);
        for (t, row) in ordered {
            seq.insert_row(Timestamp(*t), row.get(spec.field), row);
        }
        (merged, seq.finalize())
    }

    #[test]
    fn pane_merge_matches_sequential_for_every_combinable_kind() {
        let data: Vec<(u64, Row)> = [
            (1u64, 3.0, 7.0),
            (4, -2.5, 1.0),
            (7, 8.0, 4.0),
            (12, 0.5, 9.0),
            (15, 8.0, 9.0),
            (18, -2.5, 2.0),
            (22, 1.0, 0.5),
        ]
        .iter()
        .map(|&(t, v, by)| (t, Row::new([Value::Float(v), Value::Float(by)])))
        .collect();
        for kind in [
            AggregateKind::Count,
            AggregateKind::Sum,
            AggregateKind::Mean,
            AggregateKind::Min,
            AggregateKind::Max,
            AggregateKind::StdDev,
            AggregateKind::Variance,
            AggregateKind::First,
            AggregateKind::Last,
            AggregateKind::ArgMin(1),
            AggregateKind::ArgMax(1),
        ] {
            let spec = AggregateSpec::new(kind, 0, "a");
            let (merged, sequential) = merged_vs_sequential(&spec, &data, 10);
            match (merged, sequential) {
                (Value::Float(x), Value::Float(y)) => {
                    assert!((x - y).abs() < 1e-9, "{kind}: merged {x} != sequential {y}")
                }
                (x, y) => assert_eq!(x, y, "{kind}"),
            }
        }
    }

    #[test]
    fn moments_merge_handles_empty_sides() {
        let mut a = MomentsAgg::new(false);
        let mut b = MomentsAgg::new(false);
        for x in [1.0, 2.0, 3.0] {
            b.insert(Timestamp(0), &Value::Float(x));
        }
        a.merge(&b); // empty ⊕ populated copies
        let mut c = MomentsAgg::new(false);
        a.merge(&c); // populated ⊕ empty is a no-op
        c.merge(&MomentsAgg::new(false)); // empty ⊕ empty stays empty
        match a.finalize() {
            Value::Float(v) => assert!((v - 2.0 / 3.0).abs() < 1e-12),
            other => panic!("expected float, got {other:?}"),
        }
        assert_eq!(c.finalize(), Value::Null);
    }

    #[test]
    fn non_combinable_kinds_have_no_pane_state() {
        for kind in [
            AggregateKind::Median,
            AggregateKind::Quantile(0.9),
            AggregateKind::DistinctCount,
        ] {
            assert!(!kind.combinable());
            assert!(AggregateSpec::new(kind, 0, "a").build_pane().is_none());
        }
        assert!(AggregateKind::Sum.combinable());
    }

    #[test]
    fn quantile_state_stays_sorted_under_disordered_inserts() {
        let mut agg = QuantileAgg::new(0.5);
        for x in [5.0, -1.0, 3.0, 3.0, 100.0, 0.0, 3.0] {
            agg.insert(Timestamp(0), &Value::Float(x));
        }
        assert!(agg.sorted.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(agg.finalize(), Value::Float(3.0));
    }
}

#[cfg(test)]
mod arg_tests {
    use super::*;

    fn row(report: f64, by: f64) -> Row {
        Row::new([Value::Float(report), Value::Float(by)])
    }

    #[test]
    fn argmax_reports_companion_field() {
        // Report field 0 at the max of field 1.
        let spec = AggregateSpec::new(AggregateKind::ArgMax(1), 0, "at_peak");
        let rows = [
            (Timestamp(1), row(10.0, 5.0)),
            (Timestamp(2), row(20.0, 50.0)), // peak of `by`
            (Timestamp(3), row(30.0, 7.0)),
        ];
        let refs: Vec<(Timestamp, &Row)> = rows.iter().map(|(t, r)| (*t, r)).collect();
        assert_eq!(spec.compute_rows(&refs), Value::Float(20.0));
        let spec_min = AggregateSpec::new(AggregateKind::ArgMin(1), 0, "at_trough");
        assert_eq!(spec_min.compute_rows(&refs), Value::Float(10.0));
    }

    #[test]
    fn arg_ties_resolve_to_earliest_event_time() {
        let spec = AggregateSpec::new(AggregateKind::ArgMax(1), 0, "a");
        let rows = [
            (Timestamp(5), row(1.0, 9.0)),
            (Timestamp(2), row(2.0, 9.0)), // same `by`, earlier ts → wins
        ];
        let refs: Vec<(Timestamp, &Row)> = rows.iter().map(|(t, r)| (*t, r)).collect();
        assert_eq!(spec.compute_rows(&refs), Value::Float(2.0));
    }

    #[test]
    fn arg_skips_null_by_values_and_handles_empty() {
        let spec = AggregateSpec::new(AggregateKind::ArgMax(1), 0, "a");
        let rows = [(Timestamp(1), Row::new([Value::Float(1.0), Value::Null]))];
        let refs: Vec<(Timestamp, &Row)> = rows.iter().map(|(t, r)| (*t, r)).collect();
        assert_eq!(spec.compute_rows(&refs), Value::Null);
        assert_eq!(spec.compute_rows(&[]), Value::Null);
    }

    #[test]
    fn arg_aggregate_through_window_operator() {
        use crate::event::{Event, StreamElement};
        use crate::operator::{LatePolicy, Operator, WindowAggregateOp, WindowResult};
        use crate::window::WindowSpec;
        let mut op = WindowAggregateOp::new(
            WindowSpec::tumbling(10u64),
            // Price (field 0) at the volume (field 1) peak.
            vec![AggregateSpec::new(
                AggregateKind::ArgMax(1),
                0,
                "price_at_peak",
            )],
            None,
            LatePolicy::Drop,
        )
        .expect("valid op");
        let mut results = Vec::new();
        for (ts, price, volume) in [(1u64, 10.0, 1.0), (2, 99.0, 100.0), (3, 11.0, 2.0)] {
            op.process(
                StreamElement::Event(Event::new(ts, ts, row(price, volume))),
                &mut |_| {},
            );
        }
        op.process(StreamElement::Flush, &mut |o| {
            if let StreamElement::Event(e) = o {
                results.extend(WindowResult::from_row(&e.row));
            }
        });
        assert_eq!(results[0].aggregates[0], Value::Float(99.0));
    }

    #[test]
    fn arg_is_constant_space_and_displays_by_field() {
        assert!(AggregateKind::ArgMax(1).constant_space());
        assert!(format!("{}", AggregateKind::ArgMin(3)).contains('3'));
    }
}
