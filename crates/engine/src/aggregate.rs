//! Aggregate functions over window contents.
//!
//! An [`AggregateSpec`] names an aggregate and the field it reads;
//! [`AggregateSpec::build`] instantiates per-window incremental state (an
//! [`Aggregator`]). Every aggregate also has a *reference implementation*
//! ([`AggregateSpec::compute`]) that recomputes the result from the raw
//! window contents; the incremental and reference paths are checked against
//! each other by property tests, and the reference path is what the in-order
//! oracle uses to score result quality.
//!
//! Nulls and non-numeric values are skipped by numeric aggregates (SQL
//! semantics); `count` counts all non-null values.

use crate::error::{EngineError, Result};
use crate::time::Timestamp;
use crate::value::{Key, Row, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The aggregate function to apply to one field within each window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AggregateKind {
    /// Number of non-null values.
    Count,
    /// Sum of numeric values.
    Sum,
    /// Arithmetic mean of numeric values.
    Mean,
    /// Minimum (total order over values).
    Min,
    /// Maximum (total order over values).
    Max,
    /// Population standard deviation of numeric values.
    StdDev,
    /// Population variance of numeric values.
    Variance,
    /// Exact median of numeric values (midpoint for even counts).
    Median,
    /// Exact p-quantile of numeric values, `0.0 <= p <= 1.0`, nearest-rank
    /// with linear interpolation.
    Quantile(f64),
    /// Number of distinct non-null values.
    DistinctCount,
    /// Value with the smallest event-time timestamp (arrival ties broken by
    /// insertion order).
    First,
    /// Value with the largest event-time timestamp.
    Last,
    /// Value of this spec's field at the row where the *other* field
    /// (the payload of this variant) is minimal. Ties: first in event time.
    ArgMin(usize),
    /// Value of this spec's field at the row where the other field is
    /// maximal. Ties: first in event time.
    ArgMax(usize),
}

impl AggregateKind {
    /// Whether the incremental state size is O(1) (vs. O(window) for
    /// order-statistic and distinct aggregates).
    pub fn constant_space(&self) -> bool {
        matches!(
            self,
            AggregateKind::Count
                | AggregateKind::Sum
                | AggregateKind::Mean
                | AggregateKind::Min
                | AggregateKind::Max
                | AggregateKind::StdDev
                | AggregateKind::Variance
                | AggregateKind::First
                | AggregateKind::Last
                | AggregateKind::ArgMin(_)
                | AggregateKind::ArgMax(_)
        )
    }
}

impl fmt::Display for AggregateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggregateKind::Count => write!(f, "count"),
            AggregateKind::Sum => write!(f, "sum"),
            AggregateKind::Mean => write!(f, "mean"),
            AggregateKind::Min => write!(f, "min"),
            AggregateKind::Max => write!(f, "max"),
            AggregateKind::StdDev => write!(f, "stddev"),
            AggregateKind::Variance => write!(f, "variance"),
            AggregateKind::Median => write!(f, "median"),
            AggregateKind::Quantile(p) => write!(f, "q{p}"),
            AggregateKind::DistinctCount => write!(f, "distinct"),
            AggregateKind::First => write!(f, "first"),
            AggregateKind::Last => write!(f, "last"),
            AggregateKind::ArgMin(by) => write!(f, "argmin(by={by})"),
            AggregateKind::ArgMax(by) => write!(f, "argmax(by={by})"),
        }
    }
}

/// An aggregate bound to the row field it reads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateSpec {
    /// Which function.
    pub kind: AggregateKind,
    /// Index of the input field in the row.
    pub field: usize,
    /// Output column name in result rows.
    pub name: String,
}

impl AggregateSpec {
    /// Construct a spec.
    pub fn new(kind: AggregateKind, field: usize, name: impl Into<String>) -> AggregateSpec {
        AggregateSpec {
            kind,
            field,
            name: name.into(),
        }
    }

    /// Validate parameters (quantile range).
    pub fn validate(&self) -> Result<()> {
        if let AggregateKind::Quantile(p) = self.kind {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(EngineError::InvalidAggregate(format!(
                    "quantile p={p} outside [0,1]"
                )));
            }
        }
        Ok(())
    }

    /// Instantiate fresh incremental state.
    pub fn build(&self) -> Box<dyn Aggregator> {
        match self.kind {
            AggregateKind::Count => Box::new(CountAgg::default()),
            AggregateKind::Sum => Box::new(SumAgg::default()),
            AggregateKind::Mean => Box::new(MeanAgg::default()),
            AggregateKind::Min => Box::new(ExtremeAgg::new(false)),
            AggregateKind::Max => Box::new(ExtremeAgg::new(true)),
            AggregateKind::StdDev => Box::new(MomentsAgg::new(true)),
            AggregateKind::Variance => Box::new(MomentsAgg::new(false)),
            AggregateKind::Median => Box::new(QuantileAgg::new(0.5)),
            AggregateKind::Quantile(p) => Box::new(QuantileAgg::new(p)),
            AggregateKind::DistinctCount => Box::new(DistinctAgg::default()),
            AggregateKind::First => Box::new(EdgeAgg::new(false)),
            AggregateKind::Last => Box::new(EdgeAgg::new(true)),
            // Arg aggregates receive the full row via `insert_row` (see
            // `Aggregator::insert_row`); plain `insert` sees only the
            // reported field and cannot resolve the `by` field, so the
            // windowed operator feeds arg aggregates through `insert_row`.
            AggregateKind::ArgMin(by) => Box::new(ArgAgg::new(false, by)),
            AggregateKind::ArgMax(by) => Box::new(ArgAgg::new(true, by)),
        }
    }

    /// Reference implementation: compute the aggregate from the raw window
    /// contents in one pass. `values` is `(event timestamp, field value)` in
    /// any order. Arg-aggregates need the full rows — use
    /// [`AggregateSpec::compute_rows`] for them (this method returns `Null`
    /// for arg kinds since the `by` field is unavailable).
    pub fn compute(&self, values: &[(Timestamp, Value)]) -> Value {
        let mut agg = self.build();
        // The reference path must be insertion-order independent for every
        // aggregate except First/Last, which are defined by timestamp; feed
        // in timestamp order so ties resolve identically to sorted input.
        let mut sorted: Vec<&(Timestamp, Value)> = values.iter().collect();
        sorted.sort_by_key(|(ts, _)| *ts);
        for (ts, v) in sorted {
            agg.insert(*ts, v);
        }
        agg.finalize()
    }

    /// Full-row reference implementation: like [`AggregateSpec::compute`]
    /// but with access to whole rows, supporting arg-aggregates. Used by the
    /// in-order oracle.
    pub fn compute_rows(&self, rows: &[(Timestamp, &Row)]) -> Value {
        let mut agg = self.build();
        let mut sorted: Vec<&(Timestamp, &Row)> = rows.iter().collect();
        sorted.sort_by_key(|(ts, _)| *ts);
        for (ts, row) in sorted {
            agg.insert_row(*ts, row.get(self.field), row);
        }
        agg.finalize()
    }
}

/// Incremental per-window aggregate state.
pub trait Aggregator: Send {
    /// Fold one value (with its event timestamp) into the state.
    fn insert(&mut self, ts: Timestamp, v: &Value);
    /// Produce the current result. `Null` when no qualifying values arrived.
    fn finalize(&self) -> Value;
    /// Number of values folded in (for completeness accounting).
    fn count(&self) -> u64;
    /// Fold one value with access to its full row. Only arg-aggregates need
    /// the row; the default delegates to [`Aggregator::insert`]. Window
    /// operators call this method so arg-aggregates work transparently.
    fn insert_row(&mut self, ts: Timestamp, v: &Value, _row: &Row) {
        self.insert(ts, v);
    }
}

#[derive(Default)]
struct CountAgg {
    n: u64,
    seen: u64,
}

impl Aggregator for CountAgg {
    fn insert(&mut self, _ts: Timestamp, v: &Value) {
        self.seen += 1;
        if !v.is_null() {
            self.n += 1;
        }
    }
    fn finalize(&self) -> Value {
        Value::Int(self.n as i64)
    }
    fn count(&self) -> u64 {
        self.seen
    }
}

#[derive(Default)]
struct SumAgg {
    sum: f64,
    n: u64,
    seen: u64,
}

impl Aggregator for SumAgg {
    fn insert(&mut self, _ts: Timestamp, v: &Value) {
        self.seen += 1;
        if let Some(x) = v.as_f64() {
            self.sum += x;
            self.n += 1;
        }
    }
    fn finalize(&self) -> Value {
        if self.n == 0 {
            Value::Null
        } else {
            Value::Float(self.sum)
        }
    }
    fn count(&self) -> u64 {
        self.seen
    }
}

#[derive(Default)]
struct MeanAgg {
    sum: f64,
    n: u64,
    seen: u64,
}

impl Aggregator for MeanAgg {
    fn insert(&mut self, _ts: Timestamp, v: &Value) {
        self.seen += 1;
        if let Some(x) = v.as_f64() {
            self.sum += x;
            self.n += 1;
        }
    }
    fn finalize(&self) -> Value {
        if self.n == 0 {
            Value::Null
        } else {
            Value::Float(self.sum / self.n as f64)
        }
    }
    fn count(&self) -> u64 {
        self.seen
    }
}

/// Min/Max over the total value order.
struct ExtremeAgg {
    max: bool,
    best: Option<Value>,
    seen: u64,
}

impl ExtremeAgg {
    fn new(max: bool) -> Self {
        ExtremeAgg {
            max,
            best: None,
            seen: 0,
        }
    }
}

impl Aggregator for ExtremeAgg {
    fn insert(&mut self, _ts: Timestamp, v: &Value) {
        self.seen += 1;
        if v.is_null() {
            return;
        }
        let better = match &self.best {
            None => true,
            Some(b) => {
                let ord = v.total_cmp(b);
                if self.max {
                    ord == std::cmp::Ordering::Greater
                } else {
                    ord == std::cmp::Ordering::Less
                }
            }
        };
        if better {
            self.best = Some(v.clone());
        }
    }
    fn finalize(&self) -> Value {
        self.best.clone().unwrap_or(Value::Null)
    }
    fn count(&self) -> u64 {
        self.seen
    }
}

/// Welford-style running moments for variance / standard deviation
/// (population). Numerically stable under long windows.
struct MomentsAgg {
    stddev: bool,
    n: u64,
    mean: f64,
    m2: f64,
    seen: u64,
}

impl MomentsAgg {
    fn new(stddev: bool) -> Self {
        MomentsAgg {
            stddev,
            n: 0,
            mean: 0.0,
            m2: 0.0,
            seen: 0,
        }
    }
}

impl Aggregator for MomentsAgg {
    fn insert(&mut self, _ts: Timestamp, v: &Value) {
        self.seen += 1;
        if let Some(x) = v.as_f64() {
            self.n += 1;
            let d = x - self.mean;
            self.mean += d / self.n as f64;
            self.m2 += d * (x - self.mean);
        }
    }
    fn finalize(&self) -> Value {
        if self.n == 0 {
            return Value::Null;
        }
        let var = (self.m2 / self.n as f64).max(0.0);
        Value::Float(if self.stddev { var.sqrt() } else { var })
    }
    fn count(&self) -> u64 {
        self.seen
    }
}

/// Exact quantile via a retained sorted-on-demand buffer. O(window) space;
/// finalize sorts a scratch copy (windows are bounded, and finalize happens
/// once per window emission).
struct QuantileAgg {
    p: f64,
    values: Vec<f64>,
    seen: u64,
}

impl QuantileAgg {
    fn new(p: f64) -> Self {
        QuantileAgg {
            p: p.clamp(0.0, 1.0),
            values: Vec::new(),
            seen: 0,
        }
    }
}

/// p-quantile of a sorted slice with linear interpolation between ranks.
pub(crate) fn quantile_sorted(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let n = sorted.len();
    if n == 1 {
        return Some(sorted[0]);
    }
    let rank = p.clamp(0.0, 1.0) * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi.min(n - 1)] - sorted[lo]) * frac)
}

impl Aggregator for QuantileAgg {
    fn insert(&mut self, _ts: Timestamp, v: &Value) {
        self.seen += 1;
        if let Some(x) = v.as_f64() {
            self.values.push(x);
        }
    }
    fn finalize(&self) -> Value {
        let mut scratch = self.values.clone();
        scratch.sort_by(|a, b| a.total_cmp(b));
        match quantile_sorted(&scratch, self.p) {
            Some(q) => Value::Float(q),
            None => Value::Null,
        }
    }
    fn count(&self) -> u64 {
        self.seen
    }
}

#[derive(Default)]
struct DistinctAgg {
    set: BTreeSet<Key>,
    seen: u64,
}

impl Aggregator for DistinctAgg {
    fn insert(&mut self, _ts: Timestamp, v: &Value) {
        self.seen += 1;
        if !v.is_null() {
            self.set.insert(Key(v.clone()));
        }
    }
    fn finalize(&self) -> Value {
        Value::Int(self.set.len() as i64)
    }
    fn count(&self) -> u64 {
        self.seen
    }
}

/// First/Last by event timestamp. For equal timestamps, the earliest (resp.
/// latest) *insertion* wins, matching the reference implementation which
/// feeds values in (ts, insertion) order.
struct EdgeAgg {
    last: bool,
    best: Option<(Timestamp, Value)>,
    seen: u64,
}

impl EdgeAgg {
    fn new(last: bool) -> Self {
        EdgeAgg {
            last,
            best: None,
            seen: 0,
        }
    }
}

impl Aggregator for EdgeAgg {
    fn insert(&mut self, ts: Timestamp, v: &Value) {
        self.seen += 1;
        if v.is_null() {
            return;
        }
        let take = match &self.best {
            None => true,
            Some((bt, _)) => {
                if self.last {
                    ts >= *bt
                } else {
                    ts < *bt
                }
            }
        };
        if take {
            self.best = Some((ts, v.clone()));
        }
    }
    fn finalize(&self) -> Value {
        self.best
            .as_ref()
            .map(|(_, v)| v.clone())
            .unwrap_or(Value::Null)
    }
    fn count(&self) -> u64 {
        self.seen
    }
}

/// ArgMin/ArgMax: report one field's value at the extremum of another.
struct ArgAgg {
    max: bool,
    by: usize,
    best: Option<(Value, Timestamp, Value)>,
    seen: u64,
}

impl ArgAgg {
    fn new(max: bool, by: usize) -> ArgAgg {
        ArgAgg {
            max,
            by,
            best: None,
            seen: 0,
        }
    }
}

impl Aggregator for ArgAgg {
    fn insert(&mut self, _ts: Timestamp, _v: &Value) {
        // Row-less insertion cannot see the `by` field; count only. The
        // engine's window operators always use `insert_row`.
        self.seen += 1;
    }
    fn insert_row(&mut self, ts: Timestamp, v: &Value, row: &Row) {
        self.seen += 1;
        let by_val = row.get(self.by);
        if by_val.is_null() {
            return;
        }
        let better = match &self.best {
            None => true,
            Some((best_by, best_ts, _)) => {
                use std::cmp::Ordering::*;
                match by_val.total_cmp(best_by) {
                    Greater => self.max,
                    Less => !self.max,
                    // Ties: earliest event time wins.
                    Equal => ts < *best_ts,
                }
            }
        };
        if better {
            self.best = Some((by_val.clone(), ts, v.clone()));
        }
    }
    fn finalize(&self) -> Value {
        self.best
            .as_ref()
            .map(|(_, _, v)| v.clone())
            .unwrap_or(Value::Null)
    }
    fn count(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(kind: AggregateKind, vals: &[Value]) -> Value {
        let spec = AggregateSpec::new(kind, 0, "out");
        let tv: Vec<(Timestamp, Value)> = vals
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, v)| (Timestamp(i as u64), v))
            .collect();
        spec.compute(&tv)
    }

    fn floats(vs: &[f64]) -> Vec<Value> {
        vs.iter().map(|&v| Value::Float(v)).collect()
    }

    #[test]
    fn count_skips_nulls() {
        assert_eq!(
            run(
                AggregateKind::Count,
                &[Value::Int(1), Value::Null, Value::Int(2)]
            ),
            Value::Int(2)
        );
    }

    #[test]
    fn sum_and_mean() {
        assert_eq!(
            run(AggregateKind::Sum, &floats(&[1.0, 2.0, 3.0])),
            Value::Float(6.0)
        );
        assert_eq!(
            run(AggregateKind::Mean, &floats(&[1.0, 2.0, 3.0])),
            Value::Float(2.0)
        );
        assert_eq!(run(AggregateKind::Sum, &[Value::Null]), Value::Null);
    }

    #[test]
    fn sum_mixes_int_and_float() {
        assert_eq!(
            run(AggregateKind::Sum, &[Value::Int(1), Value::Float(2.5)]),
            Value::Float(3.5)
        );
    }

    #[test]
    fn min_max_over_total_order() {
        assert_eq!(
            run(AggregateKind::Min, &floats(&[3.0, 1.0, 2.0])),
            Value::Float(1.0)
        );
        assert_eq!(
            run(AggregateKind::Max, &floats(&[3.0, 1.0, 2.0])),
            Value::Float(3.0)
        );
        assert_eq!(
            run(AggregateKind::Max, &[Value::Int(2), Value::Float(2.5)]),
            Value::Float(2.5)
        );
    }

    #[test]
    fn variance_and_stddev_population() {
        // Var([2,4,4,4,5,5,7,9]) = 4, stddev = 2 (classic example).
        let vs = floats(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        match run(AggregateKind::Variance, &vs) {
            Value::Float(v) => assert!((v - 4.0).abs() < 1e-9),
            other => panic!("expected float, got {other:?}"),
        }
        match run(AggregateKind::StdDev, &vs) {
            Value::Float(v) => assert!((v - 2.0).abs() < 1e-9),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(
            run(AggregateKind::Median, &floats(&[5.0, 1.0, 3.0])),
            Value::Float(3.0)
        );
        assert_eq!(
            run(AggregateKind::Median, &floats(&[4.0, 1.0, 3.0, 2.0])),
            Value::Float(2.5)
        );
    }

    #[test]
    fn quantiles_interpolate() {
        let vs = floats(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(run(AggregateKind::Quantile(0.0), &vs), Value::Float(10.0));
        assert_eq!(run(AggregateKind::Quantile(1.0), &vs), Value::Float(40.0));
        match run(AggregateKind::Quantile(0.5), &vs) {
            Value::Float(v) => assert!((v - 25.0).abs() < 1e-9),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn quantile_validation() {
        assert!(AggregateSpec::new(AggregateKind::Quantile(1.5), 0, "q")
            .validate()
            .is_err());
        assert!(
            AggregateSpec::new(AggregateKind::Quantile(f64::NAN), 0, "q")
                .validate()
                .is_err()
        );
        assert!(AggregateSpec::new(AggregateKind::Quantile(0.99), 0, "q")
            .validate()
            .is_ok());
    }

    #[test]
    fn distinct_count() {
        assert_eq!(
            run(
                AggregateKind::DistinctCount,
                &[Value::Int(1), Value::Int(1), Value::Int(2), Value::Null]
            ),
            Value::Int(2)
        );
        // Int 1 and Float 1.0 coincide under the key order.
        assert_eq!(
            run(
                AggregateKind::DistinctCount,
                &[Value::Int(1), Value::Float(1.0)]
            ),
            Value::Int(1)
        );
    }

    #[test]
    fn first_last_by_timestamp_not_arrival() {
        let spec = AggregateSpec::new(AggregateKind::First, 0, "f");
        // Arrival order: ts=5 then ts=2 — first by event time is ts=2.
        let vals = vec![
            (Timestamp(5), Value::Int(50)),
            (Timestamp(2), Value::Int(20)),
        ];
        assert_eq!(spec.compute(&vals), Value::Int(20));
        let spec = AggregateSpec::new(AggregateKind::Last, 0, "l");
        assert_eq!(spec.compute(&vals), Value::Int(50));
    }

    #[test]
    fn incremental_matches_reference_for_order_independence() {
        // Insert in scrambled order through the incremental path and compare
        // with the sorted reference.
        let spec = AggregateSpec::new(AggregateKind::StdDev, 0, "s");
        let vals: Vec<(Timestamp, Value)> = [(7u64, 3.0), (1, 9.0), (4, 2.0), (2, 7.5)]
            .iter()
            .map(|&(t, v)| (Timestamp(t), Value::Float(v)))
            .collect();
        let mut agg = spec.build();
        for (t, v) in &vals {
            agg.insert(*t, v);
        }
        let (a, b) = (agg.finalize(), spec.compute(&vals));
        match (a, b) {
            (Value::Float(x), Value::Float(y)) => assert!((x - y).abs() < 1e-9),
            other => panic!("expected floats, got {other:?}"),
        }
    }

    #[test]
    fn empty_window_results() {
        assert_eq!(run(AggregateKind::Count, &[]), Value::Int(0));
        assert_eq!(run(AggregateKind::Sum, &[]), Value::Null);
        assert_eq!(run(AggregateKind::Median, &[]), Value::Null);
        assert_eq!(run(AggregateKind::Min, &[]), Value::Null);
        assert_eq!(run(AggregateKind::DistinctCount, &[]), Value::Int(0));
    }

    #[test]
    fn constant_space_classification() {
        assert!(AggregateKind::Sum.constant_space());
        assert!(!AggregateKind::Median.constant_space());
        assert!(!AggregateKind::DistinctCount.constant_space());
    }
}

#[cfg(test)]
mod arg_tests {
    use super::*;

    fn row(report: f64, by: f64) -> Row {
        Row::new([Value::Float(report), Value::Float(by)])
    }

    #[test]
    fn argmax_reports_companion_field() {
        // Report field 0 at the max of field 1.
        let spec = AggregateSpec::new(AggregateKind::ArgMax(1), 0, "at_peak");
        let rows = vec![
            (Timestamp(1), row(10.0, 5.0)),
            (Timestamp(2), row(20.0, 50.0)), // peak of `by`
            (Timestamp(3), row(30.0, 7.0)),
        ];
        let refs: Vec<(Timestamp, &Row)> = rows.iter().map(|(t, r)| (*t, r)).collect();
        assert_eq!(spec.compute_rows(&refs), Value::Float(20.0));
        let spec_min = AggregateSpec::new(AggregateKind::ArgMin(1), 0, "at_trough");
        assert_eq!(spec_min.compute_rows(&refs), Value::Float(10.0));
    }

    #[test]
    fn arg_ties_resolve_to_earliest_event_time() {
        let spec = AggregateSpec::new(AggregateKind::ArgMax(1), 0, "a");
        let rows = vec![
            (Timestamp(5), row(1.0, 9.0)),
            (Timestamp(2), row(2.0, 9.0)), // same `by`, earlier ts → wins
        ];
        let refs: Vec<(Timestamp, &Row)> = rows.iter().map(|(t, r)| (*t, r)).collect();
        assert_eq!(spec.compute_rows(&refs), Value::Float(2.0));
    }

    #[test]
    fn arg_skips_null_by_values_and_handles_empty() {
        let spec = AggregateSpec::new(AggregateKind::ArgMax(1), 0, "a");
        let rows = vec![(Timestamp(1), Row::new([Value::Float(1.0), Value::Null]))];
        let refs: Vec<(Timestamp, &Row)> = rows.iter().map(|(t, r)| (*t, r)).collect();
        assert_eq!(spec.compute_rows(&refs), Value::Null);
        assert_eq!(spec.compute_rows(&[]), Value::Null);
    }

    #[test]
    fn arg_aggregate_through_window_operator() {
        use crate::event::{Event, StreamElement};
        use crate::operator::{LatePolicy, Operator, WindowAggregateOp, WindowResult};
        use crate::window::WindowSpec;
        let mut op = WindowAggregateOp::new(
            WindowSpec::tumbling(10u64),
            // Price (field 0) at the volume (field 1) peak.
            vec![AggregateSpec::new(
                AggregateKind::ArgMax(1),
                0,
                "price_at_peak",
            )],
            None,
            LatePolicy::Drop,
        )
        .expect("valid op");
        let mut results = Vec::new();
        for (ts, price, volume) in [(1u64, 10.0, 1.0), (2, 99.0, 100.0), (3, 11.0, 2.0)] {
            op.process(
                StreamElement::Event(Event::new(ts, ts, row(price, volume))),
                &mut |_| {},
            );
        }
        op.process(StreamElement::Flush, &mut |o| {
            if let StreamElement::Event(e) = o {
                results.extend(WindowResult::from_row(&e.row));
            }
        });
        assert_eq!(results[0].aggregates[0], Value::Float(99.0));
    }

    #[test]
    fn arg_is_constant_space_and_displays_by_field() {
        assert!(AggregateKind::ArgMax(1).constant_space());
        assert!(format!("{}", AggregateKind::ArgMin(3)).contains('3'));
    }
}
