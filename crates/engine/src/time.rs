//! Event-time primitives.
//!
//! The engine is *event-time based*: every tuple carries a [`Timestamp`]
//! assigned at its source, and all window semantics are defined over these
//! timestamps, never over wall-clock arrival time. Disorder means that the
//! arrival order of tuples disagrees with their timestamp order; measuring
//! and bounding that disagreement is the job of the `quill-core` crate.
//!
//! Timestamps are unsigned integers in an abstract unit (conventionally
//! milliseconds). Using an integer keeps arithmetic exact and makes
//! watermark comparisons total.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in event time, in abstract time units (conventionally ms).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

/// A span of event time, in the same unit as [`Timestamp`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TimeDelta(pub u64);

impl Timestamp {
    /// The smallest representable timestamp.
    pub const MIN: Timestamp = Timestamp(0);
    /// The largest representable timestamp (used as the "stream closed"
    /// watermark).
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Construct from a raw value.
    #[inline]
    pub const fn new(t: u64) -> Self {
        Timestamp(t)
    }

    /// The raw value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Saturating subtraction producing a delta: `self - earlier`, or zero if
    /// `earlier` is in the future relative to `self`.
    #[inline]
    pub fn delta_since(self, earlier: Timestamp) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(earlier.0))
    }

    /// Saturating subtraction of a delta (floors at `Timestamp::MIN`).
    #[inline]
    pub fn saturating_sub(self, d: TimeDelta) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0))
    }

    /// Saturating addition of a delta (caps at `Timestamp::MAX`).
    #[inline]
    pub fn saturating_add(self, d: TimeDelta) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }
}

impl TimeDelta {
    /// Zero-length span.
    pub const ZERO: TimeDelta = TimeDelta(0);
    /// Largest representable span.
    pub const MAX: TimeDelta = TimeDelta(u64::MAX);

    /// Construct from a raw value.
    #[inline]
    pub const fn new(d: u64) -> Self {
        TimeDelta(d)
    }

    /// The raw value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The span as a float, for statistics.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Construct from a float, rounding to the nearest unit and clamping to
    /// the representable range. Negative inputs clamp to zero.
    #[inline]
    pub fn from_f64(v: f64) -> Self {
        if !v.is_finite() {
            return if v > 0.0 {
                TimeDelta::MAX
            } else {
                TimeDelta::ZERO
            };
        }
        TimeDelta(v.max(0.0).round().min(u64::MAX as f64) as u64)
    }

    /// Saturating multiplication by an integer factor.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> TimeDelta {
        TimeDelta(self.0.saturating_mul(k))
    }
}

impl Add<TimeDelta> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, rhs: TimeDelta) -> Timestamp {
        Timestamp(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<TimeDelta> for Timestamp {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        *self = *self + rhs;
    }
}

impl Sub<TimeDelta> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn sub(self, rhs: TimeDelta) -> Timestamp {
        Timestamp(self.0.saturating_sub(rhs.0))
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for TimeDelta {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        *self = *self + rhs;
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for TimeDelta {
    #[inline]
    fn sub_assign(&mut self, rhs: TimeDelta) {
        *self = *self - rhs;
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(v: u64) -> Self {
        Timestamp(v)
    }
}

impl From<u64> for TimeDelta {
    fn from(v: u64) -> Self {
        TimeDelta(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic_saturates() {
        assert_eq!(Timestamp(5) - TimeDelta(10), Timestamp(0));
        assert_eq!(Timestamp::MAX + TimeDelta(1), Timestamp::MAX);
        assert_eq!(Timestamp(10) + TimeDelta(5), Timestamp(15));
    }

    #[test]
    fn delta_since_is_directional() {
        assert_eq!(Timestamp(10).delta_since(Timestamp(3)), TimeDelta(7));
        assert_eq!(Timestamp(3).delta_since(Timestamp(10)), TimeDelta(0));
    }

    #[test]
    fn delta_float_roundtrip() {
        assert_eq!(TimeDelta::from_f64(3.4), TimeDelta(3));
        assert_eq!(TimeDelta::from_f64(3.6), TimeDelta(4));
        assert_eq!(TimeDelta::from_f64(-1.0), TimeDelta::ZERO);
        assert_eq!(TimeDelta::from_f64(f64::INFINITY), TimeDelta::MAX);
        assert_eq!(TimeDelta::from_f64(f64::NAN), TimeDelta::ZERO);
        assert_eq!(TimeDelta(42).as_f64(), 42.0);
    }

    #[test]
    fn delta_arithmetic() {
        assert_eq!(TimeDelta(3) + TimeDelta(4), TimeDelta(7));
        assert_eq!(TimeDelta(3) - TimeDelta(4), TimeDelta(0));
        assert_eq!(TimeDelta(3).saturating_mul(4), TimeDelta(12));
        assert_eq!(TimeDelta::MAX.saturating_mul(2), TimeDelta::MAX);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![Timestamp(3), Timestamp(1), Timestamp(2)];
        v.sort();
        assert_eq!(v, vec![Timestamp(1), Timestamp(2), Timestamp(3)]);
    }
}
