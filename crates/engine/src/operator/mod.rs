//! Push-based operators.
//!
//! An [`Operator`] consumes one [`StreamElement`] at a time in arrival order
//! and pushes zero or more output elements. Operators must preserve the
//! watermark contract: after forwarding `Watermark(t)` they must never emit
//! an event with `ts < t`.

pub mod count_op;
pub mod join;
pub mod session;
pub mod shard_stage;
pub mod union;
pub mod window_op;

use crate::event::StreamElement;

pub use count_op::CountWindowOp;
pub use join::IntervalJoin;
pub use session::{SessionOpStats, SessionWindowOp};
pub use shard_stage::ShardStage;
pub use union::merge_by_arrival;
pub use window_op::{LatePolicy, WindowAggregateOp, WindowOpStats, WindowResult};

/// A push-based stream operator.
pub trait Operator: Send {
    /// Human-readable operator name (used in pipeline descriptions).
    fn name(&self) -> &str;

    /// Process one element, pushing outputs through `out` (possibly none,
    /// possibly many). `Flush` must be forwarded after any final outputs.
    fn process(&mut self, el: StreamElement, out: &mut dyn FnMut(StreamElement));
}

impl Operator for Box<dyn Operator> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn process(&mut self, el: StreamElement, out: &mut dyn FnMut(StreamElement)) {
        (**self).process(el, out)
    }
}

/// Stateless 1:1 transformation of event rows. Watermarks and flush pass
/// through untouched.
pub struct MapOp<F> {
    name: String,
    f: F,
}

impl<F> MapOp<F>
where
    F: FnMut(crate::value::Row) -> crate::value::Row + Send,
{
    /// Build a map operator from a row transformation.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        MapOp {
            name: name.into(),
            f,
        }
    }
}

impl<F> Operator for MapOp<F>
where
    F: FnMut(crate::value::Row) -> crate::value::Row + Send,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, el: StreamElement, out: &mut dyn FnMut(StreamElement)) {
        match el {
            StreamElement::Event(mut e) => {
                e.row = (self.f)(e.row);
                out(StreamElement::Event(e));
            }
            other => out(other),
        }
    }
}

/// Stateless filter over event rows; punctuation passes through.
pub struct FilterOp<F> {
    name: String,
    pred: F,
}

impl<F> FilterOp<F>
where
    F: FnMut(&crate::value::Row) -> bool + Send,
{
    /// Build a filter operator from a predicate.
    pub fn new(name: impl Into<String>, pred: F) -> Self {
        FilterOp {
            name: name.into(),
            pred,
        }
    }
}

impl<F> Operator for FilterOp<F>
where
    F: FnMut(&crate::value::Row) -> bool + Send,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, el: StreamElement, out: &mut dyn FnMut(StreamElement)) {
        match el {
            StreamElement::Event(e) => {
                if (self.pred)(&e.row) {
                    out(StreamElement::Event(e));
                }
            }
            other => out(other),
        }
    }
}

/// Column projection: keeps the listed column indices, in the listed order.
pub struct ProjectOp {
    name: String,
    indices: Vec<usize>,
}

impl ProjectOp {
    /// Build a projection onto the given column indices.
    pub fn new(indices: impl Into<Vec<usize>>) -> Self {
        ProjectOp {
            name: "project".into(),
            indices: indices.into(),
        }
    }
}

impl Operator for ProjectOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, el: StreamElement, out: &mut dyn FnMut(StreamElement)) {
        match el {
            StreamElement::Event(mut e) => {
                e.row = e.row.project(&self.indices);
                out(StreamElement::Event(e));
            }
            other => out(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::time::Timestamp;
    use crate::value::{Row, Value};

    fn drive(op: &mut dyn Operator, input: Vec<StreamElement>) -> Vec<StreamElement> {
        let mut outs = Vec::new();
        for el in input {
            op.process(el, &mut |o| outs.push(o));
        }
        outs
    }

    fn ev(ts: u64, v: i64) -> StreamElement {
        StreamElement::Event(Event::new(ts, ts, Row::new([Value::Int(v)])))
    }

    #[test]
    fn map_transforms_rows_and_passes_punctuation() {
        let mut op = MapOp::new("double", |r: Row| {
            let v = r.get(0).as_i64().unwrap_or(0);
            Row::new([Value::Int(v * 2)])
        });
        let outs = drive(
            &mut op,
            vec![
                ev(1, 10),
                StreamElement::Watermark(Timestamp(5)),
                StreamElement::Flush,
            ],
        );
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[0].as_event().unwrap().row.get(0), &Value::Int(20));
        assert_eq!(outs[1], StreamElement::Watermark(Timestamp(5)));
        assert!(outs[2].is_flush());
    }

    #[test]
    fn filter_drops_events_only() {
        let mut op = FilterOp::new("pos", |r: &Row| r.get(0).as_i64().unwrap_or(0) > 0);
        let outs = drive(
            &mut op,
            vec![ev(1, -1), ev(2, 3), StreamElement::Watermark(Timestamp(9))],
        );
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].as_event().unwrap().row.get(0), &Value::Int(3));
        assert_eq!(outs[1], StreamElement::Watermark(Timestamp(9)));
    }

    #[test]
    fn project_reorders_columns() {
        let mut op = ProjectOp::new(vec![1, 0]);
        let mut outs = Vec::new();
        op.process(
            StreamElement::Event(Event::new(1, 1, Row::new([Value::Int(1), Value::str("a")]))),
            &mut |o| outs.push(o),
        );
        assert_eq!(
            outs[0].as_event().unwrap().row,
            Row::new([Value::str("a"), Value::Int(1)])
        );
    }
}
