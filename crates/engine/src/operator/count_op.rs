//! Count-based tumbling windows.
//!
//! Emits one result per `n` consecutive events (per key) in *release order*
//! — count windows are defined over the ordered stream a disorder-control
//! strategy produces, which is what makes them meaningful under disorder:
//! the buffer upstream decides which order is "the" order. The reported
//! window extent is `[first_ts, last_ts + 1)` of the batch.

use crate::aggregate::{AggregateSpec, Aggregator};
use crate::error::{EngineError, Result};
use crate::event::{Event, StreamElement};
use crate::fiba::{FibaTree, WindowState};
use crate::operator::window_op::WindowResult;
use crate::operator::Operator;
use crate::time::Timestamp;
use crate::value::{Key, Row, Value};
use crate::window::Window;
use std::collections::HashMap;

/// Per-key open batch.
///
/// Legacy layout folds each event into `aggs` eagerly, in release order.
/// The [`WindowState::Fiba`] layout instead time-indexes the batch rows in a
/// finger B-tree and folds at emission in `(ts, release)` order — the order
/// every time-based operator uses. The two layouts emit identical results
/// except for float accumulation order on out-of-order batches (covered by
/// the non-associativity tolerance rule, see DESIGN.md §17).
struct Batch {
    aggs: Vec<Box<dyn Aggregator>>,
    /// [`WindowState::Fiba`] only: raw rows in release order (bounded by the
    /// window size `n`).
    rows: Vec<(Timestamp, Row)>,
    /// [`WindowState::Fiba`] only: finger B-tree over `(ts, release index)`.
    index: Option<FibaTree<()>>,
    first_ts: Timestamp,
    last_ts: Timestamp,
    count: u64,
}

/// Tumbling count windows (global or keyed).
pub struct CountWindowOp {
    name: String,
    n: u64,
    aggs: Vec<AggregateSpec>,
    key_field: Option<usize>,
    state: HashMap<Key, Batch>,
    mode: WindowState,
    out_seq: u64,
    emitted: u64,
}

impl CountWindowOp {
    /// Build the operator; `n` must be positive.
    pub fn new(
        n: u64,
        aggs: Vec<AggregateSpec>,
        key_field: Option<usize>,
    ) -> Result<CountWindowOp> {
        if n == 0 {
            return Err(EngineError::InvalidWindow(
                "count window size must be > 0".into(),
            ));
        }
        if aggs.is_empty() {
            return Err(EngineError::InvalidAggregate(
                "count windows require at least one aggregate".into(),
            ));
        }
        for a in &aggs {
            a.validate()?;
        }
        Ok(CountWindowOp {
            name: format!("count-window({n})"),
            n,
            aggs,
            key_field,
            state: HashMap::new(),
            mode: WindowState::Legacy,
            out_seq: 0,
            emitted: 0,
        })
    }

    /// Select the batch layout: [`WindowState::Fiba`] time-indexes batch
    /// rows in a finger B-tree and folds at emission in `(ts, release)`
    /// order; [`WindowState::Legacy`] folds eagerly in release order — a
    /// narrow semantic difference that only order-sensitive aggregates
    /// (first/last on ties) can observe. Call before processing any
    /// elements.
    pub fn with_window_state(mut self, mode: WindowState) -> Self {
        self.mode = mode;
        self
    }

    /// The batch layout in effect.
    pub fn window_state(&self) -> WindowState {
        self.mode
    }

    /// Windows emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    fn key_of(&self, e: &Event) -> Key {
        match self.key_field {
            Some(i) => Key(e.row.get(i).clone()),
            None => Key(Value::Null),
        }
    }

    fn emit(&mut self, key: &Key, batch: Batch, out: &mut dyn FnMut(StreamElement)) {
        let window = Window::new(
            batch.first_ts,
            Timestamp(batch.last_ts.raw().saturating_add(1)),
        );
        let aggregates: Vec<Value> = match &batch.index {
            // FiBA layout: fold the batch in `(ts, release)` order via the
            // time index (emitting a count window bulk-drops the whole tree
            // with the batch).
            Some(ix) => {
                let mut built: Vec<Box<dyn Aggregator>> =
                    self.aggs.iter().map(|a| a.build()).collect();
                ix.for_each(&mut |k, _| {
                    if let Some((t, row)) = batch.rows.get(k.1 as usize) {
                        for (agg, spec) in built.iter_mut().zip(&self.aggs) {
                            agg.insert_row(*t, row.get(spec.field), row);
                        }
                    }
                });
                built.iter().map(|a| a.finalize()).collect()
            }
            None => batch.aggs.iter().map(|a| a.finalize()).collect(),
        };
        let r = WindowResult {
            key: key.0.clone(),
            window,
            count: batch.count,
            revision: 0,
            aggregates,
        };
        self.out_seq += 1;
        self.emitted += 1;
        out(StreamElement::Event(Event::new(
            window.end,
            self.out_seq,
            r.to_row(),
        )));
    }
}

impl Operator for CountWindowOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, el: StreamElement, out: &mut dyn FnMut(StreamElement)) {
        match el {
            StreamElement::Event(e) => {
                let key = self.key_of(&e);
                let specs = &self.aggs;
                let mode = self.mode;
                let batch = self.state.entry(key.clone()).or_insert_with(|| Batch {
                    aggs: match mode {
                        WindowState::Legacy => specs.iter().map(|a| a.build()).collect(),
                        WindowState::Fiba => Vec::new(),
                    },
                    rows: Vec::new(),
                    index: match mode {
                        WindowState::Fiba => Some(FibaTree::new()),
                        WindowState::Legacy => None,
                    },
                    first_ts: e.ts,
                    last_ts: e.ts,
                    count: 0,
                });
                if batch.count == 0 {
                    batch.first_ts = e.ts;
                    batch.last_ts = e.ts;
                }
                match &mut batch.index {
                    Some(ix) => {
                        ix.insert((e.ts.raw(), batch.rows.len() as u64), ());
                        batch.rows.push((e.ts, e.row.clone()));
                    }
                    None => {
                        for (agg, spec) in batch.aggs.iter_mut().zip(specs) {
                            agg.insert_row(e.ts, e.row.get(spec.field), &e.row);
                        }
                    }
                }
                batch.first_ts = batch.first_ts.min(e.ts);
                batch.last_ts = batch.last_ts.max(e.ts);
                batch.count += 1;
                if batch.count >= self.n {
                    // quill-lint: allow(no-panic, reason = "the entry was inserted or updated for this key a few lines above")
                    let full = self.state.remove(&key).expect("batch present");
                    self.emit(&key, full, out);
                }
            }
            StreamElement::Watermark(wm) => out(StreamElement::Watermark(wm)),
            StreamElement::Flush => {
                // Emit remaining partial batches deterministically (by key).
                let mut keys: Vec<Key> = self.state.keys().cloned().collect();
                keys.sort();
                for key in keys {
                    if let Some(batch) = self.state.remove(&key) {
                        if batch.count > 0 {
                            self.emit(&key, batch, out);
                        }
                    }
                }
                out(StreamElement::Flush);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateKind;
    use crate::value::Row;

    fn ev(ts: u64, seq: u64, v: f64) -> StreamElement {
        StreamElement::Event(Event::new(ts, seq, Row::new([Value::Float(v)])))
    }

    fn run(op: &mut CountWindowOp, input: Vec<StreamElement>) -> Vec<WindowResult> {
        let mut results = Vec::new();
        for el in input {
            op.process(el, &mut |o| {
                if let StreamElement::Event(e) = o {
                    if let Some(r) = WindowResult::from_row(&e.row) {
                        results.push(r);
                    }
                }
            });
        }
        results
    }

    #[test]
    fn emits_every_n_events() {
        let mut op = CountWindowOp::new(
            3,
            vec![AggregateSpec::new(AggregateKind::Sum, 0, "sum")],
            None,
        )
        .unwrap();
        let results = run(
            &mut op,
            vec![
                ev(1, 0, 1.0),
                ev(2, 1, 2.0),
                ev(3, 2, 3.0),
                ev(4, 3, 4.0),
                StreamElement::Flush,
            ],
        );
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].count, 3);
        assert_eq!(results[0].aggregates[0], Value::Float(6.0));
        assert_eq!(results[0].window, Window::new(Timestamp(1), Timestamp(4)));
        // Partial remainder at flush.
        assert_eq!(results[1].count, 1);
        assert_eq!(results[1].aggregates[0], Value::Float(4.0));
    }

    #[test]
    fn keyed_batches_fill_independently() {
        let mut op = CountWindowOp::new(
            2,
            vec![AggregateSpec::new(AggregateKind::Count, 1, "n")],
            Some(0),
        )
        .unwrap();
        let mk = |ts: u64, seq: u64, k: i64| {
            StreamElement::Event(Event::new(
                ts,
                seq,
                Row::new([Value::Int(k), Value::Float(0.0)]),
            ))
        };
        let results = run(
            &mut op,
            vec![mk(1, 0, 1), mk(2, 1, 2), mk(3, 2, 1), StreamElement::Flush],
        );
        // Key 1 fills a window of 2; key 2 flushes a partial of 1.
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].key, Value::Int(1));
        assert_eq!(results[0].count, 2);
        assert_eq!(results[1].key, Value::Int(2));
        assert_eq!(results[1].count, 1);
    }

    #[test]
    fn window_extent_covers_batch_timestamps() {
        let mut op = CountWindowOp::new(
            2,
            vec![AggregateSpec::new(AggregateKind::Max, 0, "max")],
            None,
        )
        .unwrap();
        // Out-of-order pair: extent is [min, max+1).
        let results = run(&mut op, vec![ev(10, 0, 1.0), ev(4, 1, 2.0)]);
        assert_eq!(results[0].window, Window::new(Timestamp(4), Timestamp(11)));
    }

    #[test]
    fn watermarks_pass_through() {
        let mut op = CountWindowOp::new(
            5,
            vec![AggregateSpec::new(AggregateKind::Count, 0, "n")],
            None,
        )
        .unwrap();
        let mut outs = Vec::new();
        op.process(StreamElement::Watermark(Timestamp(7)), &mut |o| {
            outs.push(o)
        });
        assert_eq!(outs, vec![StreamElement::Watermark(Timestamp(7))]);
    }

    #[test]
    fn fiba_batches_match_legacy_on_scrambled_streams() {
        // Mixed aggregate set incl. order statistics and an arg-aggregate;
        // distinct timestamps and integer-valued floats make the `(ts,
        // release)`-ordered FiBA fold bit-identical to the release-ordered
        // legacy fold.
        let mk = || {
            CountWindowOp::new(
                7,
                vec![
                    AggregateSpec::new(AggregateKind::Count, 1, "n"),
                    AggregateSpec::new(AggregateKind::Sum, 1, "s"),
                    AggregateSpec::new(AggregateKind::Median, 1, "med"),
                    AggregateSpec::new(AggregateKind::First, 1, "f"),
                    AggregateSpec::new(AggregateKind::ArgMax(1), 0, "am"),
                ],
                Some(0),
            )
            .unwrap()
        };
        let mut input = Vec::new();
        for i in 0..200u64 {
            // Scramble: reverse time inside blocks of 4 → every batch sees
            // out-of-order rows.
            let ts = (i / 4) * 40 + (3 - i % 4) * 10 + i % 4;
            input.push(StreamElement::Event(Event::new(
                ts,
                i,
                Row::new([Value::Int((i % 3) as i64), Value::Float((i % 13) as f64)]),
            )));
        }
        input.push(StreamElement::Flush);
        let mut fiba = mk().with_window_state(WindowState::Fiba);
        let mut legacy = mk();
        assert_eq!(fiba.window_state(), WindowState::Fiba);
        let rf = run(&mut fiba, input.clone());
        let rl = run(&mut legacy, input);
        assert_eq!(rf, rl);
        assert_eq!(fiba.emitted(), legacy.emitted());
    }

    #[test]
    fn rejects_degenerate_config() {
        assert!(CountWindowOp::new(
            0,
            vec![AggregateSpec::new(AggregateKind::Count, 0, "n")],
            None
        )
        .is_err());
        assert!(CountWindowOp::new(3, vec![], None).is_err());
    }
}
