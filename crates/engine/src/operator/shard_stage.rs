//! Shard-local staging: re-applies timestamp order for one shard's keys.
//!
//! Under shard-local window finalization the disorder-control strategy runs
//! in *control-only* mode: it forwards events unordered (arrival order) and
//! interleaves the exact watermark sequence full staging would emit. After
//! keyed routing, each shard wraps its window operator in a [`ShardStage`]
//! that holds the shard's events and releases them in `(ts, seq)` order when
//! a watermark passes them — reconstructing, per shard, precisely the
//! subsequence a single global ordering buffer would have delivered:
//!
//! * an event behind the stage's watermark is a *late pass* (the controller
//!   already classified it late) and is forwarded immediately, unordered;
//! * `Watermark(w)` first drains every held event with `ts <= w` in order,
//!   then forwards the watermark itself;
//! * `Flush` drains everything, then forwards.
//!
//! Because the routed stream delivers, before every shard event, exactly the
//! watermarks that preceded it globally, the inner operator observes the
//! same input it would under global staging restricted to this shard's keys
//! — which makes shard-local finalization element-identical to the
//! sequential path.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::event::{Event, StreamElement};
use crate::operator::Operator;
use crate::time::Timestamp;
use quill_telemetry::{SpanRecorder, Stage};

/// Heap entry ordered by `(ts, seq)` only — `seq` is unique per stream, so
/// the order is total and the payload never participates in comparisons.
struct Staged(Event);

impl PartialEq for Staged {
    fn eq(&self, other: &Staged) -> bool {
        (self.0.ts, self.0.seq) == (other.0.ts, other.0.seq)
    }
}
impl Eq for Staged {}
impl PartialOrd for Staged {
    fn partial_cmp(&self, other: &Staged) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Staged {
    fn cmp(&self, other: &Staged) -> std::cmp::Ordering {
        (self.0.ts, self.0.seq).cmp(&(other.0.ts, other.0.seq))
    }
}

/// Per-shard ordering stage wrapped around an inner operator.
pub struct ShardStage<O> {
    name: String,
    inner: O,
    buf: BinaryHeap<Reverse<Staged>>,
    watermark: Timestamp,
    spans: SpanRecorder,
    shard: u32,
}

impl<O: Operator> ShardStage<O> {
    /// Wrap `inner` with a fresh (empty, watermark = MIN) staging buffer.
    pub fn new(inner: O) -> ShardStage<O> {
        ShardStage {
            name: format!("shard-stage({})", inner.name()),
            inner,
            buf: BinaryHeap::new(),
            watermark: Timestamp::MIN,
            spans: SpanRecorder::disabled(),
            shard: 0,
        }
    }

    /// Attach a span recorder: each draining watermark that releases at
    /// least one staged event records a [`Stage::ShardStage`] span from the
    /// first released event's timestamp to the releasing watermark — the
    /// event-time extent this shard re-ordered in one drain.
    pub fn attach_spans(&mut self, spans: &SpanRecorder, shard: u32) {
        self.spans = spans.clone();
        self.shard = shard;
    }

    /// The wrapped operator.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// The wrapped operator, mutably.
    pub fn inner_mut(&mut self) -> &mut O {
        &mut self.inner
    }

    /// Unwrap, discarding the (normally empty after `Flush`) staging state.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// Events currently held awaiting a watermark.
    pub fn staged_len(&self) -> usize {
        self.buf.len()
    }

    /// Release every held event with `ts <= wm`, in `(ts, seq)` order, into
    /// the inner operator. A watermark that releases nothing costs one peek.
    fn drain_to(&mut self, wm: Timestamp, out: &mut dyn FnMut(StreamElement)) {
        let mut first: Option<u64> = None;
        let mut last = 0u64;
        while let Some(Reverse(top)) = self.buf.peek() {
            if top.0.ts > wm {
                break;
            }
            let Some(Reverse(Staged(e))) = self.buf.pop() else {
                break;
            };
            if self.spans.is_enabled() {
                first.get_or_insert(e.ts.raw());
                last = e.ts.raw();
            }
            self.inner.process(StreamElement::Event(e), out);
        }
        if let Some(begin) = first {
            // One span per releasing drain: begin = first released event's
            // timestamp, end = the releasing watermark (for Flush, which
            // carries no timestamp, the last released event's own ts).
            let end = if wm == Timestamp::MAX { last } else { wm.raw() };
            self.spans.record(Stage::ShardStage, begin, end, self.shard);
        }
    }
}

impl<O: Operator> Operator for ShardStage<O> {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, el: StreamElement, out: &mut dyn FnMut(StreamElement)) {
        match el {
            StreamElement::Event(e) => {
                if e.ts < self.watermark {
                    // Late pass: the controller already emitted a watermark
                    // past this timestamp, so order cannot be restored —
                    // forward immediately, exactly as global staging does.
                    self.inner.process(StreamElement::Event(e), out);
                } else {
                    self.buf.push(Reverse(Staged(e)));
                }
            }
            StreamElement::Watermark(w) => {
                self.drain_to(w, out);
                self.watermark = self.watermark.max(w);
                self.inner.process(StreamElement::Watermark(w), out);
            }
            StreamElement::Flush => {
                self.drain_to(Timestamp::MAX, out);
                self.watermark = Timestamp::MAX;
                self.inner.process(StreamElement::Flush, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Row, Value};

    /// Records every element the inner operator sees.
    struct RecordOp {
        seen: Vec<StreamElement>,
    }

    impl Operator for RecordOp {
        fn name(&self) -> &str {
            "record"
        }
        fn process(&mut self, el: StreamElement, _out: &mut dyn FnMut(StreamElement)) {
            self.seen.push(el);
        }
    }

    fn ev(ts: u64, seq: u64) -> StreamElement {
        StreamElement::Event(Event::new(ts, seq, Row::new([Value::Int(ts as i64)])))
    }

    fn drive(input: Vec<StreamElement>) -> Vec<StreamElement> {
        let mut stage = ShardStage::new(RecordOp { seen: Vec::new() });
        let mut sink = |_| {};
        for el in input {
            stage.process(el, &mut sink);
        }
        stage.into_inner().seen
    }

    #[test]
    fn releases_in_timestamp_seq_order_at_watermarks() {
        let seen = drive(vec![
            ev(30, 0),
            ev(10, 1),
            ev(20, 2),
            StreamElement::Watermark(Timestamp(20)),
            ev(40, 3),
            StreamElement::Flush,
        ]);
        let order: Vec<u64> = seen
            .iter()
            .filter_map(|e| e.as_event())
            .map(|e| e.ts.raw())
            .collect();
        assert_eq!(order, vec![10, 20, 30, 40]);
        // Watermark arrives after the events it released; Flush is last.
        assert_eq!(seen[2], StreamElement::Watermark(Timestamp(20)));
        assert!(seen.last().unwrap().is_flush());
    }

    #[test]
    fn boundary_timestamp_is_released_inclusively() {
        let seen = drive(vec![
            ev(20, 0),
            ev(20, 1),
            StreamElement::Watermark(Timestamp(20)),
            StreamElement::Flush,
        ]);
        let seqs: Vec<u64> = seen
            .iter()
            .filter_map(|e| e.as_event())
            .map(|e| e.seq)
            .collect();
        assert_eq!(
            seqs,
            vec![0, 1],
            "ts == watermark must be released, in seq order"
        );
    }

    #[test]
    fn late_pass_is_forwarded_immediately_unordered() {
        let seen = drive(vec![
            ev(30, 0),
            StreamElement::Watermark(Timestamp(25)),
            ev(10, 1), // behind watermark 25: late pass
            ev(28, 2), // not late: staged until the next watermark
            StreamElement::Flush,
        ]);
        let seqs: Vec<u64> = seen
            .iter()
            .filter_map(|e| e.as_event())
            .map(|e| e.seq)
            .collect();
        // Late seq=1 jumps ahead; the staged events drain at flush in
        // (ts, seq) order: 28 before 30.
        assert_eq!(seqs, vec![1, 2, 0]);
    }

    #[test]
    fn releasing_drains_record_shard_stage_spans() {
        let spans = SpanRecorder::new(64);
        let mut stage = ShardStage::new(RecordOp { seen: Vec::new() });
        stage.attach_spans(&spans, 3);
        let mut sink = |_| {};
        stage.process(ev(30, 0), &mut sink);
        stage.process(ev(10, 1), &mut sink);
        // Releases ts 10: span [10, 20] on shard 3.
        stage.process(StreamElement::Watermark(Timestamp(20)), &mut sink);
        // Releases nothing: no span.
        stage.process(StreamElement::Watermark(Timestamp(25)), &mut sink);
        // Flush releases ts 30; end falls back to the released ts.
        stage.process(StreamElement::Flush, &mut sink);
        let recorded = spans.spans();
        assert_eq!(recorded.len(), 2);
        assert!(recorded
            .iter()
            .all(|s| s.stage == Stage::ShardStage && s.shard == 3));
        assert_eq!((recorded[0].begin, recorded[0].end), (10, 20));
        assert_eq!((recorded[1].begin, recorded[1].end), (30, 30));
    }

    #[test]
    fn watermarks_never_regress_the_stage() {
        let seen = drive(vec![
            ev(30, 0),
            StreamElement::Watermark(Timestamp(25)),
            StreamElement::Watermark(Timestamp(10)), // stale: must not re-admit
            ev(12, 1),                               // still late vs 25
            StreamElement::Flush,
        ]);
        let seqs: Vec<u64> = seen
            .iter()
            .filter_map(|e| e.as_event())
            .map(|e| e.seq)
            .collect();
        assert_eq!(seqs, vec![1, 0]);
    }
}
