//! Keyed windowed aggregation with event-time semantics.
//!
//! [`WindowAggregateOp`] routes each event into every window instance its
//! timestamp belongs to (optionally per grouping key), folds it into the
//! incremental aggregate state, and emits one result row per (key, window)
//! when the watermark passes the window's end. Events arriving *after* their
//! window was already finalized are handled according to [`LatePolicy`]:
//! counted and dropped, or emitted as revised ("update") results.
//!
//! This operator is the consumer side of the quality/latency trade-off: the
//! disorder-control strategies in `quill-core` decide how long to hold
//! events (and therefore where watermarks sit); this operator turns those
//! watermarks into results whose completeness the metrics crate scores.
//!
//! ## Execution paths
//!
//! Three state layouts are available:
//!
//! * **Per-window** (the general path): every `(key, window)` instance holds
//!   its own aggregate state; an event is folded into each of the
//!   `ceil(length/slide)` windows containing its timestamp.
//! * **Shared-pane** (stream slicing): when the window is sliding with
//!   `slide < length`, `slide | length`, the late policy is `Drop` and every
//!   aggregate is [combinable](crate::aggregate::AggregateKind::combinable),
//!   each event is folded *once* into its home pane (`[k·slide,
//!   (k+1)·slide)`), and window results are assembled by merging pane
//!   partials with a two-stacks FIFO suffix cache — amortized O(1) pane
//!   merges per emission. Sliding Sum/Variance therefore no longer recompute
//!   from raw window contents on emit; [`WindowOpStats::agg_inserts`]
//!   instruments the difference.
//! * **FiBA** ([`crate::fiba`], selected via
//!   [`WindowAggregateOp::with_window_state`] with
//!   [`WindowState::Fiba`](crate::fiba::WindowState)): per key, one finger
//!   B-tree over `(ts, seq)` keys holds a combinable partial per event;
//!   window finalize is a range query over cached subtree combines, and the
//!   slide bulk-evicts everything no later window can cover. Order-statistic
//!   aggregates (Median/Quantile) keep a value-indexed FiBA per open window
//!   whose subtree counts answer rank queries in `O(log n)` — replacing the
//!   legacy sorted-`Vec`'s `O(n)` shift per out-of-order insert. Applies to
//!   tumbling and sliding (aligned or not) under the `Drop` policy; `Revise`
//!   falls back to the per-window path.

use crate::aggregate::{AggregateKind, AggregateSpec, Aggregator, PaneAgg};
use crate::error::Result;
use crate::event::{Event, StreamElement};
use crate::fiba::{f64_to_ordered, ordered_to_f64, FibaItem, FibaTree, WindowState};
use crate::operator::Operator;
use crate::time::Timestamp;
use crate::value::{Key, Row, Value};
use crate::window::{Window, WindowSpec};
use quill_telemetry::trace::{FlightRecorder, TraceKind};
use quill_telemetry::{SpanRecorder, Stage};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// What to do with an event whose window has already been finalized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LatePolicy {
    /// Count the event in [`WindowOpStats::late_dropped`] and discard it.
    Drop,
    /// Re-open the window, fold the event in, and emit a *revision* row
    /// (flagged via the `revision` column of [`WindowResult`]). State for
    /// revised windows is retained until `allowed_lateness` past the window
    /// end, then discarded.
    Revise {
        /// How long past the window end (in time units) revisions are
        /// accepted before state is dropped for good.
        allowed_lateness: u64,
    },
}

/// Counters the operator maintains; read them after a run to account for
/// every input event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowOpStats {
    /// Events folded into at least one open window.
    pub accepted: u64,
    /// Events that arrived after their last window was finalized and were
    /// dropped (under [`LatePolicy::Drop`], or past allowed lateness).
    pub late_dropped: u64,
    /// Revision results emitted (under [`LatePolicy::Revise`]).
    pub revisions: u64,
    /// Window results emitted (first emissions, not revisions).
    pub windows_emitted: u64,
    /// Aggregate-state folds performed: one per open window instance the
    /// event lands in on the per-window path, exactly one per accepted event
    /// on the shared-pane path, and on the FiBA path one per accepted event
    /// plus one per open window instance receiving order-statistic values.
    /// The ratio to `accepted` shows whether sliding windows share state
    /// (`1`) or recompute per instance (`≈ length/slide`).
    pub agg_inserts: u64,
}

/// Parsed view of a result row emitted by [`WindowAggregateOp`].
///
/// Result row layout: `[key, start, end, count, revision, agg...]`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowResult {
    /// Grouping key (`Null` for global aggregation).
    pub key: Value,
    /// The window.
    pub window: Window,
    /// Number of events folded into this result.
    pub count: u64,
    /// 0 for a first emission, `n` for the n-th revision.
    pub revision: u64,
    /// One output per [`AggregateSpec`], in spec order.
    pub aggregates: Vec<Value>,
}

impl WindowResult {
    /// Number of leading metadata columns before the aggregate outputs.
    pub const META_COLS: usize = 5;

    /// Serialize to the operator's row layout.
    pub fn to_row(&self) -> Row {
        let mut vals = Vec::with_capacity(Self::META_COLS + self.aggregates.len());
        vals.push(self.key.clone());
        vals.push(Value::Int(self.window.start.raw() as i64));
        vals.push(Value::Int(self.window.end.raw() as i64));
        vals.push(Value::Int(self.count as i64));
        vals.push(Value::Int(self.revision as i64));
        vals.extend(self.aggregates.iter().cloned());
        vals.into_iter().collect()
    }

    /// Parse from the operator's row layout. Returns `None` if the row is
    /// too short to be a window result.
    pub fn from_row(row: &Row) -> Option<WindowResult> {
        if row.len() < Self::META_COLS {
            return None;
        }
        // Window bounds are stored as i64 bit-casts of the u64 timestamps
        // (`to_row` uses `as i64`); `as u64` restores them losslessly even
        // for values beyond i64::MAX.
        let start = row.get(1).as_i64()? as u64;
        let end = row.get(2).as_i64()? as u64;
        Some(WindowResult {
            key: row.get(0).clone(),
            window: Window::new(Timestamp(start), Timestamp(end)),
            count: row.get(3).as_i64()?.max(0) as u64,
            revision: row.get(4).as_i64()?.max(0) as u64,
            aggregates: row.values()[Self::META_COLS..].to_vec(),
        })
    }
}

/// Per-(key, window) incremental state (the general per-window path; not to
/// be confused with the [`WindowState`] backend selector from [`crate::fiba`]).
struct PerWindowState {
    aggs: Vec<Box<dyn Aggregator>>,
    count: u64,
    /// How many times this window has been emitted (0 = not yet).
    emissions: u64,
}

/// Ordered state key: emission order is by window end, then start, then key,
/// which makes output deterministic.
type StateKey = (Timestamp, Timestamp, Key);

/// One pane's mergeable partials plus its event count.
struct Pane {
    partials: Vec<PaneAgg>,
    rows: u64,
}

/// A combined partial: per-spec pane aggregates plus total event count.
type Combined = (Vec<PaneAgg>, u64);

/// Two-stacks FIFO combine cache over one key's pane sequence.
///
/// Between emissions, `front ∪ back` (front older, oldest on top of the
/// stack) holds exactly the panes of the last emitted window. Emitting the
/// next window pushes the newly covered pane onto the back (extending the
/// running `back_agg`), evicts the expired pane from the front — flipping
/// the back into suffix-combined front entries when the front runs dry —
/// and answers with `front.top ⊕ back_agg`. Each pane is merged O(1) times
/// amortized, so an emission costs O(aggs) instead of O(length/slide).
struct FifoRun {
    /// Window end this run can advance to; anything else forces a rebuild.
    next_end: u64,
    /// Value of [`KeyPanes::mods`] when the caches were built; any insert
    /// into the key's panes bumps `mods` and invalidates the run.
    epoch: u64,
    /// Newest pane first, so the oldest pane is `last()` (stack top). Each
    /// entry caches the combine of that pane with every newer front pane.
    front: Vec<(u64, Combined)>,
    /// Pane starts in the back, oldest first — dense (empty panes included)
    /// so eviction stays positionally aligned with window starts.
    back: Vec<u64>,
    /// Running combine of the back panes.
    back_agg: Option<Combined>,
}

/// Pane state for one grouping key.
#[derive(Default)]
struct KeyPanes {
    /// Pane start → partials. Panes are GC'd once every window covering
    /// them has been emitted.
    panes: BTreeMap<u64, Pane>,
    /// Insert epoch; see [`FifoRun::epoch`].
    mods: u64,
    run: Option<FifoRun>,
}

/// Shared-pane (stream slicing) state; present only when the window shape,
/// aggregates and late policy allow it.
struct PanedState {
    length: u64,
    slide: u64,
    /// Fresh (empty) partials, cloned per new pane.
    template: Vec<PaneAgg>,
    keys: BTreeMap<Key, KeyPanes>,
    /// Registered-but-unemitted `(window end, key)` pairs; drained in order
    /// as the watermark advances, which reproduces the per-window path's
    /// `(end, start, key)` emission order (equal ends share a start).
    pending: BTreeSet<(Timestamp, Key)>,
}

/// One event's combinable partials, stored as the item of the per-key time
/// tree. Combining in `(ts, seq)` key order reproduces the per-window path's
/// insertion-order fold exactly (the shard stages deliver equal-timestamp
/// events in `seq` order), so Edge/Arg tie rules agree between backends.
#[derive(Clone)]
struct EventSlice(Vec<PaneAgg>);

impl FibaItem for EventSlice {
    fn combine(&mut self, later: &Self) {
        for (a, b) in self.0.iter_mut().zip(&later.0) {
            a.merge(b);
        }
    }
}

/// Per-open-window state for aggregates whose partials cannot be combined.
enum OrderStat {
    /// Value-indexed finger B-tree: keys are `(total-order f64 bits, uniq)`,
    /// so subtree counts answer `select(k)` in O(log n) and an out-of-order
    /// value insert costs O(log n) instead of the legacy sorted-`Vec`'s
    /// O(n) shift. Non-numeric values are skipped, like `QuantileAgg`.
    Rank { p: f64, tree: FibaTree<()> },
    /// Distinct non-null keys; identical semantics to `DistinctAgg`.
    Distinct(BTreeSet<Key>),
}

/// FiBA state for one grouping key.
struct FibaKeyState {
    /// Finger B-tree over `(ts, seq)` holding one [`EventSlice`] per
    /// accepted event; window finalize is `range_agg` over `[start, end)`.
    time: FibaTree<EventSlice>,
    /// Per still-open `(end, start)` window: one [`OrderStat`] per
    /// non-combinable spec, in spec order. Empty when every spec is
    /// combinable.
    windows: BTreeMap<(Timestamp, Timestamp), Vec<OrderStat>>,
    /// Disambiguator for equal value bits in [`OrderStat::Rank`] trees.
    uniq: u64,
}

/// FiBA-backed window state; present when selected via
/// [`WindowAggregateOp::with_window_state`] and the late policy is `Drop`.
struct FibaState {
    length: u64,
    slide: u64,
    /// Fresh combinable partials, one per combinable spec (tree item shape).
    template: Vec<PaneAgg>,
    /// Per spec: `Some(index into template)` for combinable kinds, `None`
    /// for order-statistic/distinct kinds (served from [`OrderStat`]s).
    slots: Vec<Option<usize>>,
    keys: BTreeMap<Key, FibaKeyState>,
    /// Registered-but-unemitted `(end, start, key)` windows, drained in the
    /// per-window path's emission order as the watermark advances.
    pending: BTreeSet<(Timestamp, Timestamp, Key)>,
}

/// Fresh [`OrderStat`] states for every non-combinable spec, in spec order.
fn build_order_stats(aggs: &[AggregateSpec]) -> Vec<OrderStat> {
    aggs.iter()
        .filter_map(|a| match a.kind {
            AggregateKind::Median => Some(OrderStat::Rank {
                p: 0.5,
                tree: FibaTree::new(),
            }),
            AggregateKind::Quantile(p) => Some(OrderStat::Rank {
                p: p.clamp(0.0, 1.0),
                tree: FibaTree::new(),
            }),
            AggregateKind::DistinctCount => Some(OrderStat::Distinct(BTreeSet::new())),
            _ => None,
        })
        .collect()
}

/// Finalize a rank tree exactly as `aggregate::quantile_sorted` would
/// finalize the equivalent sorted slice: same clamp, same index arithmetic,
/// same interpolation expression — bit-identical output by construction.
fn rank_quantile(tree: &FibaTree<()>, p: f64) -> Value {
    let n = tree.len();
    if n == 0 {
        return Value::Null;
    }
    let value_at = |k: u64| -> f64 {
        match tree.select(k) {
            Some((bits, _)) => ordered_to_f64(bits),
            None => f64::NAN, // unreachable: k < n by construction
        }
    };
    if n == 1 {
        return Value::Float(value_at(0));
    }
    let rank = p.clamp(0.0, 1.0) * (n - 1) as f64;
    let lo = rank.floor() as u64;
    let hi = (rank.ceil() as u64).min(n - 1);
    let frac = rank - lo as f64;
    let (x_lo, x_hi) = (value_at(lo), value_at(hi));
    Value::Float(x_lo + (x_hi - x_lo) * frac)
}

/// Keyed sliding/tumbling window aggregation operator.
pub struct WindowAggregateOp {
    name: String,
    spec: WindowSpec,
    aggs: Vec<AggregateSpec>,
    key_field: Option<usize>,
    late_policy: LatePolicy,
    state: BTreeMap<StateKey, PerWindowState>,
    paned: Option<PanedState>,
    fiba: Option<FibaState>,
    watermark: Timestamp,
    out_seq: u64,
    stats: WindowOpStats,
    trace: FlightRecorder,
    spans: SpanRecorder,
    shard: u32,
}

impl WindowAggregateOp {
    /// Build the operator.
    ///
    /// * `spec` — window shape (validated).
    /// * `aggs` — aggregate functions (validated); at least one required.
    /// * `key_field` — optional row index to group by; `None` aggregates
    ///   globally.
    ///
    /// # Errors
    /// Propagates invalid window or aggregate parameters.
    pub fn new(
        spec: WindowSpec,
        aggs: Vec<AggregateSpec>,
        key_field: Option<usize>,
        late_policy: LatePolicy,
    ) -> Result<Self> {
        spec.validate()?;
        for a in &aggs {
            a.validate()?;
        }
        if aggs.is_empty() {
            return Err(crate::error::EngineError::InvalidAggregate(
                "window aggregation requires at least one aggregate".into(),
            ));
        }
        let paned = Self::pane_state(&spec, &aggs, late_policy);
        Ok(WindowAggregateOp {
            name: format!("window-agg({spec})"),
            spec,
            aggs,
            key_field,
            late_policy,
            state: BTreeMap::new(),
            paned,
            fiba: None,
            watermark: Timestamp::MIN,
            out_seq: 0,
            stats: WindowOpStats::default(),
            trace: FlightRecorder::disabled(),
            spans: SpanRecorder::disabled(),
            shard: 0,
        })
    }

    /// Attach a flight recorder; subsequent window finalizations and late
    /// drops are recorded as [`TraceKind::WindowFinalize`] /
    /// [`TraceKind::LateDrop`] events tagged with `shard` (0 for sequential
    /// execution). Disabled recorders cost one branch per hook.
    pub fn attach_trace(&mut self, trace: &FlightRecorder, shard: u32) {
        self.trace = trace.clone();
        self.shard = shard;
    }

    /// Attach a span recorder; each window finalization records a
    /// [`Stage::WindowFinalize`] span from the window's end to the watermark
    /// that closed it — the event-time lag between a window becoming
    /// complete and the operator proving it complete. Disabled recorders
    /// cost one branch per finalization.
    pub fn attach_spans(&mut self, spans: &SpanRecorder, shard: u32) {
        self.spans = spans.clone();
        self.shard = shard;
    }

    /// Shared-pane state when eligible: overlapping sliding windows whose
    /// slide divides the length, `Drop` lateness, and only combinable
    /// aggregates. Everything else uses per-window state.
    fn pane_state(
        spec: &WindowSpec,
        aggs: &[AggregateSpec],
        late_policy: LatePolicy,
    ) -> Option<PanedState> {
        let (length, slide) = match *spec {
            WindowSpec::Sliding { length, slide } => (length.raw(), slide.raw()),
            WindowSpec::Tumbling { .. } => return None,
        };
        if slide == 0 || slide >= length || length % slide != 0 {
            return None;
        }
        if late_policy != LatePolicy::Drop {
            return None;
        }
        let template: Option<Vec<PaneAgg>> = aggs.iter().map(|a| a.build_pane()).collect();
        Some(PanedState {
            length,
            slide,
            template: template?,
            keys: BTreeMap::new(),
            pending: BTreeSet::new(),
        })
    }

    /// Whether this operator runs on the shared-pane path (see module docs).
    pub fn shares_panes(&self) -> bool {
        self.paned.is_some()
    }

    /// Select the window state backend. [`WindowState::Fiba`] routes events
    /// through per-key finger B-tree aggregators ([`crate::fiba`]) when the
    /// late policy is `Drop` (under `Revise`, revisions need retained
    /// per-window state, so the per-window path is kept);
    /// [`WindowState::Legacy`] restores the per-window / shared-pane layout.
    ///
    /// The operator-level default is `Legacy` so the operator behaves
    /// exactly as before in isolation; `quill-core`'s `ExecOptions` defaults
    /// every execution to `Fiba`. Call before processing any elements —
    /// switching discards accumulated state.
    pub fn with_window_state(mut self, mode: WindowState) -> Self {
        self.fiba = match mode {
            WindowState::Fiba => Self::fiba_state(&self.spec, &self.aggs, self.late_policy),
            WindowState::Legacy => None,
        };
        self.paned = if self.fiba.is_some() {
            None
        } else {
            Self::pane_state(&self.spec, &self.aggs, self.late_policy)
        };
        self
    }

    /// The backend actually in effect (`Fiba` only when eligible — see
    /// [`Self::with_window_state`]).
    pub fn window_state(&self) -> WindowState {
        if self.fiba.is_some() {
            WindowState::Fiba
        } else {
            WindowState::Legacy
        }
    }

    /// FiBA state when eligible: any tumbling or sliding shape under the
    /// `Drop` policy, every aggregate kind (non-combinable kinds get
    /// per-window [`OrderStat`] trees instead of tree partials).
    fn fiba_state(
        spec: &WindowSpec,
        aggs: &[AggregateSpec],
        late_policy: LatePolicy,
    ) -> Option<FibaState> {
        if late_policy != LatePolicy::Drop {
            return None;
        }
        let (length, slide) = match *spec {
            WindowSpec::Sliding { length, slide } => (length.raw(), slide.raw()),
            WindowSpec::Tumbling { length } => (length.raw(), length.raw()),
        };
        if slide == 0 || length == 0 {
            return None;
        }
        let mut template = Vec::new();
        let mut slots = Vec::with_capacity(aggs.len());
        for a in aggs {
            match a.build_pane() {
                Some(p) => {
                    slots.push(Some(template.len()));
                    template.push(p);
                }
                None => slots.push(None),
            }
        }
        Some(FibaState {
            length,
            slide,
            template,
            slots,
            keys: BTreeMap::new(),
            pending: BTreeSet::new(),
        })
    }

    /// Force the execution path: `false` pins the per-window layout even
    /// when pane sharing would apply (for differential testing and
    /// benchmarking); `true` re-enables it where eligible. Call before
    /// processing any elements — switching discards accumulated pane state.
    pub fn with_shared_panes(mut self, enabled: bool) -> Self {
        self.paned = if enabled {
            Self::pane_state(&self.spec, &self.aggs, self.late_policy)
        } else {
            None
        };
        self
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> WindowOpStats {
        self.stats
    }

    /// Number of (key, window) states currently held (registered pending
    /// windows on the shared-pane and FiBA paths).
    pub fn open_windows(&self) -> usize {
        if let Some(fs) = &self.fiba {
            return fs.pending.len();
        }
        match &self.paned {
            Some(ps) => ps.pending.len(),
            None => self.state.len(),
        }
    }

    fn key_of(&self, row: &Row) -> Key {
        match self.key_field {
            Some(i) => Key(row.get(i).clone()),
            None => Key(Value::Null),
        }
    }

    fn fold_event(&mut self, e: &Event) {
        let key = self.key_of(&e.row);
        let windows = self.spec.assign(e.ts);
        let mut accepted = false;
        let mut late = false;
        // Windows this event can no longer contribute to (trace only).
        let mut missed: Vec<(u64, u64)> = Vec::new();
        let tracing = self.trace.is_enabled();
        for w in windows {
            // A window is "closed" once the watermark passed its end.
            let closed = w.end <= self.watermark;
            match (closed, self.late_policy) {
                (true, LatePolicy::Drop) => {
                    late = true;
                    if tracing {
                        missed.push((w.start.raw(), w.end.raw()));
                    }
                    continue;
                }
                (true, LatePolicy::Revise { allowed_lateness }) => {
                    if self.watermark > w.end + crate::time::TimeDelta(allowed_lateness) {
                        late = true;
                        if tracing {
                            missed.push((w.start.raw(), w.end.raw()));
                        }
                        continue;
                    }
                }
                (false, _) => {}
            }
            // quill-lint: allow(hot-path-alloc, reason = "BTreeMap state needs an owned key per assigned window; a key is one small Value")
            let state_key: StateKey = (w.end, w.start, key.clone());
            let st = self
                .state
                .entry(state_key)
                .or_insert_with(|| PerWindowState {
                    aggs: self.aggs.iter().map(|a| a.build()).collect(),
                    count: 0,
                    emissions: 0,
                });
            for (agg, spec) in st.aggs.iter_mut().zip(&self.aggs) {
                agg.insert_row(e.ts, e.row.get(spec.field), &e.row);
            }
            st.count += 1;
            self.stats.agg_inserts += 1;
            accepted = true;
        }
        if accepted {
            self.stats.accepted += 1;
        } else if late {
            self.stats.late_dropped += 1;
        } else {
            // No window contained the event (cannot happen for valid specs,
            // but account for it rather than losing events silently).
            self.stats.late_dropped += 1;
        }
        if !missed.is_empty() {
            self.trace.record(
                e.ts.raw(),
                self.shard,
                TraceKind::LateDrop {
                    event_seq: e.seq,
                    windows: missed,
                },
            );
        }
    }

    /// Shared-pane ingest: one aggregate fold into the event's home pane,
    /// plus (for a freshly created pane) registering the pane's still-open
    /// windows as pending emissions.
    fn fold_event_paned(&mut self, e: &Event) {
        let key = self.key_of(&e.row);
        let wm = self.watermark.raw();
        // quill-lint: allow(no-panic, reason = "fold_event_paned is only reached via the paned dispatch, which requires paned.is_some()")
        let ps = self.paned.as_mut().expect("paned path");
        let t = e.ts.raw();
        let p = t / ps.slide * ps.slide;
        // The last window containing `t` ends at `p + length`; if the
        // watermark passed it, every containing window is closed.
        if p.saturating_add(ps.length) <= wm {
            self.stats.late_dropped += 1;
            if self.trace.is_enabled() {
                let missed: Vec<(u64, u64)> = self
                    .spec
                    .assign(e.ts)
                    .into_iter()
                    .map(|w| (w.start.raw(), w.end.raw()))
                    .collect();
                self.trace.record(
                    e.ts.raw(),
                    self.shard,
                    TraceKind::LateDrop {
                        event_seq: e.seq,
                        windows: missed,
                    },
                );
            }
            return;
        }
        let kp = ps.keys.entry(key.clone()).or_default();
        kp.mods += 1;
        let new_pane = !kp.panes.contains_key(&p);
        let pane = kp.panes.entry(p).or_insert_with(|| Pane {
            partials: ps.template.clone(),
            rows: 0,
        });
        for (agg, spec) in pane.partials.iter_mut().zip(&self.aggs) {
            agg.insert_row(e.ts, e.row.get(spec.field), &e.row);
        }
        pane.rows += 1;
        self.stats.agg_inserts += 1;
        self.stats.accepted += 1;
        if new_pane {
            // Register ends {p+slide, …, p+length} that are real windows
            // (end ≥ length, i.e. start ≥ 0) and still open. Already-emitted
            // ends stay final (Drop policy), so idempotent registration per
            // pane creation suffices.
            let mut end = p.saturating_add(ps.length);
            let first = p + ps.slide;
            while end >= first && end >= ps.length && end > wm {
                // quill-lint: allow(hot-path-alloc, reason = "runs once per created pane, not per event")
                ps.pending.insert((Timestamp(end), key.clone()));
                match end.checked_sub(ps.slide) {
                    Some(prev) => end = prev,
                    None => break,
                }
            }
        }
    }

    /// FiBA ingest: one `(ts, seq)` insert into the key's time tree carrying
    /// the event's combinable partials, plus registering the event's
    /// still-open windows as pending and folding order-statistic values into
    /// those windows' rank trees / distinct sets.
    fn fold_event_fiba(&mut self, e: &Event) {
        let key = self.key_of(&e.row);
        let wm = self.watermark.raw();
        // quill-lint: allow(no-panic, reason = "fold_event_fiba is only reached via the fiba dispatch, which requires fiba.is_some()")
        let fs = self.fiba.as_mut().expect("fiba path");
        let t = e.ts.raw();
        let home = t / fs.slide * fs.slide;
        // The last window containing `t` ends at `home + length`; if the
        // watermark passed it, every containing window is closed.
        if home.saturating_add(fs.length) <= wm {
            self.stats.late_dropped += 1;
            if self.trace.is_enabled() {
                let missed: Vec<(u64, u64)> = self
                    .spec
                    .assign(e.ts)
                    .into_iter()
                    .map(|w| (w.start.raw(), w.end.raw()))
                    .collect();
                self.trace.record(
                    e.ts.raw(),
                    self.shard,
                    TraceKind::LateDrop {
                        event_seq: e.seq,
                        windows: missed,
                    },
                );
            }
            return;
        }
        // Build the event's slice of combinable partials and insert it once,
        // keyed `(ts, seq)`: an in-order arrival lands at the right finger in
        // O(1) amortized, a straggler in O(log n) — never an O(n) shift.
        // quill-lint: allow(hot-path-alloc, reason = "per-event slice of combinable partials: a handful of enum words cloned once per accepted event, the FiBA analogue of the paned path's per-pane template clone")
        let mut partials = fs.template.clone();
        for (slot, spec) in fs.slots.iter().zip(&self.aggs) {
            if let Some(j) = *slot {
                partials[j].insert_row(e.ts, e.row.get(spec.field), &e.row);
            }
        }
        let ks = fs.keys.entry(key.clone()).or_insert_with(|| FibaKeyState {
            time: FibaTree::new(),
            windows: BTreeMap::new(),
            uniq: 0,
        });
        ks.time.insert((t, e.seq), EventSlice(partials));
        self.stats.agg_inserts += 1;
        self.stats.accepted += 1;
        let has_order = fs.slots.iter().any(|s| s.is_none());
        for w in self.spec.assign(e.ts) {
            if w.end.raw() <= wm {
                continue; // closed; Drop policy — already emitted, stays final
            }
            // quill-lint: allow(hot-path-alloc, reason = "BTreeSet registration needs an owned key per assigned window; a key is one small Value")
            fs.pending.insert((w.end, w.start, key.clone()));
            if !has_order {
                continue;
            }
            self.stats.agg_inserts += 1;
            let states = ks
                .windows
                .entry((w.end, w.start))
                .or_insert_with(|| build_order_stats(&self.aggs));
            let mut oi = 0;
            for (slot, spec) in fs.slots.iter().zip(&self.aggs) {
                if slot.is_some() {
                    continue;
                }
                match states.get_mut(oi) {
                    Some(OrderStat::Rank { tree, .. }) => {
                        if let Some(x) = e.row.get(spec.field).as_f64() {
                            let u = ks.uniq;
                            ks.uniq += 1;
                            // `uniq` grows in insertion order, so equal value
                            // bits keep insert-after-equals order — exactly
                            // the array QuantileAgg's sorted insert produces.
                            tree.insert((f64_to_ordered(x), u), ());
                        }
                    }
                    Some(OrderStat::Distinct(set)) => {
                        let v = e.row.get(spec.field);
                        if !v.is_null() {
                            // quill-lint: allow(hot-path-alloc, reason = "distinct-count semantics require an owned copy of each new value")
                            set.insert(Key(v.clone()));
                        }
                    }
                    None => {}
                }
                oi += 1;
            }
        }
    }

    /// Emit revisions for closed-but-retained windows that just received a
    /// late event (Revise policy only).
    fn emit_revisions(&mut self, e: &Event, out: &mut dyn FnMut(StreamElement)) {
        if !matches!(self.late_policy, LatePolicy::Revise { .. }) {
            return;
        }
        let key = self.key_of(&e.row);
        for w in self.spec.assign(e.ts) {
            if w.end > self.watermark {
                continue; // still open; normal emission will cover it
            }
            // quill-lint: allow(hot-path-alloc, reason = "revision path: one copy per revised window on a late event")
            let state_key: StateKey = (w.end, w.start, key.clone());
            // Split borrows: compute the row, then bump counters.
            let (row, ts) = match self.state.get_mut(&state_key) {
                Some(st) if st.emissions > 0 => {
                    st.emissions += 1;
                    let res = WindowResult {
                        // quill-lint: allow(hot-path-alloc, reason = "one key copy per emitted revision row")
                        key: key.0.clone(),
                        window: w,
                        count: st.count,
                        revision: st.emissions - 1,
                        aggregates: st.aggs.iter().map(|a| a.finalize()).collect(),
                    };
                    (res.to_row(), w.end)
                }
                _ => continue,
            };
            self.stats.revisions += 1;
            self.out_seq += 1;
            out(StreamElement::Event(Event::new(ts, self.out_seq, row)));
        }
    }

    fn advance_watermark(&mut self, wm: Timestamp, out: &mut dyn FnMut(StreamElement)) {
        if wm <= self.watermark {
            // Watermarks never regress; equal watermarks are idempotent.
            return;
        }
        self.watermark = wm;
        if self.fiba.is_some() {
            self.drain_pending_fiba(wm, out);
            out(StreamElement::Watermark(wm));
            return;
        }
        if self.paned.is_some() {
            self.drain_pending_paned(wm, out);
            out(StreamElement::Watermark(wm));
            return;
        }
        // Emit every not-yet-emitted window with end <= wm, in (end, start,
        // key) order. Under Drop policy the state is removed; under Revise it
        // is retained until allowed lateness expires.
        let ends: Vec<StateKey> = self
            .state
            .range(..(wm, Timestamp::MAX, Key(Value::Null)))
            .map(|(k, _)| k.clone())
            .collect();
        for sk in ends {
            let (end, start, ref key) = sk;
            if end > wm {
                continue;
            }
            let retain = match self.late_policy {
                LatePolicy::Drop => false,
                LatePolicy::Revise { allowed_lateness } => {
                    wm <= end + crate::time::TimeDelta(allowed_lateness)
                }
            };
            let emit_row = {
                let st = match self.state.get_mut(&sk) {
                    Some(st) => st,
                    None => continue,
                };
                if st.emissions > 0 {
                    None // already emitted (a revision window awaiting GC)
                } else {
                    st.emissions = 1;
                    let row = WindowResult {
                        // quill-lint: allow(hot-path-alloc, reason = "one key copy per closed window at watermark advance, not per event")
                        key: key.0.clone(),
                        window: Window::new(start, end),
                        count: st.count,
                        revision: 0,
                        aggregates: st.aggs.iter().map(|a| a.finalize()).collect(),
                    }
                    .to_row();
                    Some((row, st.count))
                }
            };
            if let Some((row, count)) = emit_row {
                self.stats.windows_emitted += 1;
                self.out_seq += 1;
                if self.trace.is_enabled() {
                    self.trace.record(
                        end.raw(),
                        self.shard,
                        TraceKind::WindowFinalize {
                            start: start.raw(),
                            end: end.raw(),
                            key: key.0.to_string(),
                            count,
                        },
                    );
                }
                if self.spans.is_enabled() {
                    // Window complete at `end`, proven complete at `wm`. A
                    // Flush (wm = MAX) carries no event time: zero lag.
                    let closed = if wm == Timestamp::MAX { end } else { wm };
                    self.spans
                        .record(Stage::WindowFinalize, end.raw(), closed.raw(), self.shard);
                }
                out(StreamElement::Event(Event::new(end, self.out_seq, row)));
            }
            if !retain {
                self.state.remove(&sk);
            }
        }
        out(StreamElement::Watermark(wm));
    }

    /// Shared-pane emission: pop every pending `(end, key)` up to the
    /// watermark (already in emission order), combine that window's panes,
    /// and GC panes no later window can cover.
    fn drain_pending_paned(&mut self, wm: Timestamp, out: &mut dyn FnMut(StreamElement)) {
        loop {
            let (end, key) = {
                // quill-lint: allow(no-panic, reason = "drain_pending_paned is only reached via the paned dispatch, which requires paned.is_some()")
                let ps = self.paned.as_mut().expect("paned path");
                match ps.pending.first() {
                    Some((e, _)) if *e <= wm => {
                        // quill-lint: allow(no-panic, reason = "first() just returned Some on this same set")
                        let (e, k) = ps.pending.pop_first().expect("non-empty");
                        (e.raw(), k)
                    }
                    _ => break,
                }
            };
            let row = self.emit_paned_window(end, &key);
            self.stats.windows_emitted += 1;
            self.out_seq += 1;
            out(StreamElement::Event(Event::new(
                Timestamp(end),
                self.out_seq,
                row,
            )));
        }
    }

    fn emit_paned_window(&mut self, end: u64, key: &Key) -> Row {
        // quill-lint: allow(no-panic, reason = "emit_paned_window is only called from drain_pending_paned, which already held the paned state")
        let ps = self.paned.as_mut().expect("paned path");
        // Registration guarantees `end >= length` (window start ≥ 0).
        let start = end - ps.length;
        let combined: Option<Combined> = match ps.keys.get_mut(key) {
            None => None,
            Some(kp) => {
                let c = combine_window(kp, start, end, ps.slide, &ps.template);
                // Panes before `end + slide − length` can never be covered
                // by a later window of this key.
                let min_keep = end.saturating_add(ps.slide).saturating_sub(ps.length);
                kp.panes = kp.panes.split_off(&min_keep);
                if kp.panes.is_empty() {
                    // All of this key's registered windows are emitted (the
                    // newest pane's last window is the newest pending end).
                    ps.keys.remove(key);
                }
                c
            }
        };
        let (aggregates, count) = match combined {
            Some((partials, rows)) => (partials.iter().map(|a| a.finalize()).collect(), rows),
            // Defensive: a registered window always covers ≥ 1 non-empty
            // pane, but emit an empty result rather than lose the window.
            None => (ps.template.iter().map(|a| a.finalize()).collect(), 0),
        };
        if self.trace.is_enabled() {
            self.trace.record(
                end,
                self.shard,
                TraceKind::WindowFinalize {
                    start,
                    end,
                    key: key.0.to_string(),
                    count,
                },
            );
        }
        if self.spans.is_enabled() {
            // Same semantics as the per-window path: the watermark that
            // drained this pending entry is the current one (Flush sets it
            // to MAX, which carries no event time: zero lag).
            let closed = if self.watermark == Timestamp::MAX {
                end
            } else {
                self.watermark.raw()
            };
            self.spans
                .record(Stage::WindowFinalize, end, closed, self.shard);
        }
        WindowResult {
            key: key.0.clone(),
            window: Window::new(Timestamp(start), Timestamp(end)),
            count,
            revision: 0,
            aggregates,
        }
        .to_row()
    }

    /// FiBA emission: pop every pending `(end, start, key)` up to the
    /// watermark (already in emission order), answer the window with a range
    /// query, and bulk-evict what no later window of the key can cover.
    fn drain_pending_fiba(&mut self, wm: Timestamp, out: &mut dyn FnMut(StreamElement)) {
        loop {
            let (end, start, key) = {
                // quill-lint: allow(no-panic, reason = "drain_pending_fiba is only reached via the fiba dispatch, which requires fiba.is_some()")
                let fs = self.fiba.as_mut().expect("fiba path");
                match fs.pending.first() {
                    Some((e, _, _)) if *e <= wm => {
                        // quill-lint: allow(no-panic, reason = "first() just returned Some on this same set")
                        fs.pending.pop_first().expect("non-empty")
                    }
                    _ => break,
                }
            };
            let row = self.emit_fiba_window(end, start, &key);
            self.stats.windows_emitted += 1;
            self.out_seq += 1;
            out(StreamElement::Event(Event::new(end, self.out_seq, row)));
        }
    }

    fn emit_fiba_window(&mut self, end: Timestamp, start: Timestamp, key: &Key) -> Row {
        // quill-lint: allow(no-panic, reason = "emit_fiba_window is only called from drain_pending_fiba, which already held the fiba state")
        let fs = self.fiba.as_mut().expect("fiba path");
        let (s, e) = (start.raw(), end.raw());
        let mut combined: Option<EventSlice> = None;
        let mut count = 0u64;
        let mut order: Vec<OrderStat> = Vec::new();
        if let Some(ks) = fs.keys.get_mut(key) {
            // Registered windows have `end ≥ 1` (start ≥ 0, length ≥ 1), so
            // the inclusive upper bound `(end − 1, MAX)` cannot underflow.
            let (agg, n) = ks.time.range_agg((s, 0), (e - 1, u64::MAX));
            combined = agg;
            count = n;
            order = ks.windows.remove(&(end, start)).unwrap_or_default();
            // Bulk eviction: entries before the next possible window start of
            // this key (`start + slide`) can never be covered again. Pending
            // windows of this key all end after `end`, hence start at or
            // after `start + slide` on the slide grid.
            ks.time.evict_before((s.saturating_add(fs.slide), 0));
            if ks.time.is_empty() && ks.windows.is_empty() {
                fs.keys.remove(key);
            }
        }
        let mut aggregates = Vec::with_capacity(self.aggs.len());
        let mut oi = 0;
        for (spec, slot) in self.aggs.iter().zip(&fs.slots) {
            match slot {
                Some(j) => aggregates.push(match &combined {
                    Some(slice) => slice.0[*j].finalize(),
                    // Defensive: a registered window always covers ≥ 1
                    // accepted event, but emit an empty result rather than
                    // lose the window.
                    None => fs.template[*j].finalize(),
                }),
                None => {
                    let v = match order.get(oi) {
                        Some(OrderStat::Rank { p, tree }) => rank_quantile(tree, *p),
                        Some(OrderStat::Distinct(set)) => Value::Int(set.len() as i64),
                        // Defensive, as above: match each kind's empty-state
                        // finalize.
                        None => match spec.kind {
                            AggregateKind::DistinctCount => Value::Int(0),
                            _ => Value::Null,
                        },
                    };
                    aggregates.push(v);
                    oi += 1;
                }
            }
        }
        if self.trace.is_enabled() {
            self.trace.record(
                e,
                self.shard,
                TraceKind::WindowFinalize {
                    start: s,
                    end: e,
                    key: key.0.to_string(),
                    count,
                },
            );
        }
        if self.spans.is_enabled() {
            // Same semantics as the other paths: the watermark that drained
            // this pending entry closed the window (Flush sets it to MAX,
            // which carries no event time: zero lag).
            let closed = if self.watermark == Timestamp::MAX {
                e
            } else {
                self.watermark.raw()
            };
            self.spans
                .record(Stage::WindowFinalize, e, closed, self.shard);
        }
        WindowResult {
            key: key.0.clone(),
            window: Window::new(start, end),
            count,
            revision: 0,
            aggregates,
        }
        .to_row()
    }
}

/// Combine the panes of window `[start, end)` through the key's
/// [`FifoRun`], rebuilding it when the cache is stale (non-consecutive end,
/// or inserts since the last combine).
fn combine_window(
    kp: &mut KeyPanes,
    start: u64,
    end: u64,
    slide: u64,
    template: &[PaneAgg],
) -> Option<Combined> {
    let valid = kp
        .run
        .as_ref()
        .is_some_and(|r| r.next_end == end && r.epoch == kp.mods);
    if !valid {
        // Rebuild: every pane of this window goes to the back, combined
        // left-to-right (oldest first, preserving merge orientation).
        let mut back = Vec::with_capacity(((end - start) / slide) as usize);
        let mut back_agg: Option<Combined> = None;
        let mut p = start;
        while p < end {
            back.push(p);
            if let Some(pane) = kp.panes.get(&p) {
                merge_combined(&mut back_agg, &pane.partials, pane.rows);
            }
            p += slide;
        }
        let result = back_agg.clone();
        kp.run = Some(FifoRun {
            next_end: end.saturating_add(slide),
            epoch: kp.mods,
            front: Vec::new(),
            back,
            back_agg,
        });
        return result;
    }
    // quill-lint: allow(no-panic, reason = "the rebuild branch above returns early after setting kp.run = Some(...)")
    let run = kp.run.as_mut().expect("validated above");
    // Slide one step: admit pane `end − slide`, evict pane `start − slide`.
    let newest = end - slide;
    run.back.push(newest);
    if let Some(pane) = kp.panes.get(&newest) {
        merge_combined(&mut run.back_agg, &pane.partials, pane.rows);
    }
    if run.front.is_empty() {
        // Flip: turn the back into front entries caching suffix combines
        // (walk newest → oldest; each entry = pane ⊕ previous suffix).
        let mut suffix: Option<Combined> = None;
        for &p in run.back.iter().rev() {
            let mut entry: Combined = match kp.panes.get(&p) {
                // quill-lint: allow(hot-path-alloc, reason = "two-stack flip: amortized one copy per pane per flip, not per event")
                Some(pane) => (pane.partials.clone(), pane.rows),
                None => (template.to_vec(), 0),
            };
            if let Some((sfx, srows)) = &suffix {
                for (a, b) in entry.0.iter_mut().zip(sfx) {
                    a.merge(b);
                }
                entry.1 += srows;
            }
            // quill-lint: allow(hot-path-alloc, reason = "suffix cache of the flip; same amortized bound as above")
            suffix = Some(entry.clone());
            run.front.push((p, entry));
        }
        run.back.clear();
        run.back_agg = None;
    }
    let evicted = run.front.pop();
    debug_assert_eq!(
        evicted.as_ref().map(|(p, _)| *p),
        Some(start - slide),
        "front top must be the expired pane"
    );
    let result = match run.front.last() {
        Some((_, (sfx, srows))) => {
            let mut out = (sfx.clone(), *srows);
            if let Some((b, brows)) = &run.back_agg {
                for (a, x) in out.0.iter_mut().zip(b) {
                    a.merge(x);
                }
                out.1 += brows;
            }
            Some(out)
        }
        None => run.back_agg.clone(),
    };
    run.next_end = end.saturating_add(slide);
    run.epoch = kp.mods;
    result
}

/// Fold a later pane into an accumulating combined partial.
fn merge_combined(acc: &mut Option<Combined>, partials: &[PaneAgg], rows: u64) {
    match acc {
        None => *acc = (partials.to_vec(), rows).into(),
        Some((aggs, n)) => {
            for (a, b) in aggs.iter_mut().zip(partials) {
                a.merge(b);
            }
            *n += rows;
        }
    }
}

impl Operator for WindowAggregateOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, el: StreamElement, out: &mut dyn FnMut(StreamElement)) {
        match el {
            StreamElement::Event(e) => {
                if self.fiba.is_some() {
                    self.fold_event_fiba(&e);
                } else if self.paned.is_some() {
                    self.fold_event_paned(&e);
                } else {
                    self.fold_event(&e);
                    self.emit_revisions(&e, out);
                }
            }
            StreamElement::Watermark(wm) => self.advance_watermark(wm, out),
            StreamElement::Flush => {
                self.advance_watermark(Timestamp::MAX, out);
                out(StreamElement::Flush);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateKind;

    fn op(spec: WindowSpec, policy: LatePolicy) -> WindowAggregateOp {
        WindowAggregateOp::new(
            spec,
            vec![AggregateSpec::new(AggregateKind::Sum, 0, "sum")],
            None,
            policy,
        )
        .unwrap()
    }

    fn ev(ts: u64, seq: u64, v: f64) -> StreamElement {
        StreamElement::Event(Event::new(ts, seq, Row::new([Value::Float(v)])))
    }

    fn run(op: &mut WindowAggregateOp, input: Vec<StreamElement>) -> Vec<WindowResult> {
        let mut outs = Vec::new();
        for el in input {
            op.process(el, &mut |o| outs.push(o));
        }
        outs.iter()
            .filter_map(|o| o.as_event())
            .filter_map(|e| WindowResult::from_row(&e.row))
            .collect()
    }

    #[test]
    fn tumbling_sum_emits_on_watermark() {
        let mut w = op(WindowSpec::tumbling(10u64), LatePolicy::Drop);
        let results = run(
            &mut w,
            vec![
                ev(1, 1, 1.0),
                ev(5, 2, 2.0),
                ev(12, 3, 4.0),
                StreamElement::Watermark(Timestamp(10)),
                StreamElement::Flush,
            ],
        );
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].window, Window::new(Timestamp(0), Timestamp(10)));
        assert_eq!(results[0].aggregates[0], Value::Float(3.0));
        assert_eq!(results[0].count, 2);
        assert_eq!(results[1].aggregates[0], Value::Float(4.0));
        assert_eq!(w.stats().windows_emitted, 2);
    }

    #[test]
    fn out_of_order_event_before_watermark_is_included() {
        let mut w = op(WindowSpec::tumbling(10u64), LatePolicy::Drop);
        let results = run(
            &mut w,
            vec![ev(8, 1, 1.0), ev(2, 2, 2.0), StreamElement::Flush],
        );
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].aggregates[0], Value::Float(3.0));
        assert_eq!(w.stats().late_dropped, 0);
    }

    #[test]
    fn late_event_is_dropped_and_counted_under_drop_policy() {
        let mut w = op(WindowSpec::tumbling(10u64), LatePolicy::Drop);
        let results = run(
            &mut w,
            vec![
                ev(5, 1, 1.0),
                StreamElement::Watermark(Timestamp(10)),
                ev(3, 2, 99.0), // window [0,10) already emitted
                StreamElement::Flush,
            ],
        );
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].aggregates[0], Value::Float(1.0));
        assert_eq!(w.stats().late_dropped, 1);
        assert_eq!(w.stats().accepted, 1);
    }

    #[test]
    fn late_event_produces_revision_under_revise_policy() {
        let mut w = op(
            WindowSpec::tumbling(10u64),
            LatePolicy::Revise {
                allowed_lateness: 100,
            },
        );
        let results = run(
            &mut w,
            vec![
                ev(5, 1, 1.0),
                StreamElement::Watermark(Timestamp(10)),
                ev(3, 2, 2.0),
                StreamElement::Flush,
            ],
        );
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].revision, 0);
        assert_eq!(results[0].aggregates[0], Value::Float(1.0));
        assert_eq!(results[1].revision, 1);
        assert_eq!(results[1].aggregates[0], Value::Float(3.0));
        assert_eq!(w.stats().revisions, 1);
    }

    #[test]
    fn revise_policy_drops_past_allowed_lateness() {
        let mut w = op(
            WindowSpec::tumbling(10u64),
            LatePolicy::Revise {
                allowed_lateness: 5,
            },
        );
        let results = run(
            &mut w,
            vec![
                ev(5, 1, 1.0),
                StreamElement::Watermark(Timestamp(20)), // wm > end+5 → state GC'd
                ev(3, 2, 2.0),
                StreamElement::Flush,
            ],
        );
        assert_eq!(results.len(), 1);
        assert_eq!(w.stats().late_dropped, 1);
        assert_eq!(w.open_windows(), 0);
    }

    #[test]
    fn keyed_aggregation_separates_groups() {
        let mut w = WindowAggregateOp::new(
            WindowSpec::tumbling(10u64),
            vec![AggregateSpec::new(AggregateKind::Sum, 1, "sum")],
            Some(0),
            LatePolicy::Drop,
        )
        .unwrap();
        let mk = |ts: u64, seq: u64, k: &str, v: f64| {
            StreamElement::Event(Event::new(
                ts,
                seq,
                Row::new([Value::str(k), Value::Float(v)]),
            ))
        };
        let results = run(
            &mut w,
            vec![
                mk(1, 1, "a", 1.0),
                mk(2, 2, "b", 10.0),
                mk(3, 3, "a", 2.0),
                StreamElement::Flush,
            ],
        );
        assert_eq!(results.len(), 2);
        let mut sums: Vec<(String, f64)> = results
            .iter()
            .map(|r| {
                (
                    r.key.as_str().unwrap().to_string(),
                    r.aggregates[0].as_f64().unwrap(),
                )
            })
            .collect();
        sums.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(sums, vec![("a".into(), 3.0), ("b".into(), 10.0)]);
    }

    #[test]
    fn sliding_windows_count_events_in_each_instance() {
        let mut w = WindowAggregateOp::new(
            WindowSpec::sliding(10u64, 5u64),
            vec![AggregateSpec::new(AggregateKind::Count, 0, "n")],
            None,
            LatePolicy::Drop,
        )
        .unwrap();
        let results = run(&mut w, vec![ev(7, 1, 1.0), StreamElement::Flush]);
        // ts=7 belongs to [0,10) and [5,15).
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].window, Window::new(Timestamp(0), Timestamp(10)));
        assert_eq!(results[1].window, Window::new(Timestamp(5), Timestamp(15)));
        for r in &results {
            assert_eq!(r.aggregates[0], Value::Int(1));
        }
    }

    #[test]
    fn emission_order_is_by_window_end() {
        let mut w = op(WindowSpec::sliding(10u64, 5u64), LatePolicy::Drop);
        let results = run(
            &mut w,
            vec![
                ev(3, 1, 1.0),
                ev(13, 2, 2.0),
                ev(23, 3, 4.0),
                StreamElement::Flush,
            ],
        );
        let ends: Vec<u64> = results.iter().map(|r| r.window.end.raw()).collect();
        let mut sorted = ends.clone();
        sorted.sort();
        assert_eq!(ends, sorted);
    }

    #[test]
    fn watermarks_are_forwarded_and_never_regress() {
        let mut w = op(WindowSpec::tumbling(10u64), LatePolicy::Drop);
        let mut outs = Vec::new();
        w.process(StreamElement::Watermark(Timestamp(10)), &mut |o| {
            outs.push(o)
        });
        w.process(StreamElement::Watermark(Timestamp(5)), &mut |o| {
            outs.push(o)
        });
        w.process(StreamElement::Watermark(Timestamp(20)), &mut |o| {
            outs.push(o)
        });
        let wms: Vec<Timestamp> = outs.iter().filter_map(|o| o.implied_watermark()).collect();
        assert_eq!(wms, vec![Timestamp(10), Timestamp(20)]);
    }

    #[test]
    fn result_row_roundtrip() {
        let r = WindowResult {
            key: Value::str("k"),
            window: Window::new(Timestamp(0), Timestamp(10)),
            count: 3,
            revision: 1,
            aggregates: vec![Value::Float(1.5), Value::Int(2)],
        };
        assert_eq!(WindowResult::from_row(&r.to_row()), Some(r));
    }

    #[test]
    fn rejects_empty_aggregate_list() {
        assert!(WindowAggregateOp::new(
            WindowSpec::tumbling(10u64),
            vec![],
            None,
            LatePolicy::Drop
        )
        .is_err());
    }

    fn approx_eq(a: &WindowResult, b: &WindowResult) {
        assert_eq!(a.window, b.window);
        assert_eq!(a.key, b.key);
        assert_eq!(a.count, b.count);
        for (x, y) in a.aggregates.iter().zip(&b.aggregates) {
            match (x, y) {
                (Value::Float(x), Value::Float(y)) => assert!(
                    (x - y).abs() <= 1e-9 * x.abs().max(1.0),
                    "float aggregate diverged: {x} vs {y}"
                ),
                (x, y) => assert_eq!(x, y),
            }
        }
    }

    #[test]
    fn sliding_sum_variance_share_pane_state() {
        // Acceptance: sliding Sum/Variance must not recompute from raw
        // window contents on emit — exactly one aggregate fold per event on
        // the shared-pane path, vs. one per covering window instance on the
        // per-window path.
        let mk = || {
            WindowAggregateOp::new(
                WindowSpec::sliding(100u64, 20u64),
                vec![
                    AggregateSpec::new(AggregateKind::Sum, 0, "s"),
                    AggregateSpec::new(AggregateKind::Variance, 0, "v"),
                ],
                None,
                LatePolicy::Drop,
            )
            .unwrap()
        };
        let mut paned = mk();
        assert!(paned.shares_panes());
        let mut legacy = mk().with_shared_panes(false);
        assert!(!legacy.shares_panes());
        let n = 500u64;
        let input: Vec<StreamElement> = (0..n)
            .map(|i| ev(i * 3, i, (i % 13) as f64))
            .chain([StreamElement::Flush])
            .collect();
        let rp = run(&mut paned, input.clone());
        let rl = run(&mut legacy, input);
        assert_eq!(
            paned.stats().agg_inserts,
            n,
            "pane path must fold each event exactly once"
        );
        assert!(
            legacy.stats().agg_inserts > 4 * n,
            "per-window path folds each event into ~length/slide instances, got {}",
            legacy.stats().agg_inserts
        );
        assert_eq!(rp.len(), rl.len());
        for (a, b) in rp.iter().zip(&rl) {
            approx_eq(a, b);
        }
        assert_eq!(paned.open_windows(), 0);
        assert_eq!(paned.stats().accepted, legacy.stats().accepted);
    }

    #[test]
    fn pane_path_matches_per_window_under_disorder_and_lateness() {
        let mk = || {
            WindowAggregateOp::new(
                WindowSpec::sliding(40u64, 10u64),
                vec![
                    AggregateSpec::new(AggregateKind::Count, 0, "n"),
                    AggregateSpec::new(AggregateKind::Max, 0, "m"),
                    AggregateSpec::new(AggregateKind::Last, 0, "l"),
                ],
                None,
                LatePolicy::Drop,
            )
            .unwrap()
        };
        let mut input = Vec::new();
        for i in 0..300u64 {
            // Deterministic disorder: every 7th event jumps far back — far
            // enough that all its windows are behind the watermark (late),
            // given the watermark lag of 30..130 plus window length 40.
            let ts = if i % 7 == 3 {
                (i * 5).saturating_sub(200)
            } else {
                i * 5
            };
            input.push(ev(ts, i, (ts % 11) as f64));
            if i % 20 == 19 {
                input.push(StreamElement::Watermark(Timestamp(
                    (i * 5).saturating_sub(30),
                )));
            }
        }
        input.push(StreamElement::Flush);
        let mut paned = mk();
        let mut legacy = mk().with_shared_panes(false);
        assert!(paned.shares_panes() && !legacy.shares_panes());
        let rp = run(&mut paned, input.clone());
        let rl = run(&mut legacy, input);
        // Count/Max/Last over identical f64s are bit-exact on both paths.
        assert_eq!(rp, rl);
        assert_eq!(paned.stats().accepted, legacy.stats().accepted);
        assert_eq!(paned.stats().late_dropped, legacy.stats().late_dropped);
        assert_eq!(
            paned.stats().windows_emitted,
            legacy.stats().windows_emitted
        );
        assert!(
            paned.stats().late_dropped > 0,
            "disorder must produce lates"
        );
    }

    #[test]
    fn keyed_pane_path_matches_per_window() {
        let mk = || {
            WindowAggregateOp::new(
                WindowSpec::sliding(30u64, 10u64),
                vec![AggregateSpec::new(AggregateKind::Mean, 1, "mean")],
                Some(0),
                LatePolicy::Drop,
            )
            .unwrap()
        };
        let mut input: Vec<StreamElement> = (0..200u64)
            .map(|i| {
                StreamElement::Event(Event::new(
                    i * 4,
                    i,
                    Row::new([Value::Int((i % 5) as i64), Value::Float((i % 17) as f64)]),
                ))
            })
            .collect();
        input.push(StreamElement::Flush);
        let mut paned = mk();
        let mut legacy = mk().with_shared_panes(false);
        let rp = run(&mut paned, input.clone());
        let rl = run(&mut legacy, input);
        assert_eq!(rp.len(), rl.len());
        for (a, b) in rp.iter().zip(&rl) {
            approx_eq(a, b);
        }
    }

    #[test]
    fn pane_path_requires_divisible_overlapping_sliding_and_drop() {
        let aggs = || vec![AggregateSpec::new(AggregateKind::Sum, 0, "s")];
        let eligible = WindowAggregateOp::new(
            WindowSpec::sliding(100u64, 25u64),
            aggs(),
            None,
            LatePolicy::Drop,
        )
        .unwrap();
        assert!(eligible.shares_panes());
        for (spec, policy) in [
            (WindowSpec::tumbling(100u64), LatePolicy::Drop),
            (WindowSpec::sliding(100u64, 30u64), LatePolicy::Drop), // 30 ∤ 100
            (WindowSpec::sliding(100u64, 100u64), LatePolicy::Drop), // no overlap
            (
                WindowSpec::sliding(100u64, 25u64),
                LatePolicy::Revise {
                    allowed_lateness: 10,
                },
            ),
        ] {
            let op = WindowAggregateOp::new(spec, aggs(), None, policy).unwrap();
            assert!(!op.shares_panes(), "{spec:?} {policy:?}");
        }
        // Non-combinable aggregates pin the per-window path too.
        let median = WindowAggregateOp::new(
            WindowSpec::sliding(100u64, 25u64),
            vec![AggregateSpec::new(AggregateKind::Median, 0, "m")],
            None,
            LatePolicy::Drop,
        )
        .unwrap();
        assert!(!median.shares_panes());
    }

    #[test]
    fn trace_records_finalize_and_late_drops() {
        let rec = FlightRecorder::new(64);
        let mut w = op(WindowSpec::tumbling(10u64), LatePolicy::Drop);
        w.attach_trace(&rec, 3);
        let _ = run(
            &mut w,
            vec![
                ev(5, 1, 1.0),
                StreamElement::Watermark(Timestamp(10)),
                ev(3, 2, 99.0), // window [0,10) already finalized
                StreamElement::Flush,
            ],
        );
        let evs = rec.events();
        let fins: Vec<&quill_telemetry::trace::TraceEvent> = evs
            .iter()
            .filter(|t| matches!(t.kind, TraceKind::WindowFinalize { .. }))
            .collect();
        assert_eq!(fins.len(), 1);
        assert_eq!(fins[0].shard, 3);
        match &fins[0].kind {
            TraceKind::WindowFinalize {
                start,
                end,
                key,
                count,
            } => {
                assert_eq!((*start, *end, key.as_str(), *count), (0, 10, "null", 1));
            }
            _ => unreachable!(),
        }
        let drops: Vec<(u64, Vec<(u64, u64)>)> = evs
            .iter()
            .filter_map(|t| match &t.kind {
                TraceKind::LateDrop { event_seq, windows } => Some((*event_seq, windows.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(drops, vec![(2, vec![(0, 10)])]);
    }

    #[test]
    fn paned_path_traces_finalize_and_late_drops() {
        let rec = FlightRecorder::new(256);
        let mut w = op(WindowSpec::sliding(20u64, 10u64), LatePolicy::Drop);
        assert!(w.shares_panes());
        w.attach_trace(&rec, 0);
        let _ = run(
            &mut w,
            vec![
                ev(5, 1, 1.0),
                ev(15, 2, 2.0),
                StreamElement::Watermark(Timestamp(40)),
                ev(3, 3, 9.0), // only window [0,20), finalized at wm=40
                StreamElement::Flush,
            ],
        );
        let evs = rec.events();
        let fins: Vec<(u64, u64, u64)> = evs
            .iter()
            .filter_map(|t| match &t.kind {
                TraceKind::WindowFinalize {
                    start, end, count, ..
                } => Some((*start, *end, *count)),
                _ => None,
            })
            .collect();
        assert_eq!(fins, vec![(0, 20, 2), (10, 30, 1)]);
        let drops: Vec<(u64, Vec<(u64, u64)>)> = evs
            .iter()
            .filter_map(|t| match &t.kind {
                TraceKind::LateDrop { event_seq, windows } => Some((*event_seq, windows.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(drops, vec![(3, vec![(0, 20)])]);
        assert_eq!(w.stats().late_dropped, 1);
    }

    #[test]
    fn spans_record_window_finalize_lag_on_both_paths() {
        // Per-window path: window [0,10) closes at wm=25 → span [10, 25];
        // flush-forced window [30,40) records zero lag.
        let spans = SpanRecorder::new(64);
        let mut w = op(WindowSpec::tumbling(10u64), LatePolicy::Drop);
        w.attach_spans(&spans, 5);
        let _ = run(
            &mut w,
            vec![
                ev(5, 1, 1.0),
                StreamElement::Watermark(Timestamp(25)),
                ev(35, 2, 2.0),
                StreamElement::Flush,
            ],
        );
        let rec = spans.spans();
        assert!(rec
            .iter()
            .all(|s| s.stage == Stage::WindowFinalize && s.shard == 5));
        let pairs: Vec<(u64, u64)> = rec.iter().map(|s| (s.begin, s.end)).collect();
        assert_eq!(pairs, vec![(10, 25), (40, 40)]);

        // Paned path: same span semantics from the shared-pane emitter.
        let spans = SpanRecorder::new(64);
        let mut w = op(WindowSpec::sliding(20u64, 10u64), LatePolicy::Drop);
        assert!(w.shares_panes());
        w.attach_spans(&spans, 0);
        let _ = run(
            &mut w,
            vec![
                ev(5, 1, 1.0),
                ev(15, 2, 2.0),
                StreamElement::Watermark(Timestamp(40)),
                StreamElement::Flush,
            ],
        );
        let pairs: Vec<(u64, u64)> = spans.spans().iter().map(|s| (s.begin, s.end)).collect();
        assert_eq!(pairs, vec![(20, 40), (30, 40)]);
    }

    #[test]
    fn flush_emits_everything() {
        let mut w = op(WindowSpec::tumbling(10u64), LatePolicy::Drop);
        let results = run(
            &mut w,
            vec![ev(5, 1, 1.0), ev(105, 2, 2.0), StreamElement::Flush],
        );
        assert_eq!(results.len(), 2);
        assert_eq!(w.open_windows(), 0);
    }

    #[test]
    fn fiba_backend_selection_and_revise_fallback() {
        // Fiba applies to any tumbling/sliding shape under Drop, including
        // shapes the pane path rejects (tumbling, misaligned slides) and
        // non-combinable aggregates.
        for spec in [
            WindowSpec::tumbling(10u64),
            WindowSpec::sliding(100u64, 30u64), // 30 ∤ 100
            WindowSpec::sliding(20u64, 10u64),
        ] {
            let w = op(spec, LatePolicy::Drop).with_window_state(WindowState::Fiba);
            assert_eq!(w.window_state(), WindowState::Fiba, "{spec:?}");
            assert!(!w.shares_panes());
        }
        let median = WindowAggregateOp::new(
            WindowSpec::sliding(100u64, 25u64),
            vec![AggregateSpec::new(AggregateKind::Median, 0, "m")],
            None,
            LatePolicy::Drop,
        )
        .unwrap()
        .with_window_state(WindowState::Fiba);
        assert_eq!(median.window_state(), WindowState::Fiba);
        // Revise needs retained per-window state → legacy fallback, and
        // switching back to Legacy restores pane eligibility.
        let revise = op(
            WindowSpec::tumbling(10u64),
            LatePolicy::Revise {
                allowed_lateness: 5,
            },
        )
        .with_window_state(WindowState::Fiba);
        assert_eq!(revise.window_state(), WindowState::Legacy);
        let back = op(WindowSpec::sliding(20u64, 10u64), LatePolicy::Drop)
            .with_window_state(WindowState::Fiba)
            .with_window_state(WindowState::Legacy);
        assert_eq!(back.window_state(), WindowState::Legacy);
        assert!(back.shares_panes());
    }

    #[test]
    fn fiba_matches_legacy_under_disorder_and_lateness() {
        // Same deterministic disorder as the pane differential above, but on
        // the FiBA backend with an order-insensitive aggregate mix whose
        // outputs are bit-exact regardless of combine shape.
        let mk = || {
            WindowAggregateOp::new(
                WindowSpec::sliding(40u64, 10u64),
                vec![
                    AggregateSpec::new(AggregateKind::Count, 0, "n"),
                    AggregateSpec::new(AggregateKind::Max, 0, "m"),
                    AggregateSpec::new(AggregateKind::Last, 0, "l"),
                    AggregateSpec::new(AggregateKind::Median, 0, "med"),
                    AggregateSpec::new(AggregateKind::DistinctCount, 0, "d"),
                ],
                None,
                LatePolicy::Drop,
            )
            .unwrap()
        };
        let mut input = Vec::new();
        for i in 0..300u64 {
            let ts = if i % 7 == 3 {
                (i * 5).saturating_sub(200)
            } else {
                i * 5
            };
            input.push(ev(ts, i, (ts % 11) as f64));
            if i % 20 == 19 {
                input.push(StreamElement::Watermark(Timestamp(
                    (i * 5).saturating_sub(30),
                )));
            }
        }
        input.push(StreamElement::Flush);
        let mut fiba = mk().with_window_state(WindowState::Fiba);
        let mut legacy = mk();
        assert_eq!(fiba.window_state(), WindowState::Fiba);
        assert_eq!(legacy.window_state(), WindowState::Legacy);
        let rf = run(&mut fiba, input.clone());
        let rl = run(&mut legacy, input);
        assert_eq!(rf, rl);
        assert_eq!(fiba.stats().accepted, legacy.stats().accepted);
        assert_eq!(fiba.stats().late_dropped, legacy.stats().late_dropped);
        assert_eq!(fiba.stats().windows_emitted, legacy.stats().windows_emitted);
        assert!(fiba.stats().late_dropped > 0, "disorder must produce lates");
        assert_eq!(fiba.open_windows(), 0, "flush must drain all fiba state");
    }

    #[test]
    fn keyed_fiba_matches_legacy_with_misaligned_slide_and_order_stats() {
        // Misaligned slide (7 ∤ 30) + order statistics: the pane path is
        // ineligible either way, so this pits FiBA directly against the
        // per-window reference. Integer-valued floats keep Mean/Quantile
        // arithmetic bit-identical (same sums, same interpolation formula).
        let mk = || {
            WindowAggregateOp::new(
                WindowSpec::sliding(30u64, 7u64),
                vec![
                    AggregateSpec::new(AggregateKind::Mean, 1, "mean"),
                    AggregateSpec::new(AggregateKind::Median, 1, "med"),
                    AggregateSpec::new(AggregateKind::Quantile(0.9), 1, "p90"),
                    AggregateSpec::new(AggregateKind::DistinctCount, 1, "d"),
                ],
                Some(0),
                LatePolicy::Drop,
            )
            .unwrap()
        };
        let mut input = Vec::new();
        for i in 0..250u64 {
            // Mild disorder: every 5th event arrives 31 units back.
            let ts = if i % 5 == 2 {
                (i * 3).saturating_sub(31)
            } else {
                i * 3
            };
            input.push(StreamElement::Event(Event::new(
                ts,
                i,
                Row::new([Value::Int((i % 4) as i64), Value::Float((i % 23) as f64)]),
            )));
            if i % 25 == 24 {
                input.push(StreamElement::Watermark(Timestamp(
                    (i * 3).saturating_sub(40),
                )));
            }
        }
        input.push(StreamElement::Flush);
        let mut fiba = mk().with_window_state(WindowState::Fiba);
        let mut legacy = mk();
        let rf = run(&mut fiba, input.clone());
        let rl = run(&mut legacy, input);
        assert_eq!(rf, rl);
        assert_eq!(fiba.stats().accepted, legacy.stats().accepted);
        assert_eq!(fiba.stats().late_dropped, legacy.stats().late_dropped);
    }

    #[test]
    fn fiba_path_traces_finalize_late_drops_and_spans() {
        // Identical scenario to the paned trace/span tests: the FiBA path
        // must hit the same telemetry hooks with the same payloads.
        let rec = FlightRecorder::new(256);
        let spans = SpanRecorder::new(64);
        let mut w = op(WindowSpec::sliding(20u64, 10u64), LatePolicy::Drop)
            .with_window_state(WindowState::Fiba);
        w.attach_trace(&rec, 0);
        w.attach_spans(&spans, 0);
        let _ = run(
            &mut w,
            vec![
                ev(5, 1, 1.0),
                ev(15, 2, 2.0),
                StreamElement::Watermark(Timestamp(40)),
                ev(3, 3, 9.0), // only window [0,20), finalized at wm=40
                StreamElement::Flush,
            ],
        );
        let evs = rec.events();
        let fins: Vec<(u64, u64, u64)> = evs
            .iter()
            .filter_map(|t| match &t.kind {
                TraceKind::WindowFinalize {
                    start, end, count, ..
                } => Some((*start, *end, *count)),
                _ => None,
            })
            .collect();
        assert_eq!(fins, vec![(0, 20, 2), (10, 30, 1)]);
        let drops: Vec<(u64, Vec<(u64, u64)>)> = evs
            .iter()
            .filter_map(|t| match &t.kind {
                TraceKind::LateDrop { event_seq, windows } => Some((*event_seq, windows.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(drops, vec![(3, vec![(0, 20)])]);
        let pairs: Vec<(u64, u64)> = spans.spans().iter().map(|s| (s.begin, s.end)).collect();
        assert_eq!(pairs, vec![(20, 40), (30, 40)]);
    }
}
