//! Keyed windowed aggregation with event-time semantics.
//!
//! [`WindowAggregateOp`] routes each event into every window instance its
//! timestamp belongs to (optionally per grouping key), folds it into the
//! incremental aggregate state, and emits one result row per (key, window)
//! when the watermark passes the window's end. Events arriving *after* their
//! window was already finalized are handled according to [`LatePolicy`]:
//! counted and dropped, or emitted as revised ("update") results.
//!
//! This operator is the consumer side of the quality/latency trade-off: the
//! disorder-control strategies in `quill-core` decide how long to hold
//! events (and therefore where watermarks sit); this operator turns those
//! watermarks into results whose completeness the metrics crate scores.

use crate::aggregate::{AggregateSpec, Aggregator};
use crate::error::Result;
use crate::event::{Event, StreamElement};
use crate::operator::Operator;
use crate::time::Timestamp;
use crate::value::{Key, Row, Value};
use crate::window::{Window, WindowSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What to do with an event whose window has already been finalized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LatePolicy {
    /// Count the event in [`WindowOpStats::late_dropped`] and discard it.
    Drop,
    /// Re-open the window, fold the event in, and emit a *revision* row
    /// (flagged via the `revision` column of [`WindowResult`]). State for
    /// revised windows is retained until `allowed_lateness` past the window
    /// end, then discarded.
    Revise {
        /// How long past the window end (in time units) revisions are
        /// accepted before state is dropped for good.
        allowed_lateness: u64,
    },
}

/// Counters the operator maintains; read them after a run to account for
/// every input event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowOpStats {
    /// Events folded into at least one open window.
    pub accepted: u64,
    /// Events that arrived after their last window was finalized and were
    /// dropped (under [`LatePolicy::Drop`], or past allowed lateness).
    pub late_dropped: u64,
    /// Revision results emitted (under [`LatePolicy::Revise`]).
    pub revisions: u64,
    /// Window results emitted (first emissions, not revisions).
    pub windows_emitted: u64,
}

/// Parsed view of a result row emitted by [`WindowAggregateOp`].
///
/// Result row layout: `[key, start, end, count, revision, agg...]`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowResult {
    /// Grouping key (`Null` for global aggregation).
    pub key: Value,
    /// The window.
    pub window: Window,
    /// Number of events folded into this result.
    pub count: u64,
    /// 0 for a first emission, `n` for the n-th revision.
    pub revision: u64,
    /// One output per [`AggregateSpec`], in spec order.
    pub aggregates: Vec<Value>,
}

impl WindowResult {
    /// Number of leading metadata columns before the aggregate outputs.
    pub const META_COLS: usize = 5;

    /// Serialize to the operator's row layout.
    pub fn to_row(&self) -> Row {
        let mut vals = Vec::with_capacity(Self::META_COLS + self.aggregates.len());
        vals.push(self.key.clone());
        vals.push(Value::Int(self.window.start.raw() as i64));
        vals.push(Value::Int(self.window.end.raw() as i64));
        vals.push(Value::Int(self.count as i64));
        vals.push(Value::Int(self.revision as i64));
        vals.extend(self.aggregates.iter().cloned());
        vals.into_iter().collect()
    }

    /// Parse from the operator's row layout. Returns `None` if the row is
    /// too short to be a window result.
    pub fn from_row(row: &Row) -> Option<WindowResult> {
        if row.len() < Self::META_COLS {
            return None;
        }
        // Window bounds are stored as i64 bit-casts of the u64 timestamps
        // (`to_row` uses `as i64`); `as u64` restores them losslessly even
        // for values beyond i64::MAX.
        let start = row.get(1).as_i64()? as u64;
        let end = row.get(2).as_i64()? as u64;
        Some(WindowResult {
            key: row.get(0).clone(),
            window: Window::new(Timestamp(start), Timestamp(end)),
            count: row.get(3).as_i64()?.max(0) as u64,
            revision: row.get(4).as_i64()?.max(0) as u64,
            aggregates: row.values()[Self::META_COLS..].to_vec(),
        })
    }
}

/// Per-(key, window) incremental state.
struct WindowState {
    aggs: Vec<Box<dyn Aggregator>>,
    count: u64,
    /// How many times this window has been emitted (0 = not yet).
    emissions: u64,
}

/// Ordered state key: emission order is by window end, then start, then key,
/// which makes output deterministic.
type StateKey = (Timestamp, Timestamp, Key);

/// Keyed sliding/tumbling window aggregation operator.
pub struct WindowAggregateOp {
    name: String,
    spec: WindowSpec,
    aggs: Vec<AggregateSpec>,
    key_field: Option<usize>,
    late_policy: LatePolicy,
    state: BTreeMap<StateKey, WindowState>,
    watermark: Timestamp,
    out_seq: u64,
    stats: WindowOpStats,
}

impl WindowAggregateOp {
    /// Build the operator.
    ///
    /// * `spec` — window shape (validated).
    /// * `aggs` — aggregate functions (validated); at least one required.
    /// * `key_field` — optional row index to group by; `None` aggregates
    ///   globally.
    ///
    /// # Errors
    /// Propagates invalid window or aggregate parameters.
    pub fn new(
        spec: WindowSpec,
        aggs: Vec<AggregateSpec>,
        key_field: Option<usize>,
        late_policy: LatePolicy,
    ) -> Result<Self> {
        spec.validate()?;
        for a in &aggs {
            a.validate()?;
        }
        if aggs.is_empty() {
            return Err(crate::error::EngineError::InvalidAggregate(
                "window aggregation requires at least one aggregate".into(),
            ));
        }
        Ok(WindowAggregateOp {
            name: format!("window-agg({spec})"),
            spec,
            aggs,
            key_field,
            late_policy,
            state: BTreeMap::new(),
            watermark: Timestamp::MIN,
            out_seq: 0,
            stats: WindowOpStats::default(),
        })
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> WindowOpStats {
        self.stats
    }

    /// Number of (key, window) states currently held.
    pub fn open_windows(&self) -> usize {
        self.state.len()
    }

    fn key_of(&self, row: &Row) -> Key {
        match self.key_field {
            Some(i) => Key(row.get(i).clone()),
            None => Key(Value::Null),
        }
    }

    fn fold_event(&mut self, e: &Event) {
        let key = self.key_of(&e.row);
        let windows = self.spec.assign(e.ts);
        let mut accepted = false;
        let mut late = false;
        for w in windows {
            // A window is "closed" once the watermark passed its end.
            let closed = w.end <= self.watermark;
            match (closed, self.late_policy) {
                (true, LatePolicy::Drop) => {
                    late = true;
                    continue;
                }
                (true, LatePolicy::Revise { allowed_lateness }) => {
                    if self.watermark > w.end + crate::time::TimeDelta(allowed_lateness) {
                        late = true;
                        continue;
                    }
                }
                (false, _) => {}
            }
            let state_key: StateKey = (w.end, w.start, key.clone());
            let st = self.state.entry(state_key).or_insert_with(|| WindowState {
                aggs: self.aggs.iter().map(|a| a.build()).collect(),
                count: 0,
                emissions: 0,
            });
            for (agg, spec) in st.aggs.iter_mut().zip(&self.aggs) {
                agg.insert_row(e.ts, e.row.get(spec.field), &e.row);
            }
            st.count += 1;
            accepted = true;
        }
        if accepted {
            self.stats.accepted += 1;
        } else if late {
            self.stats.late_dropped += 1;
        } else {
            // No window contained the event (cannot happen for valid specs,
            // but account for it rather than losing events silently).
            self.stats.late_dropped += 1;
        }
    }

    /// Emit revisions for closed-but-retained windows that just received a
    /// late event (Revise policy only).
    fn emit_revisions(&mut self, e: &Event, out: &mut dyn FnMut(StreamElement)) {
        if !matches!(self.late_policy, LatePolicy::Revise { .. }) {
            return;
        }
        let key = self.key_of(&e.row);
        for w in self.spec.assign(e.ts) {
            if w.end > self.watermark {
                continue; // still open; normal emission will cover it
            }
            let state_key: StateKey = (w.end, w.start, key.clone());
            // Split borrows: compute the row, then bump counters.
            let (row, ts) = match self.state.get_mut(&state_key) {
                Some(st) if st.emissions > 0 => {
                    st.emissions += 1;
                    let res = WindowResult {
                        key: key.0.clone(),
                        window: w,
                        count: st.count,
                        revision: st.emissions - 1,
                        aggregates: st.aggs.iter().map(|a| a.finalize()).collect(),
                    };
                    (res.to_row(), w.end)
                }
                _ => continue,
            };
            self.stats.revisions += 1;
            self.out_seq += 1;
            out(StreamElement::Event(Event::new(ts, self.out_seq, row)));
        }
    }

    fn advance_watermark(&mut self, wm: Timestamp, out: &mut dyn FnMut(StreamElement)) {
        if wm <= self.watermark {
            // Watermarks never regress; equal watermarks are idempotent.
            return;
        }
        self.watermark = wm;
        // Emit every not-yet-emitted window with end <= wm, in (end, start,
        // key) order. Under Drop policy the state is removed; under Revise it
        // is retained until allowed lateness expires.
        let ends: Vec<StateKey> = self
            .state
            .range(..(wm, Timestamp::MAX, Key(Value::Null)))
            .map(|(k, _)| k.clone())
            .collect();
        for sk in ends {
            let (end, start, key) = sk.clone();
            if end > wm {
                continue;
            }
            let retain = match self.late_policy {
                LatePolicy::Drop => false,
                LatePolicy::Revise { allowed_lateness } => {
                    wm <= end + crate::time::TimeDelta(allowed_lateness)
                }
            };
            let emit_row = {
                let st = match self.state.get_mut(&sk) {
                    Some(st) => st,
                    None => continue,
                };
                if st.emissions > 0 {
                    None // already emitted (a revision window awaiting GC)
                } else {
                    st.emissions = 1;
                    Some(
                        WindowResult {
                            key: key.0.clone(),
                            window: Window::new(start, end),
                            count: st.count,
                            revision: 0,
                            aggregates: st.aggs.iter().map(|a| a.finalize()).collect(),
                        }
                        .to_row(),
                    )
                }
            };
            if let Some(row) = emit_row {
                self.stats.windows_emitted += 1;
                self.out_seq += 1;
                out(StreamElement::Event(Event::new(end, self.out_seq, row)));
            }
            if !retain {
                self.state.remove(&sk);
            }
        }
        out(StreamElement::Watermark(wm));
    }
}

impl Operator for WindowAggregateOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, el: StreamElement, out: &mut dyn FnMut(StreamElement)) {
        match el {
            StreamElement::Event(e) => {
                self.fold_event(&e);
                self.emit_revisions(&e, out);
            }
            StreamElement::Watermark(wm) => self.advance_watermark(wm, out),
            StreamElement::Flush => {
                self.advance_watermark(Timestamp::MAX, out);
                out(StreamElement::Flush);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateKind;

    fn op(spec: WindowSpec, policy: LatePolicy) -> WindowAggregateOp {
        WindowAggregateOp::new(
            spec,
            vec![AggregateSpec::new(AggregateKind::Sum, 0, "sum")],
            None,
            policy,
        )
        .unwrap()
    }

    fn ev(ts: u64, seq: u64, v: f64) -> StreamElement {
        StreamElement::Event(Event::new(ts, seq, Row::new([Value::Float(v)])))
    }

    fn run(op: &mut WindowAggregateOp, input: Vec<StreamElement>) -> Vec<WindowResult> {
        let mut outs = Vec::new();
        for el in input {
            op.process(el, &mut |o| outs.push(o));
        }
        outs.iter()
            .filter_map(|o| o.as_event())
            .filter_map(|e| WindowResult::from_row(&e.row))
            .collect()
    }

    #[test]
    fn tumbling_sum_emits_on_watermark() {
        let mut w = op(WindowSpec::tumbling(10u64), LatePolicy::Drop);
        let results = run(
            &mut w,
            vec![
                ev(1, 1, 1.0),
                ev(5, 2, 2.0),
                ev(12, 3, 4.0),
                StreamElement::Watermark(Timestamp(10)),
                StreamElement::Flush,
            ],
        );
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].window, Window::new(Timestamp(0), Timestamp(10)));
        assert_eq!(results[0].aggregates[0], Value::Float(3.0));
        assert_eq!(results[0].count, 2);
        assert_eq!(results[1].aggregates[0], Value::Float(4.0));
        assert_eq!(w.stats().windows_emitted, 2);
    }

    #[test]
    fn out_of_order_event_before_watermark_is_included() {
        let mut w = op(WindowSpec::tumbling(10u64), LatePolicy::Drop);
        let results = run(
            &mut w,
            vec![ev(8, 1, 1.0), ev(2, 2, 2.0), StreamElement::Flush],
        );
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].aggregates[0], Value::Float(3.0));
        assert_eq!(w.stats().late_dropped, 0);
    }

    #[test]
    fn late_event_is_dropped_and_counted_under_drop_policy() {
        let mut w = op(WindowSpec::tumbling(10u64), LatePolicy::Drop);
        let results = run(
            &mut w,
            vec![
                ev(5, 1, 1.0),
                StreamElement::Watermark(Timestamp(10)),
                ev(3, 2, 99.0), // window [0,10) already emitted
                StreamElement::Flush,
            ],
        );
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].aggregates[0], Value::Float(1.0));
        assert_eq!(w.stats().late_dropped, 1);
        assert_eq!(w.stats().accepted, 1);
    }

    #[test]
    fn late_event_produces_revision_under_revise_policy() {
        let mut w = op(
            WindowSpec::tumbling(10u64),
            LatePolicy::Revise {
                allowed_lateness: 100,
            },
        );
        let results = run(
            &mut w,
            vec![
                ev(5, 1, 1.0),
                StreamElement::Watermark(Timestamp(10)),
                ev(3, 2, 2.0),
                StreamElement::Flush,
            ],
        );
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].revision, 0);
        assert_eq!(results[0].aggregates[0], Value::Float(1.0));
        assert_eq!(results[1].revision, 1);
        assert_eq!(results[1].aggregates[0], Value::Float(3.0));
        assert_eq!(w.stats().revisions, 1);
    }

    #[test]
    fn revise_policy_drops_past_allowed_lateness() {
        let mut w = op(
            WindowSpec::tumbling(10u64),
            LatePolicy::Revise {
                allowed_lateness: 5,
            },
        );
        let results = run(
            &mut w,
            vec![
                ev(5, 1, 1.0),
                StreamElement::Watermark(Timestamp(20)), // wm > end+5 → state GC'd
                ev(3, 2, 2.0),
                StreamElement::Flush,
            ],
        );
        assert_eq!(results.len(), 1);
        assert_eq!(w.stats().late_dropped, 1);
        assert_eq!(w.open_windows(), 0);
    }

    #[test]
    fn keyed_aggregation_separates_groups() {
        let mut w = WindowAggregateOp::new(
            WindowSpec::tumbling(10u64),
            vec![AggregateSpec::new(AggregateKind::Sum, 1, "sum")],
            Some(0),
            LatePolicy::Drop,
        )
        .unwrap();
        let mk = |ts: u64, seq: u64, k: &str, v: f64| {
            StreamElement::Event(Event::new(
                ts,
                seq,
                Row::new([Value::str(k), Value::Float(v)]),
            ))
        };
        let results = run(
            &mut w,
            vec![
                mk(1, 1, "a", 1.0),
                mk(2, 2, "b", 10.0),
                mk(3, 3, "a", 2.0),
                StreamElement::Flush,
            ],
        );
        assert_eq!(results.len(), 2);
        let mut sums: Vec<(String, f64)> = results
            .iter()
            .map(|r| {
                (
                    r.key.as_str().unwrap().to_string(),
                    r.aggregates[0].as_f64().unwrap(),
                )
            })
            .collect();
        sums.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(sums, vec![("a".into(), 3.0), ("b".into(), 10.0)]);
    }

    #[test]
    fn sliding_windows_count_events_in_each_instance() {
        let mut w = WindowAggregateOp::new(
            WindowSpec::sliding(10u64, 5u64),
            vec![AggregateSpec::new(AggregateKind::Count, 0, "n")],
            None,
            LatePolicy::Drop,
        )
        .unwrap();
        let results = run(&mut w, vec![ev(7, 1, 1.0), StreamElement::Flush]);
        // ts=7 belongs to [0,10) and [5,15).
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].window, Window::new(Timestamp(0), Timestamp(10)));
        assert_eq!(results[1].window, Window::new(Timestamp(5), Timestamp(15)));
        for r in &results {
            assert_eq!(r.aggregates[0], Value::Int(1));
        }
    }

    #[test]
    fn emission_order_is_by_window_end() {
        let mut w = op(WindowSpec::sliding(10u64, 5u64), LatePolicy::Drop);
        let results = run(
            &mut w,
            vec![
                ev(3, 1, 1.0),
                ev(13, 2, 2.0),
                ev(23, 3, 4.0),
                StreamElement::Flush,
            ],
        );
        let ends: Vec<u64> = results.iter().map(|r| r.window.end.raw()).collect();
        let mut sorted = ends.clone();
        sorted.sort();
        assert_eq!(ends, sorted);
    }

    #[test]
    fn watermarks_are_forwarded_and_never_regress() {
        let mut w = op(WindowSpec::tumbling(10u64), LatePolicy::Drop);
        let mut outs = Vec::new();
        w.process(StreamElement::Watermark(Timestamp(10)), &mut |o| {
            outs.push(o)
        });
        w.process(StreamElement::Watermark(Timestamp(5)), &mut |o| {
            outs.push(o)
        });
        w.process(StreamElement::Watermark(Timestamp(20)), &mut |o| {
            outs.push(o)
        });
        let wms: Vec<Timestamp> = outs.iter().filter_map(|o| o.implied_watermark()).collect();
        assert_eq!(wms, vec![Timestamp(10), Timestamp(20)]);
    }

    #[test]
    fn result_row_roundtrip() {
        let r = WindowResult {
            key: Value::str("k"),
            window: Window::new(Timestamp(0), Timestamp(10)),
            count: 3,
            revision: 1,
            aggregates: vec![Value::Float(1.5), Value::Int(2)],
        };
        assert_eq!(WindowResult::from_row(&r.to_row()), Some(r));
    }

    #[test]
    fn rejects_empty_aggregate_list() {
        assert!(WindowAggregateOp::new(
            WindowSpec::tumbling(10u64),
            vec![],
            None,
            LatePolicy::Drop
        )
        .is_err());
    }

    #[test]
    fn flush_emits_everything() {
        let mut w = op(WindowSpec::tumbling(10u64), LatePolicy::Drop);
        let results = run(
            &mut w,
            vec![ev(5, 1, 1.0), ev(105, 2, 2.0), StreamElement::Flush],
        );
        assert_eq!(results.len(), 2);
        assert_eq!(w.open_windows(), 0);
    }
}
