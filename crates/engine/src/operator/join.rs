//! Event-time interval join of two streams.
//!
//! [`IntervalJoin`] matches a left event `l` with every right event `r` such
//! that the keys are equal and `r.ts ∈ [l.ts - before, l.ts + after]`. Like
//! the window aggregation operator it is watermark-driven: state on each side
//! is retained until the opposite side's watermark proves no further matches
//! can appear, so out-of-order inputs still join correctly as long as they
//! respect the watermark.

use crate::event::{Event, StreamElement};
use crate::time::{TimeDelta, Timestamp};
use crate::value::{Key, Row, Value};
use std::collections::BTreeMap;

/// Which input an element arrived on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The left input.
    Left,
    /// The right input.
    Right,
}

/// Counters for the join operator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Output pairs produced.
    pub matches: u64,
    /// Events dropped because they arrived behind the opposite watermark by
    /// more than the join bound (they could already have been cleaned up).
    pub late_dropped: u64,
}

/// A streaming event-time interval join.
///
/// Output rows are the concatenation `left.row ++ right.row`; the output
/// timestamp is `max(l.ts, r.ts)` (the moment the pair is complete in event
/// time).
pub struct IntervalJoin {
    key_left: usize,
    key_right: usize,
    before: TimeDelta,
    after: TimeDelta,
    left: BTreeMap<(Timestamp, u64), Event>,
    right: BTreeMap<(Timestamp, u64), Event>,
    wm_left: Timestamp,
    wm_right: Timestamp,
    out_wm: Timestamp,
    out_seq: u64,
    stats: JoinStats,
}

impl IntervalJoin {
    /// Build a join matching `r.ts ∈ [l.ts - before, l.ts + after]` with
    /// equality on the given key columns.
    pub fn new(
        key_left: usize,
        key_right: usize,
        before: impl Into<TimeDelta>,
        after: impl Into<TimeDelta>,
    ) -> Self {
        IntervalJoin {
            key_left,
            key_right,
            before: before.into(),
            after: after.into(),
            left: BTreeMap::new(),
            right: BTreeMap::new(),
            wm_left: Timestamp::MIN,
            wm_right: Timestamp::MIN,
            out_wm: Timestamp::MIN,
            out_seq: 0,
            stats: JoinStats::default(),
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> JoinStats {
        self.stats
    }

    /// Number of buffered events on (left, right).
    pub fn buffered(&self) -> (usize, usize) {
        (self.left.len(), self.right.len())
    }

    /// Feed one element on the given side; matched pairs are pushed to `out`.
    pub fn push(&mut self, side: Side, el: StreamElement, out: &mut dyn FnMut(StreamElement)) {
        match el {
            StreamElement::Event(e) => self.push_event(side, e, out),
            StreamElement::Watermark(t) => self.advance(side, t, out),
            StreamElement::Flush => self.advance(side, Timestamp::MAX, out),
        }
    }

    /// Run both inputs to completion (convenience for tests/examples): feeds
    /// the two arrival-ordered streams interleaved by `seq`, returns outputs.
    pub fn run(
        mut self,
        left: Vec<StreamElement>,
        right: Vec<StreamElement>,
    ) -> (Vec<StreamElement>, JoinStats) {
        let mut out = Vec::new();
        let mut l = left.into_iter().peekable();
        let mut r = right.into_iter().peekable();
        let seq_of = |el: &StreamElement| el.as_event().map(|e| e.seq);
        loop {
            let take_left = match (l.peek(), r.peek()) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(a), Some(b)) => match (seq_of(a), seq_of(b)) {
                    (Some(sa), Some(sb)) => sa <= sb,
                    // Punctuation is consumed eagerly from the left first.
                    (None, _) => true,
                    (_, None) => false,
                },
            };
            if take_left {
                // quill-lint: allow(no-panic, reason = "take_left is only true when l.peek() returned Some")
                let el = l.next().expect("peeked");
                self.push(Side::Left, el, &mut |o| out.push(o));
            } else {
                // quill-lint: allow(no-panic, reason = "take_left is only false when r.peek() returned Some")
                let el = r.next().expect("peeked");
                self.push(Side::Right, el, &mut |o| out.push(o));
            }
        }
        let stats = self.stats;
        (out, stats)
    }

    fn key_of(&self, side: Side, row: &Row) -> Key {
        let idx = match side {
            Side::Left => self.key_left,
            Side::Right => self.key_right,
        };
        Key(row.get(idx).clone())
    }

    fn push_event(&mut self, side: Side, e: Event, out: &mut dyn FnMut(StreamElement)) {
        // An event can be cleaned-up-before-arrival if it is behind its own
        // side's GC horizon (see `gc`): then matches may already be lost, so
        // drop it for determinism rather than emitting a partial match set.
        let horizon = self.gc_horizon(side);
        if e.ts < horizon {
            self.stats.late_dropped += 1;
            return;
        }
        let key = self.key_of(side, &e.row);
        // Probe the opposite side.
        let (probe, lo, hi) = match side {
            // left l matches r.ts in [l.ts - before, l.ts + after]
            Side::Left => (&self.right, e.ts - self.before, e.ts + self.after),
            // right r matches l.ts in [r.ts - after, r.ts + before]
            Side::Right => (&self.left, e.ts - self.after, e.ts + self.before),
        };
        let mut pairs: Vec<(Event, Event)> = Vec::new();
        for (_, other) in probe.range((lo, 0)..=(hi, u64::MAX)) {
            let other_key = self.key_of(
                match side {
                    Side::Left => Side::Right,
                    Side::Right => Side::Left,
                },
                &other.row,
            );
            if other_key == key {
                let (l, r) = match side {
                    // quill-lint: allow(hot-path-alloc, reason = "a join emits one owned (l, r) pair per match; matches, not events, bound the copies")
                    Side::Left => (e.clone(), other.clone()),
                    // quill-lint: allow(hot-path-alloc, reason = "same owned-pair emission as the Left arm")
                    Side::Right => (other.clone(), e.clone()),
                };
                pairs.push((l, r));
            }
        }
        for (l, r) in pairs {
            self.emit_pair(l, r, out);
        }
        // Store for future matches from the opposite side.
        match side {
            Side::Left => self.left.insert((e.ts, e.seq), e),
            Side::Right => self.right.insert((e.ts, e.seq), e),
        };
    }

    fn emit_pair(&mut self, l: Event, r: Event, out: &mut dyn FnMut(StreamElement)) {
        let ts = l.ts.max(r.ts);
        let mut vals: Vec<Value> = l.row.values().to_vec();
        vals.extend(r.row.values().iter().cloned());
        self.out_seq += 1;
        self.stats.matches += 1;
        out(StreamElement::Event(Event::new(
            ts,
            self.out_seq,
            vals.into_iter().collect(),
        )));
    }

    /// Earliest timestamp an arriving event on `side` may still carry and be
    /// joined completely (its own watermark; events behind it are late).
    fn gc_horizon(&self, side: Side) -> Timestamp {
        match side {
            Side::Left => self.wm_left,
            Side::Right => self.wm_right,
        }
    }

    fn advance(&mut self, side: Side, t: Timestamp, out: &mut dyn FnMut(StreamElement)) {
        match side {
            Side::Left => self.wm_left = self.wm_left.max(t),
            Side::Right => self.wm_right = self.wm_right.max(t),
        }
        // Left state with l.ts + after < wm_right can never match a future
        // right event (future right ts >= wm_right); symmetric for right.
        let keep_left_from = self.wm_right - self.after;
        let keep_right_from = self.wm_left - self.before;
        self.left = self.left.split_off(&(keep_left_from, 0));
        self.right = self.right.split_off(&(keep_right_from, 0));
        // Output watermark: pairs carry ts = max(l, r) >= each input ts, so
        // min of input watermarks is safe.
        let new_wm = self.wm_left.min(self.wm_right);
        if new_wm > self.out_wm {
            self.out_wm = new_wm;
            if new_wm == Timestamp::MAX {
                out(StreamElement::Flush);
            } else {
                out(StreamElement::Watermark(new_wm));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, seq: u64, key: i64, v: f64) -> StreamElement {
        StreamElement::Event(Event::new(
            ts,
            seq,
            Row::new([Value::Int(key), Value::Float(v)]),
        ))
    }

    fn matches_of(out: &[StreamElement]) -> Vec<(u64, i64, f64, f64)> {
        out.iter()
            .filter_map(|e| e.as_event())
            .map(|e| {
                (
                    e.ts.raw(),
                    e.row.get(0).as_i64().unwrap(),
                    e.row.f64(1).unwrap(),
                    e.row.f64(3).unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn joins_within_interval_and_key() {
        let join = IntervalJoin::new(0, 0, 5u64, 5u64);
        let left = vec![ev(10, 1, 7, 1.0), StreamElement::Flush];
        let right = vec![
            ev(8, 2, 7, 2.0),  // in range, same key → match
            ev(20, 3, 7, 3.0), // out of range
            ev(12, 4, 9, 4.0), // in range, wrong key
            StreamElement::Flush,
        ];
        let (out, stats) = join.run(left, right);
        let m = matches_of(&out);
        assert_eq!(m, vec![(10, 7, 1.0, 2.0)]);
        assert_eq!(stats.matches, 1);
    }

    #[test]
    fn asymmetric_bounds() {
        // r.ts in [l.ts - 0, l.ts + 10]: right events strictly before left
        // never match.
        let join = IntervalJoin::new(0, 0, 0u64, 10u64);
        let left = vec![ev(10, 1, 1, 1.0), StreamElement::Flush];
        let right = vec![ev(9, 2, 1, 9.0), ev(15, 3, 1, 15.0), StreamElement::Flush];
        let (out, _) = join.run(left, right);
        let m = matches_of(&out);
        assert_eq!(m, vec![(15, 1, 1.0, 15.0)]);
    }

    #[test]
    fn out_of_order_inputs_join_when_watermark_respected() {
        let join = IntervalJoin::new(0, 0, 5u64, 5u64);
        // Right event arrives (by seq) before the left one despite a later ts.
        let left = vec![ev(10, 3, 1, 1.0), StreamElement::Flush];
        let right = vec![ev(12, 1, 1, 2.0), ev(7, 2, 1, 3.0), StreamElement::Flush];
        let (out, stats) = join.run(left, right);
        assert_eq!(stats.matches, 2);
        let m = matches_of(&out);
        assert!(m.contains(&(12, 1, 1.0, 2.0)));
        assert!(m.contains(&(10, 1, 1.0, 3.0)));
    }

    #[test]
    fn state_is_garbage_collected_by_watermarks() {
        let mut join = IntervalJoin::new(0, 0, 5u64, 5u64);
        let mut sink = Vec::new();
        for i in 0..100u64 {
            join.push(Side::Left, ev(i * 10, i * 2, 1, 0.0), &mut |o| sink.push(o));
            join.push(Side::Right, ev(i * 10, i * 2 + 1, 2, 0.0), &mut |o| {
                sink.push(o)
            });
            join.push(
                Side::Left,
                StreamElement::Watermark(Timestamp(i * 10)),
                &mut |o| sink.push(o),
            );
            join.push(
                Side::Right,
                StreamElement::Watermark(Timestamp(i * 10)),
                &mut |o| sink.push(o),
            );
        }
        let (l, r) = join.buffered();
        assert!(l <= 3, "left state grew: {l}");
        assert!(r <= 3, "right state grew: {r}");
    }

    #[test]
    fn output_watermarks_monotone() {
        let join = IntervalJoin::new(0, 0, 5u64, 5u64);
        let left = vec![
            ev(10, 1, 1, 1.0),
            StreamElement::Watermark(Timestamp(10)),
            StreamElement::Flush,
        ];
        let right = vec![
            ev(11, 2, 1, 2.0),
            StreamElement::Watermark(Timestamp(8)),
            StreamElement::Flush,
        ];
        let (out, _) = join.run(left, right);
        let wms: Vec<Timestamp> = out
            .iter()
            .filter_map(|e| e.implied_watermark())
            .filter(|t| *t != Timestamp::MAX)
            .collect();
        for pair in wms.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }
}
