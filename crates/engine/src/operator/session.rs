//! Session windows: activity bursts separated by gaps.
//!
//! A session groups events (per key) whose timestamps are within `gap` of
//! each other; a session closes once the watermark passes its end plus the
//! gap (no event could extend it anymore). Unlike tumbling/sliding windows,
//! session extents depend on the *data*, so out-of-order events can *merge*
//! previously separate sessions — the operator handles this by keeping the
//! raw per-session contents and recomputing aggregates at emission (exactly
//! once, when the session is sealed), which keeps merging trivially correct
//! at O(session) memory.

use crate::aggregate::AggregateSpec;
use crate::error::{EngineError, Result};
use crate::event::{Event, StreamElement};
use crate::fiba::{FibaTree, WindowState};
use crate::operator::window_op::WindowResult;
use crate::operator::Operator;
use crate::time::{TimeDelta, Timestamp};
use crate::value::{Key, Value};
use crate::window::Window;
use std::collections::BTreeMap;

/// Counters for the session operator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionOpStats {
    /// Events folded into sessions.
    pub accepted: u64,
    /// Events dropped because their session range was already sealed.
    pub late_dropped: u64,
    /// Session merges triggered by out-of-order events.
    pub merges: u64,
    /// Sessions emitted.
    pub sessions_emitted: u64,
}

/// One open session's raw contents.
struct Session {
    start: Timestamp,
    /// Inclusive max event timestamp (session extent = [start, end_incl]).
    end_incl: Timestamp,
    /// Raw (ts, per-aggregate field values) in arrival order — kept so
    /// merges stay exact.
    contents: Vec<(Timestamp, Vec<Value>)>,
    /// [`WindowState::Fiba`] only: finger B-tree over `(ts, index into
    /// contents)`. A straggler lands in O(log d) and in-order traversal at
    /// emission yields the stable-by-timestamp order directly, replacing the
    /// legacy per-aggregate clone-and-sort of the raw contents.
    index: Option<FibaTree<()>>,
}

impl Session {
    fn new(ts: Timestamp, values: Vec<Value>, mode: WindowState) -> Session {
        let index = match mode {
            WindowState::Fiba => {
                let mut t = FibaTree::new();
                t.insert((ts.raw(), 0), ());
                Some(t)
            }
            WindowState::Legacy => None,
        };
        Session {
            start: ts,
            end_incl: ts,
            contents: vec![(ts, values)],
            index,
        }
    }
}

/// Keyed session-window aggregation.
pub struct SessionWindowOp {
    name: String,
    gap: TimeDelta,
    aggs: Vec<AggregateSpec>,
    key_field: Option<usize>,
    /// Open sessions per key, ordered by start.
    state: BTreeMap<Key, Vec<Session>>,
    mode: WindowState,
    watermark: Timestamp,
    out_seq: u64,
    stats: SessionOpStats,
}

impl SessionWindowOp {
    /// Build the operator; `gap` must be positive.
    pub fn new(
        gap: impl Into<TimeDelta>,
        aggs: Vec<AggregateSpec>,
        key_field: Option<usize>,
    ) -> Result<SessionWindowOp> {
        let gap = gap.into();
        if gap == TimeDelta::ZERO {
            return Err(EngineError::InvalidWindow("session gap must be > 0".into()));
        }
        if aggs.is_empty() {
            return Err(EngineError::InvalidAggregate(
                "session aggregation requires at least one aggregate".into(),
            ));
        }
        for a in &aggs {
            a.validate()?;
            if matches!(
                a.kind,
                crate::aggregate::AggregateKind::ArgMin(_)
                    | crate::aggregate::AggregateKind::ArgMax(_)
            ) {
                return Err(EngineError::InvalidAggregate(
                    "session windows do not support arg-aggregates (state keeps                      only the aggregated field, not full rows)"
                        .into(),
                ));
            }
        }
        Ok(SessionWindowOp {
            name: format!("session-agg(gap={gap})"),
            gap,
            aggs,
            key_field,
            state: BTreeMap::new(),
            mode: WindowState::Legacy,
            watermark: Timestamp::MIN,
            out_seq: 0,
            stats: SessionOpStats::default(),
        })
    }

    /// Select the session content layout: [`WindowState::Fiba`] keeps a
    /// finger B-tree time index per open session (O(log d) straggler
    /// inserts, sort-free emission), [`WindowState::Legacy`] the plain
    /// arrival-order buffer sorted at emission. Outputs are identical —
    /// both finalize in stable `(ts, arrival)` order. Call before
    /// processing any elements.
    pub fn with_window_state(mut self, mode: WindowState) -> Self {
        self.mode = mode;
        self
    }

    /// The content layout in effect.
    pub fn window_state(&self) -> WindowState {
        self.mode
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> SessionOpStats {
        self.stats
    }

    /// Number of open sessions across keys.
    pub fn open_sessions(&self) -> usize {
        self.state.values().map(|v| v.len()).sum()
    }

    fn key_of(&self, e: &Event) -> Key {
        match self.key_field {
            Some(i) => Key(e.row.get(i).clone()),
            None => Key(Value::Null),
        }
    }

    fn fold_event(&mut self, e: &Event) {
        // A session containing ts would have closed once the watermark
        // passed ts + gap; events older than that are late. (An event with
        // `wm - gap < ts < wm` — possible only as an upstream late pass —
        // is accepted but may start a fresh session where ground truth
        // would have extended an already-sealed one: sealing is
        // zero-allowed-lateness, matching the Drop policy of the window
        // operator.)
        if e.ts + self.gap <= self.watermark {
            self.stats.late_dropped += 1;
            return;
        }
        let key = self.key_of(e);
        let values: Vec<Value> = self
            .aggs
            .iter()
            .map(|a| e.row.get(a.field).clone())
            .collect();
        let sessions = self.state.entry(key).or_default();
        // Find all sessions this event touches (within gap on either side).
        let lo = e.ts.saturating_sub(self.gap);
        let hi = e.ts + self.gap;
        let mut touching: Vec<usize> = sessions
            .iter()
            .enumerate()
            .filter(|(_, s)| s.start <= hi && lo <= s.end_incl)
            .map(|(i, _)| i)
            .collect();
        match touching.len() {
            0 => {
                let pos = sessions
                    .iter()
                    .position(|s| s.start > e.ts)
                    .unwrap_or(sessions.len());
                sessions.insert(pos, Session::new(e.ts, values, self.mode));
            }
            1 => {
                let s = &mut sessions[touching[0]];
                s.start = s.start.min(e.ts);
                s.end_incl = s.end_incl.max(e.ts);
                if let Some(ix) = &mut s.index {
                    ix.insert((e.ts.raw(), s.contents.len() as u64), ());
                }
                s.contents.push((e.ts, values));
            }
            _ => {
                // Out-of-order bridge event: merge all touched sessions.
                self.stats.merges += (touching.len() - 1) as u64;
                touching.sort_unstable();
                let mut merged = Session::new(e.ts, values, self.mode);
                // Remove from the back to keep indices valid.
                for &i in touching.iter().rev() {
                    let s = sessions.remove(i);
                    merged.start = merged.start.min(s.start);
                    merged.end_incl = merged.end_incl.max(s.end_incl);
                    // Shift the absorbed session's index entries past the
                    // contents already merged; equal timestamps cannot occur
                    // across distinct sessions (extents are > gap apart), so
                    // this cannot perturb stable-by-ts order.
                    let off = merged.contents.len() as u64;
                    if let (Some(mi), Some(si)) = (&mut merged.index, &s.index) {
                        si.for_each(&mut |k, _| mi.insert((k.0, k.1 + off), ()));
                    }
                    merged.contents.extend(s.contents);
                }
                let pos = sessions
                    .iter()
                    .position(|s| s.start > merged.start)
                    .unwrap_or(sessions.len());
                sessions.insert(pos, merged);
            }
        }
        self.stats.accepted += 1;
    }

    fn emit_closed(&mut self, wm: Timestamp, out: &mut dyn FnMut(StreamElement)) {
        // A session is sealed when no future event (ts >= wm) can be within
        // gap of its end: end_incl + gap < wm... use <= wm for half-open
        // watermark semantics (future ts >= wm; needs ts <= end+gap to
        // extend, so sealed iff end_incl + gap < wm).
        let mut emissions: Vec<(Timestamp, u64, WindowResult)> = Vec::new();
        for (key, sessions) in &mut self.state {
            let mut i = 0;
            while i < sessions.len() {
                if sessions[i].end_incl + self.gap < wm {
                    let s = sessions.remove(i);
                    let aggregates: Vec<Value> = match &s.index {
                        // FiBA layout: the tree already yields stable
                        // `(ts, arrival)` order, so feed aggregators
                        // directly — no per-aggregate clone-and-sort.
                        Some(ix) => {
                            let mut built: Vec<Box<dyn crate::aggregate::Aggregator>> =
                                self.aggs.iter().map(|a| a.build()).collect();
                            ix.for_each(&mut |k, _| {
                                if let Some((t, vs)) = s.contents.get(k.1 as usize) {
                                    for (ai, agg) in built.iter_mut().enumerate() {
                                        agg.insert(*t, &vs[ai]);
                                    }
                                }
                            });
                            built.iter().map(|a| a.finalize()).collect()
                        }
                        None => self
                            .aggs
                            .iter()
                            .enumerate()
                            .map(|(ai, spec)| {
                                let vals: Vec<(Timestamp, Value)> = s
                                    .contents
                                    .iter()
                                    // quill-lint: allow(hot-path-alloc, reason = "session-window finalize: copies happen once per closed window, not per event")
                                    .map(|(t, vs)| (*t, vs[ai].clone()))
                                    .collect();
                                spec.compute(&vals)
                            })
                            .collect(),
                    };
                    let window =
                        Window::new(s.start, Timestamp(s.end_incl.raw().saturating_add(1)));
                    emissions.push((
                        window.end,
                        s.contents.len() as u64,
                        WindowResult {
                            // quill-lint: allow(hot-path-alloc, reason = "one key copy per emitted session window")
                            key: key.0.clone(),
                            window,
                            count: s.contents.len() as u64,
                            revision: 0,
                            aggregates,
                        },
                    ));
                } else {
                    i += 1;
                }
            }
        }
        self.state.retain(|_, v| !v.is_empty());
        // Deterministic emission order: by session end, then key order is
        // already stable from the map walk; sort to be explicit.
        emissions.sort_by(|a, b| {
            (a.2.window.end, a.2.window.start)
                .cmp(&(b.2.window.end, b.2.window.start))
                .then_with(|| Key(a.2.key.clone()).cmp(&Key(b.2.key.clone())))
        });
        for (ts, _, r) in emissions {
            self.stats.sessions_emitted += 1;
            self.out_seq += 1;
            out(StreamElement::Event(Event::new(
                ts,
                self.out_seq,
                r.to_row(),
            )));
        }
    }
}

impl Operator for SessionWindowOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, el: StreamElement, out: &mut dyn FnMut(StreamElement)) {
        match el {
            StreamElement::Event(e) => self.fold_event(&e),
            StreamElement::Watermark(wm) => {
                if wm > self.watermark {
                    self.watermark = wm;
                    self.emit_closed(wm, out);
                    out(StreamElement::Watermark(wm));
                }
            }
            StreamElement::Flush => {
                self.watermark = Timestamp::MAX;
                self.emit_closed(Timestamp::MAX, out);
                out(StreamElement::Flush);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateKind;
    use crate::value::Row;

    fn op(gap: u64) -> SessionWindowOp {
        SessionWindowOp::new(
            gap,
            vec![
                AggregateSpec::new(AggregateKind::Count, 0, "n"),
                AggregateSpec::new(AggregateKind::Sum, 0, "sum"),
            ],
            None,
        )
        .unwrap()
    }

    fn ev(ts: u64, seq: u64, v: f64) -> StreamElement {
        StreamElement::Event(Event::new(ts, seq, Row::new([Value::Float(v)])))
    }

    fn run(op: &mut SessionWindowOp, input: Vec<StreamElement>) -> Vec<WindowResult> {
        let mut results = Vec::new();
        for el in input {
            op.process(el, &mut |o| {
                if let StreamElement::Event(e) = o {
                    if let Some(r) = WindowResult::from_row(&e.row) {
                        results.push(r);
                    }
                }
            });
        }
        results
    }

    #[test]
    fn splits_on_gaps() {
        let mut s = op(10);
        let results = run(
            &mut s,
            vec![
                ev(0, 0, 1.0),
                ev(5, 1, 2.0),
                ev(30, 2, 4.0), // 25 > gap → new session
                StreamElement::Flush,
            ],
        );
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].window, Window::new(Timestamp(0), Timestamp(6)));
        assert_eq!(results[0].count, 2);
        assert_eq!(results[0].aggregates[1], Value::Float(3.0));
        assert_eq!(results[1].window, Window::new(Timestamp(30), Timestamp(31)));
    }

    #[test]
    fn out_of_order_event_merges_sessions() {
        let mut s = op(10);
        // Two sessions 0..=5 and 20..=25, then a late bridge at 12 connects
        // them (12 within gap of both).
        let results = run(
            &mut s,
            vec![
                ev(0, 0, 1.0),
                ev(5, 1, 1.0),
                ev(20, 2, 1.0),
                ev(25, 3, 1.0),
                ev(12, 4, 1.0),
                StreamElement::Flush,
            ],
        );
        assert_eq!(results.len(), 1, "sessions should have merged: {results:?}");
        assert_eq!(results[0].window, Window::new(Timestamp(0), Timestamp(26)));
        assert_eq!(results[0].count, 5);
        assert_eq!(s.stats().merges, 1);
    }

    #[test]
    fn sessions_close_only_past_gap_watermark() {
        let mut s = op(10);
        let mut results = run(
            &mut s,
            vec![
                ev(0, 0, 1.0),
                StreamElement::Watermark(Timestamp(10)).clone(),
            ],
        );
        assert!(results.is_empty(), "session may still be extended at wm=10");
        results = run(&mut s, vec![StreamElement::Watermark(Timestamp(11))]);
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn late_event_past_sealed_session_is_dropped() {
        let mut s = op(10);
        let results = run(
            &mut s,
            vec![
                ev(0, 0, 1.0),
                StreamElement::Watermark(Timestamp(50)),
                ev(3, 1, 9.0), // 3 + 10 <= 50 → late
                StreamElement::Flush,
            ],
        );
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].count, 1);
        assert_eq!(s.stats().late_dropped, 1);
    }

    #[test]
    fn keyed_sessions_are_independent() {
        let mut s = SessionWindowOp::new(
            10u64,
            vec![AggregateSpec::new(AggregateKind::Count, 1, "n")],
            Some(0),
        )
        .unwrap();
        let mk = |ts: u64, seq: u64, k: i64| {
            StreamElement::Event(Event::new(
                ts,
                seq,
                Row::new([Value::Int(k), Value::Float(1.0)]),
            ))
        };
        let mut results = Vec::new();
        for el in [mk(0, 0, 1), mk(5, 1, 2), mk(8, 2, 1), StreamElement::Flush] {
            s.process(el, &mut |o| {
                if let StreamElement::Event(e) = o {
                    if let Some(r) = WindowResult::from_row(&e.row) {
                        results.push(r);
                    }
                }
            });
        }
        assert_eq!(results.len(), 2);
        let counts: Vec<u64> = results.iter().map(|r| r.count).collect();
        assert!(counts.contains(&2) && counts.contains(&1));
    }

    #[test]
    fn rejects_zero_gap_and_empty_aggs() {
        assert!(SessionWindowOp::new(
            0u64,
            vec![AggregateSpec::new(AggregateKind::Count, 0, "n")],
            None
        )
        .is_err());
        assert!(SessionWindowOp::new(10u64, vec![], None).is_err());
    }

    #[test]
    fn open_sessions_bookkeeping() {
        let mut s = op(10);
        let _ = run(&mut s, vec![ev(0, 0, 1.0), ev(100, 1, 1.0)]);
        assert_eq!(s.open_sessions(), 2);
        let _ = run(&mut s, vec![StreamElement::Flush]);
        assert_eq!(s.open_sessions(), 0);
    }

    #[test]
    fn fiba_contents_match_legacy_across_disorder_and_merges() {
        // Deterministic scrambled stream with bridge events, equal-timestamp
        // ties, watermarks, and lates: the FiBA content index must reproduce
        // the legacy stable-by-ts fold bit-exactly (integer-valued floats
        // keep Sum/Mean arithmetic identical — same values, same order).
        let mk = || {
            SessionWindowOp::new(
                10u64,
                vec![
                    AggregateSpec::new(AggregateKind::Count, 0, "n"),
                    AggregateSpec::new(AggregateKind::Sum, 0, "s"),
                    AggregateSpec::new(AggregateKind::Median, 0, "med"),
                    AggregateSpec::new(AggregateKind::DistinctCount, 0, "d"),
                    AggregateSpec::new(AggregateKind::First, 0, "f"),
                    AggregateSpec::new(AggregateKind::Last, 0, "l"),
                ],
                None,
            )
            .unwrap()
        };
        let mut input = Vec::new();
        let mut x: u64 = 0x5eed_c0de;
        for i in 0..400u64 {
            // xorshift: bursts every ~24 units with jitter, occasional deep
            // stragglers and duplicate timestamps.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let burst = (i / 6) * 24;
            let ts = match x % 10 {
                0..=7 => burst + x % 5, // in-burst (duplicate-prone) ts
                // Bridge: within gap of both the prior burst's tail
                // (burst−24..burst−20) and this burst's head → merge.
                8 => burst.saturating_sub(10),
                _ => burst.saturating_sub(60), // deep straggler (likely late)
            };
            input.push(ev(ts, i, (x % 7) as f64));
            if i % 40 == 39 {
                input.push(StreamElement::Watermark(Timestamp(
                    burst.saturating_sub(16),
                )));
            }
        }
        input.push(StreamElement::Flush);
        let mut fiba = mk().with_window_state(WindowState::Fiba);
        let mut legacy = mk();
        assert_eq!(fiba.window_state(), WindowState::Fiba);
        assert_eq!(legacy.window_state(), WindowState::Legacy);
        let rf = run(&mut fiba, input.clone());
        let rl = run(&mut legacy, input);
        assert_eq!(rf, rl);
        assert_eq!(fiba.stats(), legacy.stats());
        assert!(fiba.stats().merges > 0, "stream must exercise merges");
        assert!(fiba.stats().late_dropped > 0, "stream must exercise lates");
    }
}
