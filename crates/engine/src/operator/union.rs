//! Merging multiple input streams.
//!
//! Real deployments (and the simulated soccer/stock workloads) multiplex
//! many sources into one logical stream; each source is locally in order but
//! the merge is not, which is one of the canonical causes of disorder. The
//! merge here interleaves by *arrival order* (sequence number) — exactly what
//! a network tap would observe — and combines per-input watermarks with
//! `min`, the standard multi-input watermark rule.

use crate::event::StreamElement;
use crate::time::Timestamp;

/// Merge streams by arrival order (ascending `seq`), preserving each input's
/// internal arrival order. Watermarks are re-derived: whenever every input
/// has progressed past some per-input watermark, the minimum is emitted.
///
/// Inputs must each be internally sorted by `seq`; the output contains every
/// event exactly once and a non-decreasing watermark sequence. A single
/// trailing `Flush` is appended if any input carried one.
pub fn merge_by_arrival(inputs: Vec<Vec<StreamElement>>) -> Vec<StreamElement> {
    let n = inputs.len();
    let mut iters: Vec<std::iter::Peekable<std::vec::IntoIter<StreamElement>>> = inputs
        .into_iter()
        .map(|v| v.into_iter().peekable())
        .collect();
    // Per-input watermark progress; None = no watermark seen yet.
    let mut input_wm: Vec<Option<Timestamp>> = vec![None; n];
    let mut emitted_wm: Option<Timestamp> = None;
    let mut saw_flush = false;
    let mut out = Vec::new();

    loop {
        // Pick the input whose next *event* has the smallest seq; consume
        // punctuation eagerly as we encounter it at the head of any input.
        let mut best: Option<(usize, u64)> = None;
        for (i, it) in iters.iter_mut().enumerate() {
            loop {
                match it.peek() {
                    Some(StreamElement::Watermark(t)) => {
                        let t = *t;
                        input_wm[i] = Some(input_wm[i].map_or(t, |w| w.max(t)));
                        it.next();
                    }
                    Some(StreamElement::Flush) => {
                        saw_flush = true;
                        input_wm[i] = Some(Timestamp::MAX);
                        it.next();
                    }
                    Some(StreamElement::Event(e)) => {
                        if best.is_none_or(|(_, s)| e.seq < s) {
                            best = Some((i, e.seq));
                        }
                        break;
                    }
                    None => break,
                }
            }
        }
        // Combined watermark: min over inputs that have announced one;
        // only valid once every input has announced (or is exhausted, which
        // sets it to MAX via Flush or is treated as "no constraint" when the
        // input simply ended without punctuation).
        let combined: Option<Timestamp> = if input_wm
            .iter()
            .zip(iters.iter_mut())
            .all(|(wm, it)| wm.is_some() || it.peek().is_none())
        {
            input_wm.iter().flatten().copied().min()
        } else {
            None
        };
        if let Some(c) = combined {
            if c != Timestamp::MAX && emitted_wm.is_none_or(|e| c > e) {
                out.push(StreamElement::Watermark(c));
                emitted_wm = Some(c);
            }
        }
        match best {
            Some((i, _)) => {
                if let Some(el) = iters[i].next() {
                    out.push(el);
                }
            }
            None => break,
        }
    }
    if saw_flush {
        out.push(StreamElement::Flush);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::value::{Row, Value};

    fn ev(ts: u64, seq: u64) -> StreamElement {
        StreamElement::Event(Event::new(ts, seq, Row::new([Value::Int(ts as i64)])))
    }

    #[test]
    fn merges_in_arrival_order() {
        let a = vec![ev(10, 1), ev(30, 4)];
        let b = vec![ev(20, 2), ev(5, 3)];
        let merged = merge_by_arrival(vec![a, b]);
        let seqs: Vec<u64> = merged
            .iter()
            .filter_map(|e| e.as_event())
            .map(|e| e.seq)
            .collect();
        assert_eq!(seqs, vec![1, 2, 3, 4]);
    }

    #[test]
    fn watermark_is_min_across_inputs() {
        let a = vec![
            ev(10, 1),
            StreamElement::Watermark(Timestamp(10)),
            ev(30, 4),
        ];
        let b = vec![
            ev(20, 2),
            StreamElement::Watermark(Timestamp(20)),
            ev(25, 3),
        ];
        let merged = merge_by_arrival(vec![a, b]);
        let wms: Vec<Timestamp> = merged
            .iter()
            .filter_map(|e| e.implied_watermark())
            .collect();
        // Combined watermark can only be min(10, 20) = 10, then stays until
        // inputs advance further (they don't).
        assert_eq!(wms, vec![Timestamp(10)]);
    }

    #[test]
    fn watermarks_never_regress_in_output() {
        let a = vec![
            ev(10, 1),
            StreamElement::Watermark(Timestamp(50)),
            ev(60, 3),
            StreamElement::Flush,
        ];
        let b = vec![
            ev(20, 2),
            StreamElement::Watermark(Timestamp(30)),
            ev(70, 4),
            StreamElement::Flush,
        ];
        let merged = merge_by_arrival(vec![a, b]);
        let wms: Vec<Timestamp> = merged
            .iter()
            .filter_map(|e| e.implied_watermark())
            .filter(|t| *t != Timestamp::MAX)
            .collect();
        for pair in wms.windows(2) {
            assert!(pair[0] < pair[1], "watermarks regressed: {pair:?}");
        }
        assert!(merged.last().unwrap().is_flush());
    }

    #[test]
    fn all_events_survive_exactly_once() {
        let a: Vec<StreamElement> = (0..50).map(|i| ev(i * 2, i * 2)).collect();
        let b: Vec<StreamElement> = (0..50).map(|i| ev(i * 2 + 1, i * 2 + 1)).collect();
        let merged = merge_by_arrival(vec![a, b]);
        let mut seqs: Vec<u64> = merged
            .iter()
            .filter_map(|e| e.as_event())
            .map(|e| e.seq)
            .collect();
        seqs.sort();
        assert_eq!(seqs, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        assert!(merge_by_arrival(vec![]).is_empty());
        assert!(merge_by_arrival(vec![vec![], vec![]]).is_empty());
    }
}
