//! Finger B-tree aggregator (FiBA) window state.
//!
//! An order-maintaining B-tree over `(timestamp, seq)` keys whose nodes cache
//! the combined partial aggregate, entry count, and key range of their
//! subtree. Two *finger* pointers (leftmost / rightmost leaf) make the common
//! insert positions — appends at the front of eviction or the back of arrival
//! — reachable without a full root descent: an insert climbs from the nearer
//! finger only as far as the first ancestor whose cached key range covers the
//! new key, then descends. For an insertion at distance `d` from the nearest
//! end the search walks `O(log d)` levels (Tangwongsan/Hirzel/Schneider,
//! arXiv 1810.11308); cache repair is an eager `O(log n)` walk back to the
//! root, trading the paper's lazy up-spine scheme for a simpler structure —
//! what the tree eliminates is the legacy window state's `O(n)` per-straggler
//! data movement, not the logarithmic repair.
//!
//! Window slides use [`FibaTree::evict_before`], the bulk eviction of the
//! FiBA sequel (arXiv 2307.11210) adapted to this layout: whole subtrees left
//! of the cut are freed without visiting their entries, and the relaxed
//! invariant allows underfull nodes *only on the leftmost spine* — exactly
//! the region a prefix eviction can thin out.
//!
//! Subtree counts double as an order-statistic index: a tree keyed by the
//! order-preserving bit image of an `f64` ([`f64_to_ordered`]) supports
//! `select(k)` in `O(log n)`, which is how Median/Quantile windows replace
//! their legacy sorted-`Vec` (`O(n)` memmove per out-of-order insert) with a
//! logarithmic structure. See `DESIGN.md` §17.

use serde::{Deserialize, Serialize};

/// Which backing structure a window operator uses for per-window state.
///
/// Selected per execution via `ExecOptions::with_window_state` in
/// `quill-core`; `Fiba` is the default, `Legacy` (per-window aggregate
/// states + two-stacks pane sharing) is retained for differential testing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowState {
    /// Finger B-tree aggregator state (this module). The default.
    #[default]
    Fiba,
    /// The original per-window / shared-pane state.
    Legacy,
}

/// Composite tree key: `(timestamp, seq)` for event-time trees, or
/// `(ordered f64 bits, disambiguator)` for value-indexed trees.
pub type FibaKey = (u64, u64);

/// A partial aggregate stored at tree entries and combined into node caches.
///
/// `combine` must be associative over key order: the tree always combines a
/// subtree's partials left-to-right, so `later` covers keys sorting after
/// everything already in `self`.
pub trait FibaItem: Clone {
    /// Fold `later` (covering strictly later keys) into `self`.
    fn combine(&mut self, later: &Self);

    /// Overwrite `self` with `src`, reusing existing buffers where possible
    /// (the cache-repair path calls this once per level per insert).
    fn assign_from(&mut self, src: &Self) {
        self.clone_from(src);
    }
}

/// Unit item for trees used purely as order-statistic indexes.
impl FibaItem for () {
    fn combine(&mut self, _later: &Self) {}
}

/// Map an `f64` to a `u64` whose unsigned order equals `f64::total_cmp`
/// order (sign-magnitude flip). Bijective, so NaN payloads and `-0.0` round
/// trip exactly through [`ordered_to_f64`].
#[inline]
pub fn f64_to_ordered(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Inverse of [`f64_to_ordered`].
#[inline]
pub fn ordered_to_f64(u: u64) -> f64 {
    let b = if u >> 63 == 1 { u & !(1 << 63) } else { !u };
    f64::from_bits(b)
}

/// Minimum entries (leaf) / children (internal) for nodes *off* the leftmost
/// spine; the spine may run underfull after bulk evictions.
const MIN_FANOUT: usize = 4;
/// Nodes split once they exceed this many entries/children.
const MAX_FANOUT: usize = 2 * MIN_FANOUT;

const NIL: u32 = u32::MAX;

struct Node<I> {
    parent: u32,
    /// Leaf: sorted entry keys. Internal: empty (children route by range).
    keys: Vec<FibaKey>,
    /// Leaf: per-entry items, parallel to `keys`.
    items: Vec<I>,
    /// Internal: child node indices in key order. Empty for leaves.
    children: Vec<u32>,
    /// Entries in this subtree.
    count: u64,
    /// Combined items of this subtree in key order (`None` iff empty).
    agg: Option<I>,
    /// Smallest key in this subtree (valid when `count > 0`).
    lo: FibaKey,
    /// Largest key in this subtree (valid when `count > 0`).
    hi: FibaKey,
}

impl<I> Node<I> {
    fn new_leaf(parent: u32) -> Node<I> {
        Node {
            parent,
            keys: Vec::new(),
            items: Vec::new(),
            children: Vec::new(),
            count: 0,
            agg: None,
            lo: (0, 0),
            hi: (0, 0),
        }
    }

    #[inline]
    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// Counters exposed for benchmarks and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FibaStats {
    /// Inserts whose finger climb stopped below the root.
    pub finger_short_climbs: u64,
    /// Inserts that climbed all the way to the root.
    pub root_climbs: u64,
    /// Node splits performed.
    pub splits: u64,
    /// Entries removed by `evict_before` (bulk, without per-entry visits
    /// for whole subtrees).
    pub evicted: u64,
}

/// A finger B-tree aggregator: ordered map from [`FibaKey`] to partial
/// aggregates with cached subtree combines, counts, and key ranges.
pub struct FibaTree<I: FibaItem> {
    nodes: Vec<Node<I>>,
    free: Vec<u32>,
    root: u32,
    /// Leftmost leaf.
    left_finger: u32,
    /// Rightmost leaf.
    right_finger: u32,
    len: u64,
    stats: FibaStats,
}

impl<I: FibaItem> Default for FibaTree<I> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: FibaItem> FibaTree<I> {
    /// An empty tree.
    pub fn new() -> FibaTree<I> {
        let root = Node::new_leaf(NIL);
        FibaTree {
            nodes: vec![root],
            free: Vec::new(),
            root: 0,
            left_finger: 0,
            right_finger: 0,
            len: 0,
            stats: FibaStats::default(),
        }
    }

    /// Total entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Operation counters.
    pub fn stats(&self) -> FibaStats {
        self.stats
    }

    /// Smallest key, if any.
    pub fn min_key(&self) -> Option<FibaKey> {
        (self.len > 0).then(|| self.nodes[self.root as usize].lo)
    }

    /// Largest key, if any.
    pub fn max_key(&self) -> Option<FibaKey> {
        (self.len > 0).then(|| self.nodes[self.root as usize].hi)
    }

    /// Height of the tree (levels of nodes; 1 for a lone leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut cur = self.root;
        while !self.nodes[cur as usize].is_leaf() {
            cur = self.nodes[cur as usize].children[0];
            h += 1;
        }
        h
    }

    fn alloc(&mut self, node: Node<I>) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    /// Recompute `count`, `agg`, `lo`, `hi` of `n` from its entries or
    /// children. Reuses the existing aggregate buffer via
    /// [`FibaItem::assign_from`].
    fn recompute(&mut self, n: u32) {
        let mut agg = self.nodes[n as usize].agg.take();
        let node = &self.nodes[n as usize];
        if node.is_leaf() {
            let count = node.keys.len() as u64;
            let (lo, hi) = if count > 0 {
                (node.keys[0], *node.keys.last().expect("nonempty"))
            } else {
                ((0, 0), (0, 0))
            };
            let mut first = true;
            for i in 0..self.nodes[n as usize].items.len() {
                // Split the borrow: the accumulator is a local, the source
                // item lives in the arena.
                let (acc, src) = (&mut agg, &self.nodes[n as usize].items[i]);
                if first {
                    match acc {
                        Some(a) => a.assign_from(src),
                        // quill-lint: allow(hot-path-alloc, reason = "one-time aggregate buffer allocation when a node first gains entries; reused via assign_from afterwards")
                        None => *acc = Some(src.clone()),
                    }
                    first = false;
                } else {
                    acc.as_mut().expect("seeded above").combine(src);
                }
            }
            if first {
                agg = None;
            }
            let node = &mut self.nodes[n as usize];
            node.count = count;
            node.lo = lo;
            node.hi = hi;
            node.agg = agg;
        } else {
            let children = self.nodes[n as usize].children.clone();
            let mut count = 0u64;
            let mut lo = (0, 0);
            let mut hi = (0, 0);
            let mut first = true;
            for &c in &children {
                let child_count = self.nodes[c as usize].count;
                if child_count == 0 {
                    continue;
                }
                count += child_count;
                if first {
                    lo = self.nodes[c as usize].lo;
                }
                hi = self.nodes[c as usize].hi;
                let (acc, src) = (&mut agg, &self.nodes[c as usize].agg);
                let src = src.as_ref().expect("nonempty child has an aggregate");
                if first {
                    match acc {
                        Some(a) => a.assign_from(src),
                        // quill-lint: allow(hot-path-alloc, reason = "one-time aggregate buffer allocation when a node first gains entries; reused via assign_from afterwards")
                        None => *acc = Some(src.clone()),
                    }
                    first = false;
                } else {
                    acc.as_mut().expect("seeded above").combine(src);
                }
            }
            if first {
                agg = None;
            }
            let node = &mut self.nodes[n as usize];
            node.count = count;
            node.lo = lo;
            node.hi = hi;
            node.agg = agg;
        }
    }

    /// Find the leaf where `key` belongs, climbing from the nearer finger.
    fn locate_leaf(&mut self, key: FibaKey) -> u32 {
        if self.nodes[self.root as usize].is_leaf() {
            return self.root;
        }
        // Pick the finger whose end of the key space is nearer. The parent
        // chain of a finger is the tree's spine on that side, so nothing
        // beyond a spine node's range exists on its outer side — the climb
        // only needs to clear the *inner* bound.
        let from_left = {
            let lf = &self.nodes[self.left_finger as usize];
            lf.count > 0 && key <= lf.hi
        };
        let mut cur = if from_left {
            self.left_finger
        } else {
            self.right_finger
        };
        while cur != self.root {
            let n = &self.nodes[cur as usize];
            let covered = if from_left { key <= n.hi } else { key >= n.lo };
            if n.count > 0 && covered {
                break;
            }
            cur = n.parent;
        }
        if cur == self.root {
            self.stats.root_climbs += 1;
        } else {
            self.stats.finger_short_climbs += 1;
        }
        // Descend: first child whose cached range can hold the key.
        while !self.nodes[cur as usize].is_leaf() {
            let n = &self.nodes[cur as usize];
            let mut i = 0;
            while i + 1 < n.children.len() && self.nodes[n.children[i] as usize].hi < key {
                i += 1;
            }
            cur = n.children[i];
        }
        cur
    }

    /// Split an overfull node, pushing the right half into the parent
    /// (creating a new root when `n` was the root).
    fn split(&mut self, n: u32) {
        self.stats.splits += 1;
        let parent = self.nodes[n as usize].parent;
        let right = if self.nodes[n as usize].is_leaf() {
            let mid = self.nodes[n as usize].keys.len() / 2;
            let keys = self.nodes[n as usize].keys.split_off(mid);
            let items = self.nodes[n as usize].items.split_off(mid);
            let mut r = Node::new_leaf(parent);
            r.keys = keys;
            r.items = items;
            self.alloc(r)
        } else {
            let mid = self.nodes[n as usize].children.len() / 2;
            let children = self.nodes[n as usize].children.split_off(mid);
            let mut r = Node::new_leaf(parent);
            r.children = children;
            let ri = self.alloc(r);
            let moved = self.nodes[ri as usize].children.clone();
            for c in moved {
                self.nodes[c as usize].parent = ri;
            }
            ri
        };
        self.recompute(n);
        self.recompute(right);
        if parent == NIL {
            // Grow a new root above both halves.
            let mut root = Node::new_leaf(NIL);
            root.children = vec![n, right];
            let root_idx = self.alloc(root);
            self.nodes[n as usize].parent = root_idx;
            self.nodes[right as usize].parent = root_idx;
            self.recompute(root_idx);
            self.root = root_idx;
        } else {
            let pos = self.nodes[parent as usize]
                .children
                .iter()
                .position(|&c| c == n)
                .expect("child listed in its parent");
            self.nodes[parent as usize].children.insert(pos + 1, right);
        }
    }

    /// Insert an entry. Keys need not be unique; an equal key lands after
    /// existing equals (stable order).
    pub fn insert(&mut self, key: FibaKey, item: I) {
        let leaf = self.locate_leaf(key);
        {
            let node = &mut self.nodes[leaf as usize];
            let pos = node.keys.partition_point(|k| *k <= key);
            node.keys.insert(pos, key);
            node.items.insert(pos, item);
        }
        self.len += 1;
        // Repair (and split where overfull) from the leaf to the root.
        let mut cur = leaf;
        let mut split_any = false;
        loop {
            let over = if self.nodes[cur as usize].is_leaf() {
                self.nodes[cur as usize].keys.len() > MAX_FANOUT
            } else {
                self.nodes[cur as usize].children.len() > MAX_FANOUT
            };
            if over {
                self.split(cur);
                split_any = true;
            } else {
                self.recompute(cur);
            }
            let parent = self.nodes[cur as usize].parent;
            if parent == NIL {
                break;
            }
            cur = parent;
        }
        // Splits move leaves; a plain insert can still extend past the old
        // fingers on either side.
        if split_any
            || self.nodes[self.left_finger as usize].lo > key
            || self.nodes[self.left_finger as usize].count == 0
            || self.nodes[self.right_finger as usize].hi < key
        {
            self.refresh_fingers();
        }
    }

    fn refresh_fingers(&mut self) {
        let mut l = self.root;
        while !self.nodes[l as usize].is_leaf() {
            l = self.nodes[l as usize].children[0];
        }
        self.left_finger = l;
        let mut r = self.root;
        while !self.nodes[r as usize].is_leaf() {
            r = *self.nodes[r as usize].children.last().expect("internal");
        }
        self.right_finger = r;
    }

    /// Combined aggregate and entry count over keys in `[lo, hi]`
    /// (inclusive). Whole subtrees inside the range contribute their cached
    /// aggregate without descending.
    pub fn range_agg(&self, lo: FibaKey, hi: FibaKey) -> (Option<I>, u64) {
        let mut acc: Option<I> = None;
        let mut count = 0u64;
        if self.len > 0 {
            self.range_rec(self.root, lo, hi, &mut acc, &mut count);
        }
        (acc, count)
    }

    fn range_rec(&self, n: u32, lo: FibaKey, hi: FibaKey, acc: &mut Option<I>, count: &mut u64) {
        let node = &self.nodes[n as usize];
        if node.count == 0 || node.hi < lo || hi < node.lo {
            return;
        }
        if lo <= node.lo && node.hi <= hi {
            let src = node.agg.as_ref().expect("nonempty subtree");
            match acc {
                Some(a) => a.combine(src),
                None => *acc = Some(src.clone()),
            }
            *count += node.count;
            return;
        }
        if node.is_leaf() {
            // Leaf keys are sorted, so the in-range entries are contiguous.
            // Seeding the accumulator happens outside the loop: at most one
            // clone per range query, never one per element.
            let start = node.keys.partition_point(|k| *k < lo);
            let end = node.keys.partition_point(|k| *k <= hi);
            if start < end {
                match acc {
                    Some(a) => a.combine(&node.items[start]),
                    None => *acc = Some(node.items[start].clone()),
                }
                for src in &node.items[start + 1..end] {
                    acc.as_mut().expect("seeded above").combine(src);
                }
                *count += (end - start) as u64;
            }
        } else {
            for &c in &node.children {
                self.range_rec(c, lo, hi, acc, count);
            }
        }
    }

    /// Number of entries with keys in `[lo, hi]` (inclusive), without
    /// touching aggregates.
    pub fn count_range(&self, lo: FibaKey, hi: FibaKey) -> u64 {
        let mut n = 0u64;
        if self.len > 0 {
            self.count_rec(self.root, lo, hi, &mut n);
        }
        n
    }

    fn count_rec(&self, n: u32, lo: FibaKey, hi: FibaKey, acc: &mut u64) {
        let node = &self.nodes[n as usize];
        if node.count == 0 || node.hi < lo || hi < node.lo {
            return;
        }
        if lo <= node.lo && node.hi <= hi {
            *acc += node.count;
            return;
        }
        if node.is_leaf() {
            *acc += node.keys.iter().filter(|k| lo <= **k && **k <= hi).count() as u64;
        } else {
            for &c in &node.children {
                self.count_rec(c, lo, hi, acc);
            }
        }
    }

    /// Key of the `k`-th entry (0-based) in key order, or `None` when out of
    /// range. `O(log n)` via subtree counts.
    pub fn select(&self, k: u64) -> Option<FibaKey> {
        if k >= self.len {
            return None;
        }
        let mut remaining = k;
        let mut cur = self.root;
        loop {
            let node = &self.nodes[cur as usize];
            if node.is_leaf() {
                return Some(node.keys[remaining as usize]);
            }
            let mut next = None;
            for &c in &node.children {
                let cc = self.nodes[c as usize].count;
                if remaining < cc {
                    next = Some(c);
                    break;
                }
                remaining -= cc;
            }
            cur = next.expect("counts cover the subtree");
        }
    }

    /// Visit every entry in key order.
    pub fn for_each(&self, f: &mut dyn FnMut(FibaKey, &I)) {
        if self.len > 0 {
            self.for_each_rec(self.root, f);
        }
    }

    fn for_each_rec(&self, n: u32, f: &mut dyn FnMut(FibaKey, &I)) {
        let node = &self.nodes[n as usize];
        if node.is_leaf() {
            for (k, item) in node.keys.iter().zip(node.items.iter()) {
                f(*k, item);
            }
        } else {
            for &c in &node.children {
                self.for_each_rec(c, f);
            }
        }
    }

    fn free_subtree(&mut self, n: u32) {
        let children = std::mem::take(&mut self.nodes[n as usize].children);
        for c in children {
            self.free_subtree(c);
        }
        self.nodes[n as usize].keys.clear();
        self.nodes[n as usize].items.clear();
        self.nodes[n as usize].count = 0;
        self.nodes[n as usize].agg = None;
        self.free.push(n);
    }

    /// Bulk-evict every entry with key `< cut`. Whole subtrees left of the
    /// cut are freed without visiting their entries; only the boundary path
    /// is repaired. Returns the number of entries removed. Nodes on the
    /// leftmost spine may be left underfull (the relaxed FiBA invariant).
    pub fn evict_before(&mut self, cut: FibaKey) -> u64 {
        if self.len == 0 || self.nodes[self.root as usize].lo >= cut {
            return 0;
        }
        let removed = self.evict_rec(self.root, cut);
        self.len -= removed;
        self.stats.evicted += removed;
        // Collapse single-child root chains so height tracks the population.
        while !self.nodes[self.root as usize].is_leaf()
            && self.nodes[self.root as usize].children.len() == 1
        {
            let old = self.root;
            let child = self.nodes[old as usize].children[0];
            self.nodes[child as usize].parent = NIL;
            self.root = child;
            self.nodes[old as usize].children.clear();
            self.free_subtree(old);
        }
        self.refresh_fingers();
        removed
    }

    fn evict_rec(&mut self, n: u32, cut: FibaKey) -> u64 {
        let mut removed = 0u64;
        if self.nodes[n as usize].is_leaf() {
            let drop = self.nodes[n as usize].keys.partition_point(|k| *k < cut);
            self.nodes[n as usize].keys.drain(..drop);
            self.nodes[n as usize].items.drain(..drop);
            removed = drop as u64;
        } else {
            // Free whole children strictly left of the cut.
            while !self.nodes[n as usize].children.is_empty() {
                let c = self.nodes[n as usize].children[0];
                if self.nodes[c as usize].count > 0 && self.nodes[c as usize].hi >= cut {
                    break;
                }
                removed += self.nodes[c as usize].count;
                self.nodes[n as usize].children.remove(0);
                self.free_subtree(c);
                if self.nodes[n as usize].children.is_empty() {
                    break;
                }
            }
            // Recurse into the (new) boundary child.
            if let Some(&c) = self.nodes[n as usize].children.first() {
                if self.nodes[c as usize].count > 0 && self.nodes[c as usize].lo < cut {
                    removed += self.evict_rec(c, cut);
                    if self.nodes[c as usize].count == 0
                        && self.nodes[n as usize].children.len() > 1
                    {
                        self.nodes[n as usize].children.remove(0);
                        self.free_subtree(c);
                    }
                }
            }
        }
        self.recompute(n);
        removed
    }

    /// Structural invariant check, used by the fuzz battery. Verifies parent
    /// pointers, uniform leaf depth, arity bounds (underfull only on the
    /// leftmost spine), sorted disjoint key ranges, cached counts and
    /// ranges, finger validity, and — via `item_eq` — that every cached
    /// subtree aggregate equals a from-scratch recombination of its entries.
    pub fn check_invariants(&self, item_eq: &dyn Fn(&I, &I) -> bool) -> Result<(), String> {
        let root = &self.nodes[self.root as usize];
        if root.parent != NIL {
            return Err("root has a parent".into());
        }
        let mut leaf_depth = None;
        self.check_node(self.root, 0, true, &mut leaf_depth, item_eq)?;
        if self.nodes[self.root as usize].count != self.len {
            return Err(format!(
                "root count {} != tree len {}",
                self.nodes[self.root as usize].count, self.len
            ));
        }
        // Fingers must be the extreme leaves.
        let mut l = self.root;
        while !self.nodes[l as usize].is_leaf() {
            l = self.nodes[l as usize].children[0];
        }
        if l != self.left_finger {
            return Err("left finger is not the leftmost leaf".into());
        }
        let mut r = self.root;
        while !self.nodes[r as usize].is_leaf() {
            r = *self.nodes[r as usize].children.last().expect("internal");
        }
        if r != self.right_finger {
            return Err("right finger is not the rightmost leaf".into());
        }
        Ok(())
    }

    fn check_node(
        &self,
        n: u32,
        depth: usize,
        on_left_spine: bool,
        leaf_depth: &mut Option<usize>,
        item_eq: &dyn Fn(&I, &I) -> bool,
    ) -> Result<(), String> {
        let node = &self.nodes[n as usize];
        let is_root = n == self.root;
        if node.is_leaf() {
            match leaf_depth {
                None => *leaf_depth = Some(depth),
                Some(d) if *d != depth => {
                    return Err(format!("leaf depth {depth} != expected {d}"));
                }
                _ => {}
            }
            if node.keys.len() != node.items.len() {
                return Err("leaf keys/items length mismatch".into());
            }
            if node.keys.len() > MAX_FANOUT {
                return Err(format!(
                    "leaf holds {} > {MAX_FANOUT} entries",
                    node.keys.len()
                ));
            }
            if !is_root && !on_left_spine && node.keys.len() < MIN_FANOUT {
                return Err(format!(
                    "off-spine leaf holds {} < {MIN_FANOUT} entries",
                    node.keys.len()
                ));
            }
            if node.keys.windows(2).any(|w| w[0] > w[1]) {
                return Err("leaf keys out of order".into());
            }
            if node.count != node.keys.len() as u64 {
                return Err("leaf count cache wrong".into());
            }
            if node.count > 0 && (node.lo != node.keys[0] || node.hi != *node.keys.last().unwrap())
            {
                return Err("leaf lo/hi cache wrong".into());
            }
        } else {
            if node.children.len() > MAX_FANOUT {
                return Err(format!(
                    "internal holds {} > {MAX_FANOUT} children",
                    node.children.len()
                ));
            }
            if !is_root && !on_left_spine && node.children.len() < MIN_FANOUT {
                return Err(format!(
                    "off-spine internal holds {} < {MIN_FANOUT} children",
                    node.children.len()
                ));
            }
            if is_root && node.children.len() < 2 {
                return Err("internal root with fewer than 2 children".into());
            }
            let mut count = 0u64;
            let mut prev_hi: Option<FibaKey> = None;
            for (i, &c) in node.children.iter().enumerate() {
                let child = &self.nodes[c as usize];
                if child.parent != n {
                    return Err("child parent pointer wrong".into());
                }
                self.check_node(c, depth + 1, on_left_spine && i == 0, leaf_depth, item_eq)?;
                count += child.count;
                if child.count > 0 {
                    if let Some(ph) = prev_hi {
                        if ph > child.lo {
                            return Err("child key ranges overlap or misorder".into());
                        }
                    }
                    prev_hi = Some(child.hi);
                }
            }
            if node.count != count {
                return Err("internal count cache wrong".into());
            }
            if node.count > 0 {
                let first = node
                    .children
                    .iter()
                    .find(|&&c| self.nodes[c as usize].count > 0)
                    .expect("nonempty subtree");
                let last = node
                    .children
                    .iter()
                    .rev()
                    .find(|&&c| self.nodes[c as usize].count > 0)
                    .expect("nonempty subtree");
                if node.lo != self.nodes[*first as usize].lo
                    || node.hi != self.nodes[*last as usize].hi
                {
                    return Err("internal lo/hi cache wrong".into());
                }
            }
        }
        // Aggregate cache: recombine from scratch and compare.
        let node = &self.nodes[n as usize];
        if node.count == 0 {
            if node.agg.is_some() {
                return Err("empty subtree caches an aggregate".into());
            }
        } else {
            let mut fresh: Option<I> = None;
            self.for_each_rec(n, &mut |_, item| match &mut fresh {
                Some(a) => a.combine(item),
                None => fresh = Some(item.clone()),
            });
            let cached = node
                .agg
                .as_ref()
                .ok_or("nonempty subtree missing aggregate")?;
            let fresh = fresh.expect("nonempty subtree combined");
            if !item_eq(cached, &fresh) {
                return Err("cached subtree aggregate differs from recombination".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sum item: checks combine plumbing with exact integer arithmetic.
    #[derive(Clone, Debug, PartialEq)]
    struct SumItem(i64);
    impl FibaItem for SumItem {
        fn combine(&mut self, later: &Self) {
            self.0 += later.0;
        }
    }

    fn eq(a: &SumItem, b: &SumItem) -> bool {
        a == b
    }

    #[test]
    fn insert_range_and_select_match_a_sorted_model() {
        let mut tree = FibaTree::new();
        let mut model: Vec<(FibaKey, i64)> = Vec::new();
        // Deterministic scramble: multiplicative hop around a prime ring.
        for i in 0..500u64 {
            let k = (i * 373) % 1009;
            tree.insert((k, i), SumItem(k as i64));
            model.push(((k, i), k as i64));
        }
        model.sort_by_key(|(k, _)| *k);
        tree.check_invariants(&eq).expect("invariants");
        assert_eq!(tree.len(), 500);
        assert_eq!(tree.min_key(), Some(model[0].0));
        assert_eq!(tree.max_key(), Some(model.last().unwrap().0));
        for (lo, hi) in [(0, 100), (100, 400), (0, 2000), (990, 1009), (500, 499)] {
            let lo_k = (lo, 0);
            let hi_k = (hi, u64::MAX);
            let expect: i64 = model
                .iter()
                .filter(|(k, _)| lo_k <= *k && *k <= hi_k)
                .map(|(_, v)| *v)
                .sum();
            let n_expect = model
                .iter()
                .filter(|(k, _)| lo_k <= *k && *k <= hi_k)
                .count() as u64;
            let (agg, n) = tree.range_agg(lo_k, hi_k);
            assert_eq!(n, n_expect, "count for [{lo},{hi}]");
            assert_eq!(tree.count_range(lo_k, hi_k), n_expect);
            assert_eq!(agg.map(|a| a.0).unwrap_or(0), expect, "sum for [{lo},{hi}]");
        }
        for k in [0u64, 1, 250, 499] {
            assert_eq!(tree.select(k), Some(model[k as usize].0));
        }
        assert_eq!(tree.select(500), None);
    }

    #[test]
    fn bulk_eviction_drops_exactly_the_prefix() {
        let mut tree = FibaTree::new();
        for i in 0..300u64 {
            tree.insert((i, 0), SumItem(1));
        }
        let removed = tree.evict_before((120, 0));
        assert_eq!(removed, 120);
        assert_eq!(tree.len(), 180);
        assert_eq!(tree.min_key(), Some((120, 0)));
        tree.check_invariants(&eq).expect("invariants after evict");
        // Evicting before the minimum is a no-op.
        assert_eq!(tree.evict_before((50, 0)), 0);
        // Evict everything.
        assert_eq!(tree.evict_before((1000, 0)), 180);
        assert!(tree.is_empty());
        tree.check_invariants(&eq).expect("invariants when empty");
        // The tree keeps working after a full eviction.
        tree.insert((7, 7), SumItem(7));
        assert_eq!(tree.range_agg((0, 0), (u64::MAX, u64::MAX)).1, 1);
    }

    #[test]
    fn interleaved_inserts_and_evictions_hold_invariants() {
        let mut tree = FibaTree::new();
        let mut model: Vec<(FibaKey, i64)> = Vec::new();
        let mut x = 12345u64;
        for step in 0..2000u64 {
            // xorshift for deterministic pseudo-random keys.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = x % 10_000;
            tree.insert((k, step), SumItem(1));
            model.push(((k, step), 1));
            if step % 97 == 96 {
                let cut = (x % 8000, 0);
                tree.evict_before(cut);
                model.retain(|(key, _)| *key >= cut);
                tree.check_invariants(&eq).expect("invariants mid-fuzz");
            }
            assert_eq!(tree.len(), model.len() as u64, "step {step}");
        }
        let total: i64 = model.iter().map(|(_, v)| v).sum();
        let (agg, n) = tree.range_agg((0, 0), (u64::MAX, u64::MAX));
        assert_eq!(n, model.len() as u64);
        assert_eq!(agg.unwrap().0, total);
    }

    #[test]
    fn appends_stay_near_the_right_finger() {
        let mut tree = FibaTree::new();
        for i in 0..4096u64 {
            tree.insert((i, 0), SumItem(1));
        }
        let s = tree.stats();
        // In-order appends should overwhelmingly resolve below the root once
        // the tree has any height.
        assert!(
            s.finger_short_climbs > s.root_climbs,
            "expected finger hits to dominate: {s:?}"
        );
    }

    #[test]
    fn ordered_f64_bits_preserve_total_order_and_roundtrip() {
        let vals = [
            f64::NEG_INFINITY,
            -1.5,
            -0.0,
            0.0,
            1.0e-300,
            2.5,
            f64::INFINITY,
            f64::NAN,
            -f64::NAN,
        ];
        for &a in &vals {
            // Bijective roundtrip preserves the exact bit pattern.
            assert_eq!(ordered_to_f64(f64_to_ordered(a)).to_bits(), a.to_bits());
            for &b in &vals {
                assert_eq!(
                    f64_to_ordered(a).cmp(&f64_to_ordered(b)),
                    a.total_cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn unit_item_tree_serves_as_an_order_statistic_index() {
        let mut tree: FibaTree<()> = FibaTree::new();
        let xs = [3.5f64, -1.0, 3.5, 0.0, -0.0, f64::NAN, 100.0];
        for (i, &x) in xs.iter().enumerate() {
            tree.insert((f64_to_ordered(x), i as u64), ());
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        for (k, want) in sorted.iter().enumerate() {
            let (bits, _) = tree.select(k as u64).expect("in range");
            assert_eq!(ordered_to_f64(bits).to_bits(), want.to_bits(), "rank {k}");
        }
    }
}
