//! # quill-engine
//!
//! A small, from-scratch, push-based stream-processing engine with
//! event-time semantics — the substrate on which quill's quality-driven
//! out-of-order query execution (crate `quill-core`) runs.
//!
//! ## Model
//!
//! * Streams are sequences of [`event::StreamElement`]s in **arrival
//!   order**; events carry event-time [`time::Timestamp`]s that may disagree
//!   with arrival order (disorder).
//! * [`event::StreamElement::Watermark`]`(t)` promises that no later event
//!   has `ts < t`; window operators emit results when the watermark passes a
//!   window's end.
//! * Queries are [`pipeline::Pipeline`]s of [`operator::Operator`]s:
//!   map/filter/project, keyed sliding/tumbling [window
//!   aggregation](operator::WindowAggregateOp), [interval
//!   joins](operator::IntervalJoin) and stream [merging](operator::merge_by_arrival).
//!
//! ## Quick example
//!
//! ```
//! use quill_engine::prelude::*;
//!
//! // Tumbling 10-unit windows, sum of field 0.
//! let agg = WindowAggregateOp::new(
//!     WindowSpec::tumbling(10u64),
//!     vec![AggregateSpec::new(AggregateKind::Sum, 0, "sum")],
//!     None,
//!     LatePolicy::Drop,
//! ).unwrap();
//! let mut pipeline = Pipeline::new().window_aggregate(agg);
//!
//! let input = vec![
//!     StreamElement::Event(Event::new(1, 0, Row::new([Value::Float(2.0)]))),
//!     StreamElement::Event(Event::new(5, 1, Row::new([Value::Float(3.0)]))),
//!     StreamElement::Flush,
//! ];
//! let out = pipeline.run_collect(input);
//! let results: Vec<WindowResult> = out.iter()
//!     .filter_map(|e| e.as_event())
//!     .filter_map(|e| WindowResult::from_row(&e.row))
//!     .collect();
//! assert_eq!(results[0].aggregates[0], Value::Float(5.0));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregate;
pub mod error;
pub mod event;
pub mod fiba;
pub mod hash;
pub mod operator;
pub mod parallel;
pub mod pipeline;
pub mod time;
pub mod value;
pub mod window;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::aggregate::{AggregateKind, AggregateSpec, Aggregator};
    pub use crate::error::{EngineError, Result};
    pub use crate::event::{ClockTracker, DisorderStats, Event, StreamElement};
    pub use crate::fiba::{FibaStats, FibaTree, WindowState};
    pub use crate::hash::FxHasher;
    pub use crate::operator::{
        merge_by_arrival, CountWindowOp, FilterOp, IntervalJoin, LatePolicy, MapOp, Operator,
        ProjectOp, SessionOpStats, SessionWindowOp, WindowAggregateOp, WindowOpStats, WindowResult,
    };
    pub use crate::parallel::{
        run_keyed_parallel, run_keyed_parallel_with, shard_of, ParallelConfig,
    };
    pub use crate::pipeline::Pipeline;
    pub use crate::time::{TimeDelta, Timestamp};
    pub use crate::value::{hash_value, Field, FieldType, Key, Row, Schema, Value};
    pub use crate::window::{Window, WindowSpec};
}
