//! The lightweight syntactic layer: items, functions and blocks recovered
//! from the token stream.
//!
//! This is deliberately **not** a Rust parser. The concurrency passes only
//! need three structural facts that tokens alone cannot give them:
//!
//! 1. *which function a token belongs to* (so a blocking call can be
//!    attributed to its enclosing `fn` and chased through the call graph),
//! 2. *which `impl` type a method belongs to* (the receiver heuristic the
//!    call-graph resolver uses), and
//! 3. *where blocks open and close* (so a `MutexGuard` binding's live range
//!    ends at its enclosing `}` rather than at end-of-file).
//!
//! Everything else — expressions, types, generics — is skipped by brace /
//! paren / angle matching. The known blind spots of this approximation are
//! catalogued in DESIGN.md §16.

use crate::tokenizer::{Token, TokenKind};
use std::ops::Range;

/// One `fn` item recovered from the token stream.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// The `impl` type the function is defined on, when inside an
    /// `impl Type { .. }` or `impl Trait for Type { .. }` block.
    pub impl_type: Option<String>,
    /// Token index of the `fn` keyword.
    pub decl_idx: usize,
    /// 1-based source line of the `fn` keyword.
    pub decl_line: usize,
    /// Token range of the body, **excluding** the outer braces
    /// (`body.start` is the token after `{`, `body.end` is the `}`).
    pub body: Range<usize>,
}

/// Parsed structure of one file: every `fn` with a body, in source order.
#[derive(Debug, Clone, Default)]
pub struct FileSyntax {
    /// All functions (free functions, methods, nested functions).
    pub fns: Vec<FnDef>,
}

impl FileSyntax {
    /// Index of the **innermost** function whose body contains token
    /// `idx`, if any. Nested `fn` items own their tokens; closures belong
    /// to the function that syntactically contains them.
    pub fn innermost_fn(&self, idx: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, f) in self.fns.iter().enumerate() {
            if f.body.contains(&idx) {
                match best {
                    Some(b) if self.fns[b].body.len() <= f.body.len() => {}
                    _ => best = Some(i),
                }
            }
        }
        best
    }
}

/// Index of the `}` matching the `{` at `open`, or `tokens.len()` when
/// unbalanced (truncated input).
pub fn match_brace(tokens: &[Token], open: usize) -> usize {
    debug_assert_eq!(tokens[open].text, "{");
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    tokens.len()
}

/// Skip a `<...>` generics section starting at `i` (which must point at
/// `<`), returning the index just past the matching `>`. Token-level angle
/// matching is safe here because the call sites only invoke it in item
/// signature position, where `<` cannot be a comparison.
fn skip_angles(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            // `(` in a generic bound (`Fn(..)`) — skip the group.
            "(" => {
                let mut p = 0usize;
                while j < tokens.len() {
                    match tokens[j].text.as_str() {
                        "(" => p += 1,
                        ")" => {
                            p -= 1;
                            if p == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            ";" | "{" => return j, // malformed; bail before the body
            _ => {}
        }
        j += 1;
    }
    j
}

/// The self-type name of an `impl` header starting at `impl_idx`:
/// the last path segment of the type after `for` (trait impls) or after
/// `impl` (inherent impls), generics stripped. Returns the name plus the
/// index of the opening `{` of the impl body (or `None` when the header
/// never opens a body).
fn parse_impl_header(tokens: &[Token], impl_idx: usize) -> Option<(String, usize)> {
    let mut i = impl_idx + 1;
    if tokens.get(i).is_some_and(|t| t.text == "<") {
        i = skip_angles(tokens, i);
    }
    let mut last_ident: Option<String> = None;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.text.as_str() {
            "{" => return last_ident.map(|n| (n, i)),
            ";" => return None, // `impl Trait for Type;` — not real Rust, bail
            "for" => {
                last_ident = None; // restart: the self type follows
                i += 1;
            }
            "where" => {
                // Bounds follow; the self type is already complete.
                while i < tokens.len() && tokens[i].text != "{" {
                    i += 1;
                }
            }
            "<" => i = skip_angles(tokens, i),
            _ => {
                if t.kind == TokenKind::Ident {
                    last_ident = Some(t.text.clone());
                }
                i += 1;
            }
        }
    }
    None
}

/// Parse every `fn` item (with its `impl` context) out of a token stream.
pub fn parse_fns(tokens: &[Token]) -> FileSyntax {
    // First pass: impl block body ranges with their self-type names.
    let mut impls: Vec<(String, Range<usize>)> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Ident && tokens[i].text == "impl" {
            if let Some((name, open)) = parse_impl_header(tokens, i) {
                let close = match_brace(tokens, open);
                impls.push((name, open..close));
                i = open + 1; // impls do not nest; fns inside are scanned below
                continue;
            }
        }
        i += 1;
    }

    // Second pass: `fn name .. { body }` items anywhere (modules, impls,
    // nested functions).
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let is_fn_kw = tokens[i].kind == TokenKind::Ident && tokens[i].text == "fn";
        let name_tok = tokens.get(i + 1);
        if !is_fn_kw || !name_tok.is_some_and(|t| t.kind == TokenKind::Ident) {
            i += 1;
            continue;
        }
        let decl_idx = i;
        let decl_line = tokens[i].line;
        let name = tokens[i + 1].text.clone();
        // Walk the signature: optional generics, the parameter list, then
        // anything up to `{` (body) or `;` (trait/extern declaration).
        let mut j = i + 2;
        if tokens.get(j).is_some_and(|t| t.text == "<") {
            j = skip_angles(tokens, j);
        }
        // Parameter list.
        if tokens.get(j).is_some_and(|t| t.text == "(") {
            let mut p = 0usize;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "(" => p += 1,
                    ")" => {
                        p -= 1;
                        if p == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Return type / where clause: scan to `{` or `;`, skipping generic
        // sections so a `Result<T, E>` return type cannot desynchronise the
        // scan (`<` in type position is never a comparison).
        let mut body_open = None;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "{" => {
                    body_open = Some(j);
                    break;
                }
                ";" => break,
                "<" => {
                    j = skip_angles(tokens, j);
                    continue;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i += 2;
            continue;
        };
        let close = match_brace(tokens, open);
        let impl_type = impls
            .iter()
            .filter(|(_, r)| r.contains(&decl_idx))
            .min_by_key(|(_, r)| r.len())
            .map(|(n, _)| n.clone());
        fns.push(FnDef {
            name,
            impl_type,
            decl_idx,
            decl_line,
            body: (open + 1)..close,
        });
        // Continue scanning *inside* the body too: nested fns are items.
        i = open + 1;
    }
    FileSyntax { fns }
}

/// Token ranges of loop bodies (`for` / `while` / `loop`) inside `range`,
/// innermost and outermost alike. Closure bodies passed to iterator
/// adapters are *not* loops to this function — a known false-negative
/// class of the hot-path allocation pass (DESIGN.md §16).
pub fn loop_bodies(tokens: &[Token], range: Range<usize>) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut i = range.start;
    while i < range.end.min(tokens.len()) {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident && matches!(t.text.as_str(), "for" | "while" | "loop") {
            // `for` in `impl Trait for Type` position was consumed by the
            // item scan; inside a body `for`/`while`/`loop` start loops —
            // except lifetime-labelled breaks (`break 'outer`), which have
            // no `{`. Find the body `{` at bracket depth 0 before any `;`.
            let mut depth = 0isize;
            let mut j = i + 1;
            let mut open = None;
            while j < range.end.min(tokens.len()) {
                match tokens[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        open = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = open {
                let close = match_brace(tokens, open);
                out.push((open + 1)..close);
                i = open + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::lex;

    fn parse(src: &str) -> (Vec<Token>, FileSyntax) {
        let lexed = lex(src);
        let syn = parse_fns(&lexed.tokens);
        (lexed.tokens, syn)
    }

    #[test]
    fn free_fn_and_method_are_found_with_impl_context() {
        let src = r#"
            fn free(a: u32) -> u32 { a + 1 }
            struct S;
            impl S {
                fn method(&self) { self.helper(); }
                fn helper(&self) {}
            }
            impl std::fmt::Display for S {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
            }
        "#;
        let (_, syn) = parse(src);
        let names: Vec<(&str, Option<&str>)> = syn
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None),
                ("method", Some("S")),
                ("helper", Some("S")),
                ("fmt", Some("S")),
            ]
        );
    }

    #[test]
    fn generic_signatures_do_not_desync_the_scan() {
        let src = "fn f<T: Into<Vec<u8>>>(x: T) -> Result<Vec<u8>, String> where T: Clone { x.into() }\nfn g() {}";
        let (_, syn) = parse(src);
        let names: Vec<&str> = syn.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["f", "g"]);
    }

    #[test]
    fn trait_declarations_without_bodies_are_skipped() {
        let src =
            "trait T { fn decl(&self); fn with_default(&self) { self.decl() } } fn after() {}";
        let (_, syn) = parse(src);
        let names: Vec<&str> = syn.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["with_default", "after"]);
    }

    #[test]
    fn nested_fn_owns_its_tokens() {
        let src = "fn outer() { fn inner() { blocked(); } inner(); }";
        let (toks, syn) = parse(src);
        assert_eq!(syn.fns.len(), 2);
        let blocked_idx = toks.iter().position(|t| t.text == "blocked").unwrap();
        let owner = syn.innermost_fn(blocked_idx).unwrap();
        assert_eq!(syn.fns[owner].name, "inner");
    }

    #[test]
    fn loop_bodies_cover_for_while_loop() {
        let src = "fn f() { for x in 0..3 { a(); } while c { b(); } loop { d(); break; } }";
        let (toks, syn) = parse(src);
        let loops = loop_bodies(&toks, syn.fns[0].body.clone());
        assert_eq!(loops.len(), 3);
        for (range, name) in loops.iter().zip(["a", "b", "d"]) {
            assert!(
                toks[range.clone()].iter().any(|t| t.text == name),
                "loop body missing {name}"
            );
        }
    }

    #[test]
    fn impl_with_where_clause_gets_the_right_type() {
        let src = "impl<T> Wrapper<T> where T: Clone { fn get(&self) {} }";
        let (_, syn) = parse(src);
        assert_eq!(syn.fns[0].impl_type.as_deref(), Some("Wrapper"));
    }
}
