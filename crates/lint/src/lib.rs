//! # quill-lint
//!
//! Project-specific static analysis for the quill workspace. The invariants
//! quill's quality guarantees rest on — watermark monotonicity, deterministic
//! replay of the MP/AQ control loop, zero-cost-when-disabled telemetry, and
//! no-panic hot paths — are not checked by rustc or clippy; this crate
//! machine-enforces them on every commit (see DESIGN.md §11 for the rule
//! catalog).
//!
//! The analysis is **dependency-free**: a hand-rolled Rust tokenizer
//! ([`tokenizer`]) feeds two layers. The first is the path-scoped token
//! rules ([`rules`]). The second is a lightweight syntactic layer
//! ([`syntax`] parses items/functions/loops; [`callgraph`] builds an
//! approximate workspace call graph) feeding the concurrency passes
//! ([`passes`]). Renderers cover text, JSON-lines, and SARIF 2.1.0. The
//! workspace is offline/vendored, so `syn`-based or dylint-style tooling is
//! deliberately out of scope.
//!
//! ## Rules
//!
//! | id | rule | scope |
//! |----|------|-------|
//! | L1 | `no-panic` — no `unwrap()`/`expect()`/`panic!`-family macros | hot-path modules |
//! | L2 | `no-wall-clock` — no `Instant::now`/`SystemTime::now` | deterministic control-loop modules |
//! | L3 | `guarded-telemetry` — trace/metric emission only via enabled-guarded handles | whole workspace |
//! | L4 | `crate-hygiene` — crate roots carry `#![forbid(unsafe_code)]`, crate docs, `missing_docs` | crate roots |
//! | L5 | `no-nondeterminism` — no ambient-entropy RNG construction | simulation crate |
//! | L6 | `lock-discipline` — no blocking op while a lock guard is live (call-graph aware) | whole workspace |
//! | L7 | `lock-order` — one consistent acquisition order per lock pair | whole workspace |
//! | L8 | `wall-clock-taint` — L2 propagated through the call graph, cross-crate | deterministic modules |
//! | L9 | `hot-path-alloc` — no per-event allocation in data-path loops | operator/, parallel, buffer, session |
//!
//! Deliberate exceptions are annotated in the source:
//!
//! ```text
//! // quill-lint: allow(no-panic, reason = "heap non-empty: checked by caller")
//! ```
//!
//! The annotation suppresses findings of the named rule on its own line and
//! on the next line that carries code; an annotation without a `reason` is
//! itself a deny-level `allow-syntax` finding.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod callgraph;
pub mod passes;
pub mod rules;
pub mod syntax;
pub mod tokenizer;

use std::fmt;

/// How severe a finding is. Only [`Severity::Deny`] findings fail the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: a better configuration exists.
    Advice,
    /// Suspicious but not provably wrong.
    Warn,
    /// Violates a project invariant; the lint gate exits non-zero.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Advice => write!(f, "advice"),
            Severity::Warn => write!(f, "warn"),
            Severity::Deny => write!(f, "deny"),
        }
    }
}

/// One structured finding: which rule fired, where, and how to fix it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (`no-panic`, `no-wall-clock`, `guarded-telemetry`,
    /// `crate-hygiene`, `allow-syntax`).
    pub rule: String,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the finding (0 for whole-file findings).
    pub line: usize,
    /// Severity level.
    pub severity: Severity,
    /// What is wrong.
    pub message: String,
    /// How to fix or deliberately allow it.
    pub help: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} [{}] {}\n    help: {}",
            self.path, self.line, self.severity, self.rule, self.message, self.help
        )
    }
}

/// Render findings as a human-readable report, one finding per paragraph.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let denies = diags
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .count();
    out.push_str(&format!(
        "{} finding(s), {} deny-level\n",
        diags.len(),
        denies
    ));
    out
}

/// Escape a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render findings as JSON lines (one object per finding), the format
/// uploaded as `results/lint_report.jsonl` by CI.
pub fn to_jsonl(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"severity\":\"{}\",\"message\":\"{}\",\"help\":\"{}\"}}\n",
            json_escape(&d.rule),
            json_escape(&d.path),
            d.line,
            d.severity,
            json_escape(&d.message),
            json_escape(&d.help),
        ));
    }
    out
}

/// Render findings as a SARIF 2.1.0 document (the format GitHub code
/// scanning ingests for PR annotations), written as
/// `results/lint_report.sarif` by CI.
///
/// Severity maps to SARIF levels: deny → `error`, warn → `warning`,
/// advice → `note`. The `help` text rides along in each result's
/// `message.text` after the finding message.
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    // One reportingDescriptor per distinct rule, in first-seen order.
    let mut rule_ids: Vec<&str> = Vec::new();
    for d in diags {
        if !rule_ids.contains(&d.rule.as_str()) {
            rule_ids.push(&d.rule);
        }
    }
    let rules_json: Vec<String> = rule_ids
        .iter()
        .map(|id| format!("{{\"id\":\"{}\"}}", json_escape(id)))
        .collect();
    let results_json: Vec<String> = diags
        .iter()
        .map(|d| {
            let level = match d.severity {
                Severity::Deny => "error",
                Severity::Warn => "warning",
                Severity::Advice => "note",
            };
            // SARIF regions are 1-based; clamp whole-file findings to line 1.
            let line = d.line.max(1);
            format!(
                "{{\"ruleId\":\"{}\",\"level\":\"{}\",\"message\":{{\"text\":\"{}\"}},\
                 \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
                 \"region\":{{\"startLine\":{}}}}}}}]}}",
                json_escape(&d.rule),
                level,
                json_escape(&format!("{} (help: {})", d.message, d.help)),
                json_escape(&d.path),
                line,
            )
        })
        .collect();
    format!(
        "{{\"version\":\"2.1.0\",\
         \"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"runs\":[{{\"tool\":{{\"driver\":{{\"name\":\"quill-lint\",\
         \"informationUri\":\"https://example.invalid/quill\",\
         \"rules\":[{}]}}}},\"results\":[{}]}}]}}\n",
        rules_json.join(","),
        results_json.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            rule: "no-panic".into(),
            path: "crates/engine/src/parallel.rs".into(),
            line: 42,
            severity: Severity::Deny,
            message: "`unwrap()` in hot-path module".into(),
            help: "return a typed error".into(),
        }
    }

    #[test]
    fn text_render_names_rule_and_location() {
        let s = render_text(&[diag()]);
        assert!(s.contains("crates/engine/src/parallel.rs:42"));
        assert!(s.contains("[no-panic]"));
        assert!(s.contains("1 deny-level"));
    }

    #[test]
    fn jsonl_is_one_object_per_line_with_escapes() {
        let mut d = diag();
        d.message = "quote \" backslash \\ newline \n".into();
        let s = to_jsonl(&[d]);
        assert_eq!(s.lines().count(), 1);
        assert!(s.contains("\\\""));
        assert!(s.contains("\\\\"));
        assert!(s.contains("\\n"));
    }

    #[test]
    fn sarif_names_tool_rule_and_location() {
        let s = to_sarif(&[diag()]);
        assert!(s.contains("\"version\":\"2.1.0\""));
        assert!(s.contains("\"name\":\"quill-lint\""));
        assert!(s.contains("\"ruleId\":\"no-panic\""));
        assert!(s.contains("\"level\":\"error\""));
        assert!(s.contains("\"uri\":\"crates/engine/src/parallel.rs\""));
        assert!(s.contains("\"startLine\":42"));
    }

    #[test]
    fn sarif_clamps_whole_file_findings_to_line_one() {
        let mut d = diag();
        d.line = 0;
        d.severity = Severity::Warn;
        let s = to_sarif(&[d]);
        assert!(s.contains("\"startLine\":1"));
        assert!(s.contains("\"level\":\"warning\""));
    }

    #[test]
    fn severity_orders_deny_highest() {
        assert!(Severity::Deny > Severity::Warn);
        assert!(Severity::Warn > Severity::Advice);
    }
}
