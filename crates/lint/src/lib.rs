//! # quill-lint
//!
//! Project-specific static analysis for the quill workspace. The invariants
//! quill's quality guarantees rest on — watermark monotonicity, deterministic
//! replay of the MP/AQ control loop, zero-cost-when-disabled telemetry, and
//! no-panic hot paths — are not checked by rustc or clippy; this crate
//! machine-enforces them on every commit (see DESIGN.md §11 for the rule
//! catalog).
//!
//! The analysis is **dependency-free**: a hand-rolled Rust tokenizer
//! ([`tokenizer`]) feeds path-scoped token rules ([`rules`]), producing
//! structured [`Diagnostic`]s with text and JSON-lines renderers. The
//! workspace is offline/vendored, so `syn`-based or dylint-style tooling is
//! deliberately out of scope.
//!
//! ## Rules
//!
//! | id | rule | scope |
//! |----|------|-------|
//! | L1 | `no-panic` — no `unwrap()`/`expect()`/`panic!`-family macros | hot-path modules |
//! | L2 | `no-wall-clock` — no `Instant::now`/`SystemTime::now` | deterministic control-loop modules |
//! | L3 | `guarded-telemetry` — trace/metric emission only via enabled-guarded handles | whole workspace |
//! | L4 | `crate-hygiene` — crate roots carry `#![forbid(unsafe_code)]`, crate docs, `missing_docs` | crate roots |
//!
//! Deliberate exceptions are annotated in the source:
//!
//! ```text
//! // quill-lint: allow(no-panic, reason = "heap non-empty: checked by caller")
//! ```
//!
//! The annotation suppresses findings of the named rule on its own line and
//! on the next line that carries code; an annotation without a `reason` is
//! itself a deny-level `allow-syntax` finding.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod rules;
pub mod tokenizer;

use std::fmt;

/// How severe a finding is. Only [`Severity::Deny`] findings fail the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: a better configuration exists.
    Advice,
    /// Suspicious but not provably wrong.
    Warn,
    /// Violates a project invariant; the lint gate exits non-zero.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Advice => write!(f, "advice"),
            Severity::Warn => write!(f, "warn"),
            Severity::Deny => write!(f, "deny"),
        }
    }
}

/// One structured finding: which rule fired, where, and how to fix it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (`no-panic`, `no-wall-clock`, `guarded-telemetry`,
    /// `crate-hygiene`, `allow-syntax`).
    pub rule: String,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the finding (0 for whole-file findings).
    pub line: usize,
    /// Severity level.
    pub severity: Severity,
    /// What is wrong.
    pub message: String,
    /// How to fix or deliberately allow it.
    pub help: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} [{}] {}\n    help: {}",
            self.path, self.line, self.severity, self.rule, self.message, self.help
        )
    }
}

/// Render findings as a human-readable report, one finding per paragraph.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let denies = diags
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .count();
    out.push_str(&format!(
        "{} finding(s), {} deny-level\n",
        diags.len(),
        denies
    ));
    out
}

/// Escape a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render findings as JSON lines (one object per finding), the format
/// uploaded as `results/lint_report.jsonl` by CI.
pub fn to_jsonl(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"severity\":\"{}\",\"message\":\"{}\",\"help\":\"{}\"}}\n",
            json_escape(&d.rule),
            json_escape(&d.path),
            d.line,
            d.severity,
            json_escape(&d.message),
            json_escape(&d.help),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            rule: "no-panic".into(),
            path: "crates/engine/src/parallel.rs".into(),
            line: 42,
            severity: Severity::Deny,
            message: "`unwrap()` in hot-path module".into(),
            help: "return a typed error".into(),
        }
    }

    #[test]
    fn text_render_names_rule_and_location() {
        let s = render_text(&[diag()]);
        assert!(s.contains("crates/engine/src/parallel.rs:42"));
        assert!(s.contains("[no-panic]"));
        assert!(s.contains("1 deny-level"));
    }

    #[test]
    fn jsonl_is_one_object_per_line_with_escapes() {
        let mut d = diag();
        d.message = "quote \" backslash \\ newline \n".into();
        let s = to_jsonl(&[d]);
        assert_eq!(s.lines().count(), 1);
        assert!(s.contains("\\\""));
        assert!(s.contains("\\\\"));
        assert!(s.contains("\\n"));
    }

    #[test]
    fn severity_orders_deny_highest() {
        assert!(Severity::Deny > Severity::Warn);
        assert!(Severity::Warn > Severity::Advice);
    }
}
