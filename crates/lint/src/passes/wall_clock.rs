//! `wall-clock-taint`: the `no-wall-clock` rule propagated through the call
//! graph, across crates.
//!
//! The token-level L2 rule only sees `Instant::now()` / `SystemTime::now()`
//! spelled inside a deterministic-scope file. A helper in another crate that
//! reads the wall clock and is called from the deterministic core leaks
//! nondeterminism just the same. This pass marks every function containing a
//! wall-clock primitive (`Instant::now`, `SystemTime::now`, `.elapsed(`) as
//! *tainted*, propagates taint to transitive callers, and flags (a) direct
//! `.elapsed(` reads and (b) call sites into tainted functions — but only
//! inside deterministic-scope files, where replayability is the contract.
//!
//! Suppression: a line-level `allow(no-wall-clock, ...)` on a primitive
//! (the already-reviewed L2 escape hatch) stops it seeding taint; an
//! `allow(wall-clock-taint, ...)` on a function's `fn` declaration line
//! marks the function deliberately wall-clocked — it gets no findings and
//! stops propagation to its callers.

use super::Workspace;
use crate::rules::{is_deterministic, RULE_NO_WALL_CLOCK, RULE_WALL_CLOCK_TAINT};
use crate::tokenizer::TokenKind;
use crate::{Diagnostic, Severity};
use std::collections::{HashMap, HashSet};

/// The `wall-clock-taint` pass.
pub struct WallClockTaint;

/// Token indices of wall-clock primitives in function `fn_id` that are not
/// suppressed by a line-level allow of either rule.
fn primitive_sites(ws: &Workspace, fn_id: usize) -> Vec<(usize, usize, &'static str)> {
    let g = &ws.graph;
    let fref = g.fns[fn_id];
    let file = &g.files[fref.file];
    let toks = &file.tokens;
    let mut out = Vec::new();
    for idx in file.syntax.fns[fref.local].body.clone() {
        if file.mask[idx]
            || toks[idx].kind != TokenKind::Ident
            || g.fn_of_token[fref.file][idx] != Some(fn_id)
        {
            continue;
        }
        let text = |i: usize| toks.get(i).map(|t| t.text.as_str());
        let what = match toks[idx].text.as_str() {
            ty @ ("Instant" | "SystemTime")
                if text(idx + 1) == Some(":")
                    && text(idx + 2) == Some(":")
                    && text(idx + 3) == Some("now") =>
            {
                if ty == "Instant" {
                    "Instant::now()"
                } else {
                    "SystemTime::now()"
                }
            }
            "elapsed" if idx > 0 && text(idx - 1) == Some(".") && text(idx + 1) == Some("(") => {
                ".elapsed()"
            }
            _ => continue,
        };
        let line = toks[idx].line;
        if file.allowed(RULE_NO_WALL_CLOCK, line) || file.allowed(RULE_WALL_CLOCK_TAINT, line) {
            continue;
        }
        out.push((idx, line, what));
    }
    out
}

impl super::Pass for WallClockTaint {
    fn name(&self) -> &'static str {
        RULE_WALL_CLOCK_TAINT
    }

    fn run(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let g = &ws.graph;
        let mut diags = Vec::new();

        let blocked: HashSet<usize> = (0..g.fns.len())
            .filter(|&id| {
                let decl = g.def(id).decl_line;
                g.file(id).allowed(RULE_WALL_CLOCK_TAINT, decl)
            })
            .collect();
        let sites: Vec<Vec<(usize, usize, &'static str)>> =
            (0..g.fns.len()).map(|id| primitive_sites(ws, id)).collect();
        let seeds: HashSet<usize> = (0..g.fns.len())
            .filter(|&id| !sites[id].is_empty())
            .collect();
        let tainted: HashMap<usize, Option<usize>> = g.reach_to(&seeds, &blocked);

        for (fn_id, fn_sites) in sites.iter().enumerate() {
            let file = g.file(fn_id);
            if !is_deterministic(&file.rel) || blocked.contains(&fn_id) {
                continue;
            }
            // Direct `.elapsed()` reads (Instant::now / SystemTime::now are
            // already flagged by the token-level L2 rule).
            for &(_, line, what) in fn_sites {
                if what != ".elapsed()" {
                    continue;
                }
                diags.push(Diagnostic {
                    rule: RULE_WALL_CLOCK_TAINT.into(),
                    path: file.rel.clone(),
                    line,
                    severity: Severity::Deny,
                    message: format!(
                        "`{}` reads the wall clock via {what} in a deterministic module",
                        g.name(fn_id)
                    ),
                    help: "derive timing from event timestamps, or annotate the `fn` \
                           declaration with `// quill-lint: allow(wall-clock-taint, \
                           reason = \"...\")` if this function is deliberately \
                           operator-facing"
                        .into(),
                });
            }
            // Call sites into tainted functions.
            let mut reported: HashSet<(usize, usize)> = HashSet::new();
            for site in &g.calls[fn_id] {
                if !tainted.contains_key(&site.callee)
                    || file.mask[site.idx]
                    || file.allowed(RULE_WALL_CLOCK_TAINT, site.line)
                    || !reported.insert((site.line, site.callee))
                {
                    continue;
                }
                diags.push(Diagnostic {
                    rule: RULE_WALL_CLOCK_TAINT.into(),
                    path: file.rel.clone(),
                    line: site.line,
                    severity: Severity::Deny,
                    message: format!(
                        "call into {} reaches a wall-clock read ({}) from a \
                         deterministic module",
                        g.describe(site.callee),
                        g.chain(&tainted, site.callee)
                    ),
                    help: "make the callee take time as a parameter, or annotate the \
                           callee's `fn` declaration with `// quill-lint: \
                           allow(wall-clock-taint, reason = \"...\")` if its wall-clock \
                           use is deliberate and never feeds K estimation"
                        .into(),
                });
            }
        }
        diags
    }
}
