//! `lock-discipline`: no blocking operation while a `MutexGuard`/`RwLock`
//! guard is live — directly in the function, or through any call chain.
//!
//! The serve daemon's backpressure design makes this the deadlock that
//! matters: ingest threads block on a bounded `sync_channel` send, and the
//! core thread blocks acquiring the session lock. A send made *while
//! holding* a lock the core thread needs closes the cycle. No tier-1 test
//! provokes it; this pass refuses to let it compile in.
//!
//! Suppression: a line-level `allow(lock-discipline, ...)` on the blocking
//! call or the call site suppresses that finding; an allow on a function's
//! `fn` declaration line marks the whole function non-blocking for the
//! may-block propagation (use for functions whose blocking is by design and
//! never reached under a lock).

use super::common::guard_label;
use super::Workspace;
use crate::rules::RULE_LOCK_DISCIPLINE;
use crate::{Diagnostic, Severity};
use std::collections::HashSet;

/// The `lock-discipline` pass.
pub struct LockDiscipline;

impl super::Pass for LockDiscipline {
    fn name(&self) -> &'static str {
        RULE_LOCK_DISCIPLINE
    }

    fn run(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let g = &ws.graph;
        let mut diags = Vec::new();

        // Functions whose declaration line carries an allow: excluded from
        // may-block propagation entirely.
        let blocked: HashSet<usize> = (0..g.fns.len())
            .filter(|&id| {
                let decl = g.def(id).decl_line;
                g.file(id).allowed(RULE_LOCK_DISCIPLINE, decl)
            })
            .collect();

        // Seeds: functions with a direct (unsuppressed) blocking operation.
        let seeds: HashSet<usize> = (0..g.fns.len())
            .filter(|&id| {
                ws.blocking[id]
                    .iter()
                    .any(|b| !g.file(id).allowed(RULE_LOCK_DISCIPLINE, b.line))
            })
            .collect();
        let may_block = g.reach_to(&seeds, &blocked);

        for fn_id in 0..g.fns.len() {
            if blocked.contains(&fn_id) {
                continue;
            }
            let file = g.file(fn_id);
            for acq in &ws.acquisitions[fn_id] {
                // Direct blocking operations inside the guard's live range.
                for b in &ws.blocking[fn_id] {
                    if !acq.live.contains(&b.idx) {
                        continue;
                    }
                    if file.allowed(RULE_LOCK_DISCIPLINE, b.line) {
                        continue;
                    }
                    diags.push(Diagnostic {
                        rule: RULE_LOCK_DISCIPLINE.into(),
                        path: file.rel.clone(),
                        line: b.line,
                        severity: Severity::Deny,
                        message: format!(
                            "{} while the {} (acquired {}:{}) is live",
                            b.what,
                            guard_label(acq),
                            file.rel,
                            acq.line
                        ),
                        help: "drop the guard before the blocking operation (narrow the \
                               binding scope or call `drop(guard)`), or annotate \
                               `// quill-lint: allow(lock-discipline, reason = \"...\")`"
                            .into(),
                    });
                }
                // Call sites inside the live range whose callee may block.
                let mut reported_lines: HashSet<usize> = HashSet::new();
                for site in &g.calls[fn_id] {
                    if !acq.live.contains(&site.idx) || !may_block.contains_key(&site.callee) {
                        continue;
                    }
                    if file.allowed(RULE_LOCK_DISCIPLINE, site.line)
                        || !reported_lines.insert(site.line)
                    {
                        continue;
                    }
                    diags.push(Diagnostic {
                        rule: RULE_LOCK_DISCIPLINE.into(),
                        path: file.rel.clone(),
                        line: site.line,
                        severity: Severity::Deny,
                        message: format!(
                            "call into {} may block ({}) while the {} (acquired {}:{}) is live",
                            g.describe(site.callee),
                            g.chain(&may_block, site.callee),
                            guard_label(acq),
                            file.rel,
                            acq.line
                        ),
                        help: "drop the guard before the call, or — if the callee's blocking \
                               is unreachable from here — annotate the call site with \
                               `// quill-lint: allow(lock-discipline, reason = \"...\")`"
                            .into(),
                    });
                }
            }
        }
        diags
    }
}
