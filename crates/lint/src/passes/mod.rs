//! The pass framework: call-graph analyses that run after the per-file
//! token rules.
//!
//! A [`Pass`] sees the whole [`Workspace`] — every file's tokens, the
//! function table, and the approximate call graph — and returns
//! [`Diagnostic`]s. Shared per-function analyses (guard acquisitions with
//! live ranges, blocking-operation sites) are computed once in
//! [`Workspace::new`] so the lock passes don't re-scan.
//!
//! Passes (rule ids):
//! - [`lock_discipline`] — `lock-discipline`: no blocking operation (channel
//!   send/recv, thread join, blocking I/O) while a guard is live, directly
//!   or through any call chain.
//! - [`lock_order`] — `lock-order`: every pair of locks is acquired in one
//!   consistent order workspace-wide.
//! - [`wall_clock`] — `wall-clock-taint`: the no-wall-clock rule propagated
//!   through the call graph, across crates.
//! - [`hot_alloc`] — `hot-path-alloc`: no per-event allocation inside the
//!   loops of the data-path modules.

pub mod common;
pub mod hot_alloc;
pub mod lock_discipline;
pub mod lock_order;
pub mod wall_clock;

use crate::callgraph::{CallGraph, SourceFile};
use crate::Diagnostic;
use common::{Acquisition, BlockingOp};

/// The analysed workspace: the call graph plus per-function shared analyses.
pub struct Workspace {
    /// The approximate call graph over every file.
    pub graph: CallGraph,
    /// Guard acquisitions per global function id.
    pub acquisitions: Vec<Vec<Acquisition>>,
    /// Blocking operations per global function id.
    pub blocking: Vec<Vec<BlockingOp>>,
}

impl Workspace {
    /// Build the workspace model over prepared files.
    pub fn new(files: Vec<SourceFile>) -> Workspace {
        let graph = CallGraph::build(files);
        let n = graph.fns.len();
        let acquisitions = (0..n).map(|id| common::acquisitions(&graph, id)).collect();
        let blocking = (0..n).map(|id| common::blocking_ops(&graph, id)).collect();
        Workspace {
            graph,
            acquisitions,
            blocking,
        }
    }
}

/// One call-graph analysis.
pub trait Pass {
    /// The rule id this pass emits under.
    fn name(&self) -> &'static str;
    /// Run over the workspace, returning findings.
    fn run(&self, ws: &Workspace) -> Vec<Diagnostic>;
}

/// Every registered pass, in execution order.
pub fn all_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(lock_discipline::LockDiscipline),
        Box::new(lock_order::LockOrder),
        Box::new(wall_clock::WallClockTaint),
        Box::new(hot_alloc::HotPathAlloc),
    ]
}

/// Run every pass over the workspace.
pub fn run_passes(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for pass in all_passes() {
        diags.extend(pass.run(ws));
    }
    diags
}
