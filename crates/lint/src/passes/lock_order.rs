//! `lock-order`: every pair of locks must be acquired in one consistent
//! order across the whole workspace.
//!
//! An *edge* `A → B` is recorded when lock `B` is acquired (directly, or
//! transitively through a call chain) while a guard on lock `A` is live.
//! Two edges `A → B` and `B → A` are a deadlock-shaped cycle; the pass
//! reports the conflicting pair once, with both acquisition paths.
//!
//! Self-edges (`A → A`) are only reported for *direct* intraprocedural
//! re-acquisition — `parking_lot` locks are not re-entrant, so acquiring a
//! lock while its own guard is live in the same function is a guaranteed
//! deadlock. Re-acquisition through a call chain is deliberately not
//! reported: method-name resolution is approximate enough that most such
//! edges are fan-out artifacts (DESIGN.md §16 lists this as a known
//! false-negative class).

use super::common::LockId;
use super::Workspace;
use crate::rules::RULE_LOCK_ORDER;
use crate::{Diagnostic, Severity};
use std::collections::{HashMap, HashSet};

/// The `lock-order` pass.
pub struct LockOrder;

/// One observed held→acquired ordering with its provenance.
struct Edge {
    /// File of the acquisition-under-guard (or the call site reaching it).
    path: String,
    /// Line of that acquisition or call site.
    line: usize,
    /// Rendered description of how `B` is reached while `A` is held.
    via: String,
}

impl super::Pass for LockOrder {
    fn name(&self) -> &'static str {
        RULE_LOCK_ORDER
    }

    fn run(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let g = &ws.graph;
        let mut diags = Vec::new();

        // Which functions may (transitively) acquire each lock.
        let mut locks: Vec<LockId> = ws
            .acquisitions
            .iter()
            .flatten()
            .map(|a| a.lock.clone())
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        locks.sort();
        let mut may_acquire: HashMap<LockId, HashMap<usize, Option<usize>>> = HashMap::new();
        for lock in &locks {
            let seeds: HashSet<usize> = (0..g.fns.len())
                .filter(|&id| ws.acquisitions[id].iter().any(|a| &a.lock == lock))
                .collect();
            may_acquire.insert(lock.clone(), g.reach_to(&seeds, &HashSet::new()));
        }

        // Record edges held → acquired. First edge per ordered pair wins
        // (deterministic: functions and sites are visited in file order).
        let mut edges: HashMap<(LockId, LockId), Edge> = HashMap::new();
        for fn_id in 0..g.fns.len() {
            let file = g.file(fn_id);
            for held in &ws.acquisitions[fn_id] {
                // Direct nested acquisitions.
                for inner in &ws.acquisitions[fn_id] {
                    if inner.idx == held.idx || !held.live.contains(&inner.idx) {
                        continue;
                    }
                    if file.allowed(RULE_LOCK_ORDER, inner.line)
                        || file.allowed(RULE_LOCK_ORDER, held.line)
                    {
                        continue;
                    }
                    if inner.lock == held.lock {
                        // Direct re-acquisition: guaranteed deadlock.
                        diags.push(Diagnostic {
                            rule: RULE_LOCK_ORDER.into(),
                            path: file.rel.clone(),
                            line: inner.line,
                            severity: Severity::Deny,
                            message: format!(
                                "`{}` re-acquired while its own guard (acquired {}:{}) is \
                                 live; these locks are not re-entrant",
                                held.lock, file.rel, held.line
                            ),
                            help: "reuse the existing guard or drop it first".into(),
                        });
                        continue;
                    }
                    edges
                        .entry((held.lock.clone(), inner.lock.clone()))
                        .or_insert_with(|| Edge {
                            path: file.rel.clone(),
                            line: inner.line,
                            via: format!(
                                "`{}` acquires `{}` at {}:{} while holding `{}` \
                                 (acquired {}:{})",
                                g.name(fn_id),
                                inner.lock,
                                file.rel,
                                inner.line,
                                held.lock,
                                file.rel,
                                held.line
                            ),
                        });
                }
                // Call sites under the guard reaching other locks.
                for site in &g.calls[fn_id] {
                    if !held.live.contains(&site.idx) {
                        continue;
                    }
                    if file.allowed(RULE_LOCK_ORDER, site.line)
                        || file.allowed(RULE_LOCK_ORDER, held.line)
                    {
                        continue;
                    }
                    for lock in &locks {
                        if *lock == held.lock {
                            continue; // re-entrance via calls: not modelled
                        }
                        let reach = &may_acquire[lock];
                        if !reach.contains_key(&site.callee) {
                            continue;
                        }
                        edges
                            .entry((held.lock.clone(), lock.clone()))
                            .or_insert_with(|| Edge {
                                path: file.rel.clone(),
                                line: site.line,
                                via: format!(
                                    "`{}` holds `{}` (acquired {}:{}) across a call at \
                                     {}:{} reaching `{}` ({})",
                                    g.name(fn_id),
                                    held.lock,
                                    file.rel,
                                    held.line,
                                    file.rel,
                                    site.line,
                                    lock,
                                    g.chain(reach, site.callee)
                                ),
                            });
                    }
                }
            }
        }

        // Conflicts: both orientations present.
        let mut seen_pairs: HashSet<(LockId, LockId)> = HashSet::new();
        let mut keys: Vec<&(LockId, LockId)> = edges.keys().collect();
        keys.sort();
        for key in keys {
            let (a, b) = key;
            let canon = if a <= b {
                (a.clone(), b.clone())
            } else {
                (b.clone(), a.clone())
            };
            if !seen_pairs.insert(canon) {
                continue;
            }
            let forward = &edges[key];
            let Some(reverse) = edges.get(&(b.clone(), a.clone())) else {
                continue;
            };
            diags.push(Diagnostic {
                rule: RULE_LOCK_ORDER.into(),
                path: forward.path.clone(),
                line: forward.line,
                severity: Severity::Deny,
                message: format!(
                    "inconsistent lock order between `{a}` and `{b}`: {}; but {}",
                    forward.via, reverse.via
                ),
                help: "pick one acquisition order for this lock pair and restructure the \
                       other path (narrow a guard, or split the critical section); if one \
                       path is provably unreachable, annotate its acquisition with \
                       `// quill-lint: allow(lock-order, reason = \"...\")`"
                    .into(),
            });
        }
        diags
    }
}
