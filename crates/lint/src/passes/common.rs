//! Shared token-level analyses the concurrency passes build on: guard
//! acquisition sites with approximate live ranges, and blocking-operation
//! detection.

use crate::callgraph::CallGraph;
use crate::tokenizer::{Token, TokenKind};

/// What a lock is, approximately: the owning workspace member plus the final
/// identifier of the receiver chain (`self.handles.lock()` → `handles`).
/// Same-named fields in different crates are distinct locks; same-named
/// locals within a crate alias to one lock (a deliberate over-approximation
/// — DESIGN.md §16).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LockId {
    /// Workspace member (`core`, `serve`, ...).
    pub krate: String,
    /// Final receiver identifier before `.lock()`/`.read()`/`.write()`.
    pub name: String,
}

impl std::fmt::Display for LockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}::{}", self.krate, self.name)
    }
}

/// How long an acquired guard stays live.
#[derive(Debug, Clone)]
pub enum GuardExtent {
    /// `let g = x.lock();` — live from the binding to the end of the
    /// enclosing block (or an explicit `drop(g)`).
    Bound {
        /// The binding name.
        name: String,
    },
    /// `x.lock().method(...)` — live for the rest of its statement.
    Temp,
}

/// One `.lock()` / `.read()` / `.write()` acquisition inside a function.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Global id of the containing function.
    pub fn_id: usize,
    /// Token index of the `lock`/`read`/`write` identifier.
    pub idx: usize,
    /// 1-based source line.
    pub line: usize,
    /// Which lock this acquires.
    pub lock: LockId,
    /// Binding kind.
    pub extent: GuardExtent,
    /// Token range (within the file) in which the guard is live.
    pub live: std::ops::Range<usize>,
}

/// A potentially blocking operation at a token position.
#[derive(Debug, Clone, Copy)]
pub struct BlockingOp {
    /// Token index of the operation identifier.
    pub idx: usize,
    /// 1-based source line.
    pub line: usize,
    /// Human description, e.g. `channel send`.
    pub what: &'static str,
}

fn text(toks: &[Token], i: usize) -> Option<&str> {
    toks.get(i).map(|t| t.text.as_str())
}

/// Classify the token at `idx` as a blocking operation, if it is one.
///
/// `.read()` / `.write()` with **empty** parens are treated as `RwLock`
/// guard acquisitions, not blocking I/O; with arguments they are I/O.
/// `.join()` with empty parens is `JoinHandle::join` (slice `join` takes a
/// separator argument).
pub fn blocking_op(toks: &[Token], idx: usize) -> Option<&'static str> {
    let t = &toks[idx];
    if t.kind != TokenKind::Ident {
        return None;
    }
    let prev = idx.checked_sub(1).and_then(|i| text(toks, i));
    let n1 = text(toks, idx + 1);
    let n2 = text(toks, idx + 2);
    let method = prev == Some(".") && n1 == Some("(");
    match t.text.as_str() {
        "send" if method => Some("channel send (blocks while the bounded channel is full)"),
        "recv" | "recv_timeout" | "recv_deadline" if method => {
            Some("channel receive (blocks until a message arrives)")
        }
        "join" if method && n2 == Some(")") => Some("thread join (blocks until the thread exits)"),
        "accept" if method => Some("socket accept (blocks until a connection arrives)"),
        "wait" | "wait_timeout" if method => Some("condvar wait"),
        "sleep"
            if prev == Some(":")
                && idx >= 3
                && text(toks, idx - 2) == Some(":")
                && text(toks, idx - 3) == Some("thread") =>
        {
            Some("thread sleep")
        }
        "connect"
            if prev == Some(":")
                && idx >= 3
                && text(toks, idx - 2) == Some(":")
                && text(toks, idx - 3) == Some("TcpStream") =>
        {
            Some("TcpStream connect")
        }
        "flush" if method && n2 == Some(")") => Some("I/O flush"),
        "read_line" | "read_exact" | "read_to_end" | "read_to_string" | "write_all" if method => {
            Some("blocking I/O")
        }
        "read" | "write" if method && n2 != Some(")") => Some("blocking I/O"),
        _ => None,
    }
}

/// Whether the token at `idx` is a guard acquisition
/// (`.lock()` / `.read()` / `.write()` with empty parens).
fn is_acquisition(toks: &[Token], idx: usize) -> bool {
    let t = &toks[idx];
    t.kind == TokenKind::Ident
        && matches!(t.text.as_str(), "lock" | "read" | "write")
        && idx >= 1
        && text(toks, idx - 1) == Some(".")
        && text(toks, idx + 1) == Some("(")
        && text(toks, idx + 2) == Some(")")
}

/// Forward scan from `from` for the end of the current statement: the first
/// `;` at relative bracket depth ≤ 0, or the close of the enclosing block.
/// Returns the boundary token index (exclusive of the guard's life).
fn statement_end(toks: &[Token], from: usize, limit: usize) -> usize {
    let mut depth: isize = 0;
    let mut i = from;
    while i < limit {
        match toks[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" => depth -= 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            ";" if depth <= 0 => return i,
            _ => {}
        }
        i += 1;
    }
    limit
}

/// Forward scan for the close of the block enclosing position `from`:
/// the first `}` that takes relative depth negative.
fn enclosing_block_end(toks: &[Token], from: usize, limit: usize) -> usize {
    let mut depth: isize = 0;
    let mut i = from;
    while i < limit {
        match toks[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" => depth -= 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    limit
}

/// If the acquisition at `idx` is the top-level suffix of a
/// `let NAME = ...;` statement, return the binding name. The acquisition
/// must sit at bracket depth 0 of the initializer, and everything after its
/// `()` up to the `;` must be `.unwrap()`, `.expect(..)`, or `?`.
fn let_binding(toks: &[Token], idx: usize, body_start: usize) -> Option<String> {
    // Backward: find the statement start without the acquisition being
    // nested in brackets.
    let mut depth: isize = 0;
    let mut j = idx;
    let start = loop {
        if j == body_start {
            break j;
        }
        j -= 1;
        match toks[j].text.as_str() {
            ")" | "]" | "}" => depth += 1,
            "(" | "[" => {
                depth -= 1;
                if depth < 0 {
                    return None; // nested inside a call/index argument
                }
            }
            "{" => {
                depth -= 1;
                if depth < 0 {
                    break j + 1; // enclosing block open
                }
            }
            ";" if depth == 0 => break j + 1,
            _ => {}
        }
    };
    // Statement must be `let [mut] NAME = ...`.
    if text(toks, start) != Some("let") {
        return None;
    }
    let mut k = start + 1;
    if text(toks, k) == Some("mut") {
        k += 1;
    }
    let name = match toks.get(k) {
        Some(t) if t.kind == TokenKind::Ident => t.text.clone(),
        _ => return None,
    };
    if text(toks, k + 1) != Some("=") {
        return None; // pattern binding or typed form we don't model
    }
    // Forward: only trivial suffixes between `.lock()` and the `;`.
    let mut m = idx + 3; // past `lock ( )`
    loop {
        match text(toks, m) {
            Some(";") => return Some(name),
            Some("?") => m += 1,
            Some(".") => {
                let nm = text(toks, m + 1);
                if (nm == Some("unwrap") || nm == Some("expect")) && text(toks, m + 2) == Some("(")
                {
                    // skip to matching close paren
                    let mut d = 0isize;
                    let mut p = m + 2;
                    loop {
                        match text(toks, p) {
                            Some("(") => d += 1,
                            Some(")") => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            None => return None,
                            _ => {}
                        }
                        p += 1;
                    }
                    m = p + 1;
                } else {
                    return None;
                }
            }
            _ => return None,
        }
    }
}

/// Collect every guard acquisition in function `fn_id` of the graph, with
/// approximate live ranges. Tokens under `#[cfg(test)]` are skipped.
pub fn acquisitions(g: &CallGraph, fn_id: usize) -> Vec<Acquisition> {
    let fref = g.fns[fn_id];
    let file = &g.files[fref.file];
    let toks = &file.tokens;
    let body = file.syntax.fns[fref.local].body.clone();
    let mut out = Vec::new();
    for idx in body.clone() {
        if file.mask[idx] || !is_acquisition(toks, idx) {
            continue;
        }
        // Only acquisitions owned by this fn (not a nested fn's).
        if g.fn_of_token[fref.file][idx] != Some(fn_id) {
            continue;
        }
        // Receiver identity: the identifier before the `.`.
        let recv = match idx.checked_sub(2) {
            Some(i) if toks[i].kind == TokenKind::Ident => toks[i].text.clone(),
            _ => continue, // chained off a call — identity unknown, skip
        };
        let lock = LockId {
            krate: file.krate.clone(),
            name: recv,
        };
        let stmt_end = statement_end(toks, idx, body.end);
        let (extent, live) = match let_binding(toks, idx, body.start) {
            Some(name) => {
                let mut scope_end = enclosing_block_end(toks, stmt_end + 1, body.end);
                // An explicit `drop(name)` ends the guard early.
                let mut p = stmt_end;
                while p + 2 < scope_end {
                    if toks[p].text == "drop"
                        && text(toks, p + 1) == Some("(")
                        && text(toks, p + 2) == Some(&name)
                        && text(toks, p + 3) == Some(")")
                    {
                        scope_end = p;
                        break;
                    }
                    p += 1;
                }
                (GuardExtent::Bound { name }, idx..scope_end)
            }
            None => (GuardExtent::Temp, idx..stmt_end),
        };
        out.push(Acquisition {
            fn_id,
            idx,
            line: toks[idx].line,
            lock,
            extent,
            live,
        });
    }
    out
}

/// Collect every blocking operation in function `fn_id`, skipping
/// `#[cfg(test)]` tokens and guard acquisitions.
pub fn blocking_ops(g: &CallGraph, fn_id: usize) -> Vec<BlockingOp> {
    let fref = g.fns[fn_id];
    let file = &g.files[fref.file];
    let toks = &file.tokens;
    let body = file.syntax.fns[fref.local].body.clone();
    let mut out = Vec::new();
    for idx in body {
        if file.mask[idx] || g.fn_of_token[fref.file][idx] != Some(fn_id) {
            continue;
        }
        if is_acquisition(toks, idx) {
            continue;
        }
        if let Some(what) = blocking_op(toks, idx) {
            out.push(BlockingOp {
                idx,
                line: toks[idx].line,
                what,
            });
        }
    }
    out
}

/// Describe a guard for finding messages: `` `name` guard on `krate::lock` ``.
pub fn guard_label(a: &Acquisition) -> String {
    match &a.extent {
        GuardExtent::Bound { name } => format!("`{name}` guard on `{}`", a.lock),
        GuardExtent::Temp => format!("temporary guard on `{}`", a.lock),
    }
}
