//! `hot-path-alloc`: no per-event allocation inside the loops of the
//! data-path modules.
//!
//! Scope: the per-event loops of `crates/engine/src/operator/*`,
//! `crates/engine/src/fiba.rs`, `crates/engine/src/parallel.rs`,
//! `crates/core/src/buffer.rs`, and
//! `crates/core/src/session.rs`. Flagged constructs: `Vec::new`,
//! `Box::new`, `vec!`, `format!`, and `.clone()` — each of these inside a
//! `for`/`while`/`loop` body allocates (or deep-copies) once per event,
//! which at the paper's stream rates dominates the operator cost model.
//!
//! Constructor-shaped functions (`new`, `with_*`, `from_*`, `default`) are
//! exempt: their loops run once per session, not per event. Everything else
//! needs either a restructure (hoist the buffer, use `std::mem::take`,
//! clone outside the loop) or a line-level
//! `allow(hot-path-alloc, reason = "...")` stating why the allocation is
//! per-batch rather than per-event, or otherwise unavoidable.

use super::Workspace;
use crate::rules::RULE_HOT_PATH_ALLOC;
use crate::syntax::loop_bodies;
use crate::tokenizer::TokenKind;
use crate::{Diagnostic, Severity};

/// The `hot-path-alloc` pass.
pub struct HotPathAlloc;

/// Files whose loops are per-event by contract.
fn in_scope(rel: &str) -> bool {
    rel.starts_with("crates/engine/src/operator/")
        || rel == "crates/engine/src/fiba.rs"
        || rel == "crates/engine/src/parallel.rs"
        || rel == "crates/core/src/buffer.rs"
        || rel == "crates/core/src/session.rs"
}

/// Constructor-shaped functions run per-session, not per-event.
fn is_constructor(name: &str) -> bool {
    name == "new" || name == "default" || name.starts_with("with_") || name.starts_with("from_")
}

impl super::Pass for HotPathAlloc {
    fn name(&self) -> &'static str {
        RULE_HOT_PATH_ALLOC
    }

    fn run(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let g = &ws.graph;
        let mut diags = Vec::new();
        for fn_id in 0..g.fns.len() {
            let file = g.file(fn_id);
            if !in_scope(&file.rel) {
                continue;
            }
            let def = g.def(fn_id);
            if is_constructor(&def.name) {
                continue;
            }
            let toks = &file.tokens;
            let text = |i: usize| toks.get(i).map(|t| t.text.as_str());
            for body in loop_bodies(toks, def.body.clone()) {
                for idx in body {
                    if file.mask[idx] || toks[idx].kind != TokenKind::Ident {
                        continue;
                    }
                    let what = match toks[idx].text.as_str() {
                        ty @ ("Vec" | "Box")
                            if text(idx + 1) == Some(":")
                                && text(idx + 2) == Some(":")
                                && text(idx + 3) == Some("new") =>
                        {
                            if ty == "Vec" {
                                "`Vec::new()`"
                            } else {
                                "`Box::new()`"
                            }
                        }
                        "vec" if text(idx + 1) == Some("!") => "`vec![..]`",
                        "format" if text(idx + 1) == Some("!") => "`format!`",
                        "clone"
                            if idx > 0
                                && text(idx - 1) == Some(".")
                                && text(idx + 1) == Some("(")
                                && text(idx + 2) == Some(")") =>
                        {
                            "`.clone()`"
                        }
                        _ => continue,
                    };
                    let line = toks[idx].line;
                    if file.allowed(RULE_HOT_PATH_ALLOC, line) {
                        continue;
                    }
                    diags.push(Diagnostic {
                        rule: RULE_HOT_PATH_ALLOC.into(),
                        path: file.rel.clone(),
                        line,
                        severity: Severity::Deny,
                        message: format!(
                            "{what} inside a per-event loop of `{}` allocates once per element",
                            g.name(fn_id)
                        ),
                        help: "hoist the allocation out of the loop (reuse a buffer, \
                               `std::mem::take`, or move ownership instead of cloning), or \
                               annotate `// quill-lint: allow(hot-path-alloc, reason = \
                               \"...\")` stating why it is not per-event"
                            .into(),
                    });
                }
            }
        }
        diags
    }
}
