//! `quill-lint` — the workspace static-analysis gate.
//!
//! ```text
//! cargo run -p quill-lint -- --workspace [--root <dir>] [--format text|jsonl|sarif]
//!                            [--out <file>] [--sarif <file>]
//! ```
//!
//! Lints every workspace member source file against the project rules
//! (DESIGN.md §11 and §16). Exit codes form the CI contract:
//!
//! * `0` — clean (no deny-level finding),
//! * `1` — at least one deny-level finding,
//! * `2` — internal error (bad arguments, unreadable workspace, write
//!   failure): the lint result is *unknown*, which gates must treat
//!   differently from "findings exist".
//!
//! `--out` writes the findings as JSON lines (the
//! `results/lint_report.jsonl` artifact CI uploads); `--sarif` writes the
//! same findings as a SARIF 2.1.0 log (`results/lint_report.sarif`) for
//! code-scanning upload.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use quill_lint::rules::lint_workspace;
use quill_lint::{render_text, to_jsonl, to_sarif, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

/// Clean: no deny-level finding.
const EXIT_CLEAN: u8 = 0;
/// At least one deny-level finding.
const EXIT_DENY: u8 = 1;
/// Internal error — the lint result is unknown.
const EXIT_INTERNAL: u8 = 2;

/// Locate the workspace root: an explicit `--root`, else the current
/// directory if it holds a workspace manifest, else the compile-time
/// manifest directory's grandparent (`crates/lint/../..`).
fn find_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(r) = explicit {
        return r;
    }
    let cwd = PathBuf::from(".");
    let manifest = cwd.join("Cargo.toml");
    if let Ok(text) = std::fs::read_to_string(&manifest) {
        if text.contains("[workspace]") {
            return cwd;
        }
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or(cwd)
}

const USAGE: &str = "usage: quill-lint --workspace [--root <dir>] \
[--format text|jsonl|sarif] [--out <file>] [--sarif <file>]";

/// Write `content` to `path`, creating parent directories. Returns false
/// (after printing the error) on failure.
fn write_report(path: &PathBuf, content: &str) -> bool {
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(path, content) {
        eprintln!(
            "quill-lint: cannot write report to `{}`: {e}",
            path.display()
        );
        return false;
    }
    true
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut format = "text".to_string();
    let mut out_path: Option<PathBuf> = None;
    let mut sarif_path: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            // Whole-workspace is the only mode; the flag documents intent.
            "--workspace" => i += 1,
            "--root" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("--root requires a directory\n{USAGE}");
                    return ExitCode::from(EXIT_INTERNAL);
                };
                root = Some(PathBuf::from(v));
                i += 2;
            }
            "--format" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("--format requires `text`, `jsonl` or `sarif`\n{USAGE}");
                    return ExitCode::from(EXIT_INTERNAL);
                };
                if v != "text" && v != "jsonl" && v != "sarif" {
                    eprintln!("unknown format `{v}`\n{USAGE}");
                    return ExitCode::from(EXIT_INTERNAL);
                }
                format = v.clone();
                i += 2;
            }
            "--out" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("--out requires a file path\n{USAGE}");
                    return ExitCode::from(EXIT_INTERNAL);
                };
                out_path = Some(PathBuf::from(v));
                i += 2;
            }
            "--sarif" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("--sarif requires a file path\n{USAGE}");
                    return ExitCode::from(EXIT_INTERNAL);
                };
                sarif_path = Some(PathBuf::from(v));
                i += 2;
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::from(EXIT_CLEAN);
            }
            other => {
                eprintln!("unexpected argument `{other}`\n{USAGE}");
                return ExitCode::from(EXIT_INTERNAL);
            }
        }
    }

    let root = find_root(root);
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "quill-lint: `{}` is not a workspace root (no Cargo.toml)",
            root.display()
        );
        return ExitCode::from(EXIT_INTERNAL);
    }
    let diags = match lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!(
                "quill-lint: cannot walk workspace at `{}`: {e}",
                root.display()
            );
            return ExitCode::from(EXIT_INTERNAL);
        }
    };

    if let Some(path) = &out_path {
        if !write_report(path, &to_jsonl(&diags)) {
            return ExitCode::from(EXIT_INTERNAL);
        }
    }
    if let Some(path) = &sarif_path {
        if !write_report(path, &to_sarif(&diags)) {
            return ExitCode::from(EXIT_INTERNAL);
        }
    }

    match format.as_str() {
        "jsonl" => print!("{}", to_jsonl(&diags)),
        "sarif" => println!("{}", to_sarif(&diags)),
        _ => print!("{}", render_text(&diags)),
    }

    let denies = diags
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .count();
    if denies > 0 {
        eprintln!("quill-lint: {denies} deny-level finding(s)");
        ExitCode::from(EXIT_DENY)
    } else {
        ExitCode::from(EXIT_CLEAN)
    }
}
