//! `quill-lint` — the workspace static-analysis gate.
//!
//! ```text
//! cargo run -p quill-lint -- --workspace [--root <dir>] [--format text|jsonl] [--out <file>]
//! ```
//!
//! Lints every workspace member source file against the project rules
//! (DESIGN.md §11) and exits non-zero when any deny-level finding remains.
//! `--out` additionally writes the findings as JSON lines (the
//! `results/lint_report.jsonl` artifact CI uploads).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use quill_lint::rules::lint_workspace;
use quill_lint::{render_text, to_jsonl, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

/// Locate the workspace root: an explicit `--root`, else the current
/// directory if it holds a workspace manifest, else the compile-time
/// manifest directory's grandparent (`crates/lint/../..`).
fn find_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(r) = explicit {
        return r;
    }
    let cwd = PathBuf::from(".");
    let manifest = cwd.join("Cargo.toml");
    if let Ok(text) = std::fs::read_to_string(&manifest) {
        if text.contains("[workspace]") {
            return cwd;
        }
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or(cwd)
}

const USAGE: &str =
    "usage: quill-lint --workspace [--root <dir>] [--format text|jsonl] [--out <file>]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut format = "text".to_string();
    let mut out_path: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            // Whole-workspace is the only mode; the flag documents intent.
            "--workspace" => i += 1,
            "--root" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("--root requires a directory\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                root = Some(PathBuf::from(v));
                i += 2;
            }
            "--format" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("--format requires `text` or `jsonl`\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                if v != "text" && v != "jsonl" {
                    eprintln!("unknown format `{v}`\n{USAGE}");
                    return ExitCode::FAILURE;
                }
                format = v.clone();
                i += 2;
            }
            "--out" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("--out requires a file path\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                out_path = Some(PathBuf::from(v));
                i += 2;
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unexpected argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = find_root(root);
    let diags = match lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!(
                "quill-lint: cannot walk workspace at `{}`: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &out_path {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(path, to_jsonl(&diags)) {
            eprintln!(
                "quill-lint: cannot write report to `{}`: {e}",
                path.display()
            );
            return ExitCode::FAILURE;
        }
    }

    match format.as_str() {
        "jsonl" => print!("{}", to_jsonl(&diags)),
        _ => print!("{}", render_text(&diags)),
    }

    let denies = diags
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .count();
    if denies > 0 {
        eprintln!("quill-lint: {denies} deny-level finding(s)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
