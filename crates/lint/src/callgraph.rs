//! The approximate workspace call graph the concurrency passes walk.
//!
//! Nodes are the functions recovered by [`crate::syntax`]; edges are call
//! sites resolved by name with three heuristics, in order:
//!
//! 1. **Receiver typing for `self`**: `self.m(..)` inside `impl T` resolves
//!    to `T::m` when it exists.
//! 2. **Path typing**: `T::m(..)` resolves to methods of any `impl T`;
//!    well-known `std` path roots (`Vec`, `mem`, `thread`, ...) resolve to
//!    nothing rather than to a same-named workspace function.
//! 3. **Name matching with an ambiguity cap**: any other `x.m(..)` resolves
//!    to *every* workspace method named `m` (excluding the caller itself) —
//!    unless more than [`AMBIGUITY_CAP`] candidates match, in which case
//!    the call is treated as unresolved. Unresolved calls are a documented
//!    false-negative class (DESIGN.md §16), preferred over drowning real
//!    findings in fan-out noise.
//!
//! The graph is conservative in the direction that matters for the lock
//! passes: an ambiguous-but-capped method call produces edges to every
//! candidate, so "may block" and "may acquire" taint over-approximates.

use crate::syntax::FileSyntax;
use crate::tokenizer::{Token, TokenKind};
use std::collections::{HashMap, HashSet, VecDeque};

/// Above this many same-named candidates, a method call resolves to nothing
/// (see the module docs for the rationale).
pub const AMBIGUITY_CAP: usize = 6;

/// Path roots that belong to `std` / vendored externals: `Root::m(..)`
/// never resolves into the workspace.
const STD_PATH_ROOTS: &[&str] = &[
    "std",
    "core",
    "alloc",
    "mem",
    "ptr",
    "str",
    "slice",
    "iter",
    "fmt",
    "io",
    "thread",
    "process",
    "cmp",
    "ops",
    "collections",
    "sync",
    "mpsc",
    "channel",
    "time",
    "net",
    "fs",
    "env",
    "Vec",
    "Box",
    "String",
    "Arc",
    "Rc",
    "Option",
    "Result",
    "Some",
    "None",
    "Ok",
    "Err",
    "Instant",
    "SystemTime",
    "Duration",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "VecDeque",
    "AtomicU64",
    "AtomicUsize",
    "AtomicBool",
    "Ordering",
    "PathBuf",
    "Path",
    "Mutex",
    "RwLock",
    "Condvar",
    "TcpStream",
    "TcpListener",
    "JoinHandle",
    "Default",
    "Clone",
    "Iterator",
    "ExitCode",
    "Self",
    "f64",
    "f32",
    "u8",
    "u16",
    "u32",
    "u64",
    "usize",
    "i32",
    "i64",
];

/// Method names so common on `std` types (atomics, collections, iterators,
/// `Option`/`Result`) that resolving them by bare name would wire, say,
/// every `buf.push(..)` to every workspace `push` method and flood the lock
/// passes with phantom edges. Receiver-typed resolution (`self.take()`
/// inside the right impl, `TelemetryReporter::take(..)`) still works; only
/// the untyped name fallback skips them. This is a documented
/// false-negative class (DESIGN.md §16).
const COMMON_STD_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "len",
    "is_empty",
    "clear",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "drain",
    "collect",
    "extend",
    "clone",
    "next",
    "take",
    "replace",
    "map",
    "map_err",
    "and_then",
    "or_else",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "as_ref",
    "as_mut",
    "as_str",
    "as_bytes",
    "to_string",
    "to_vec",
    "to_owned",
    "parse",
    "trim",
    "split",
    "find",
    "position",
    "entry",
    "or_default",
    "or_insert",
    "retain",
    "sort",
    "sort_by",
    "sort_by_key",
    "min",
    "max",
    "clamp",
    "abs",
    "lock",
    "read",
    "write",
    "last",
    "first",
    "count",
    "sum",
    "rev",
    "zip",
    "enumerate",
    "filter",
    "fold",
    "any",
    "all",
];

/// Keywords that can precede `(` without being a call.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "let", "in", "as", "move", "fn", "use", "mod",
    "impl", "where", "unsafe", "dyn", "break", "continue", "else", "await", "struct", "enum",
    "trait", "type", "const", "static", "pub", "crate", "super",
];

/// One source file prepared for analysis.
pub struct SourceFile {
    /// Workspace-relative path (forward slashes).
    pub rel: String,
    /// Owning workspace member (`crates/<name>` → `<name>`, else the top
    /// directory: `examples`, `tests`).
    pub krate: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// `true` for tokens inside `#[cfg(test)]` items.
    pub mask: Vec<bool>,
    /// Per rule, the source lines suppressed by well-formed
    /// `quill-lint: allow(...)` annotations.
    pub allow_lines: HashMap<String, HashSet<usize>>,
    /// Parsed item structure.
    pub syntax: FileSyntax,
}

impl SourceFile {
    /// Whether findings of `rule` are suppressed on `line`.
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allow_lines
            .get(rule)
            .is_some_and(|s| s.contains(&line))
    }
}

/// A resolved call site: which function is (possibly) called, from where.
#[derive(Debug, Clone, Copy)]
pub struct CallSite {
    /// Global id of the candidate callee.
    pub callee: usize,
    /// 1-based line of the call.
    pub line: usize,
    /// Token index of the callee name at the call site.
    pub idx: usize,
}

/// Where a function lives: file index plus index into that file's
/// [`FileSyntax::fns`].
#[derive(Debug, Clone, Copy)]
pub struct FnRef {
    /// Index into [`CallGraph::files`].
    pub file: usize,
    /// Index into the file's [`FileSyntax::fns`].
    pub local: usize,
}

/// The whole-workspace call graph.
pub struct CallGraph {
    /// Every analysed file.
    pub files: Vec<SourceFile>,
    /// Global function table.
    pub fns: Vec<FnRef>,
    /// Outgoing call edges per global function id.
    pub calls: Vec<Vec<CallSite>>,
    /// Per file: innermost owning function of each token (global id).
    pub fn_of_token: Vec<Vec<Option<usize>>>,
}

impl CallGraph {
    /// The [`crate::syntax::FnDef`] of global function `id`.
    pub fn def(&self, id: usize) -> &crate::syntax::FnDef {
        let r = self.fns[id];
        &self.files[r.file].syntax.fns[r.local]
    }

    /// The file global function `id` is defined in.
    pub fn file(&self, id: usize) -> &SourceFile {
        &self.files[self.fns[id].file]
    }

    /// Human-readable name: `Type::name` or `name`.
    pub fn name(&self, id: usize) -> String {
        let d = self.def(id);
        match &d.impl_type {
            Some(t) => format!("{t}::{}", d.name),
            None => d.name.clone(),
        }
    }

    /// `Type::name (path:line)` — the form used in finding messages.
    pub fn describe(&self, id: usize) -> String {
        let d = self.def(id);
        format!(
            "`{}` ({}:{})",
            self.name(id),
            self.file(id).rel,
            d.decl_line
        )
    }

    /// Build the graph over `files`.
    pub fn build(files: Vec<SourceFile>) -> CallGraph {
        // Global fn table + indices.
        let mut fns: Vec<FnRef> = Vec::new();
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        let mut by_type_name: HashMap<(String, String), Vec<usize>> = HashMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (li, def) in f.syntax.fns.iter().enumerate() {
                let id = fns.len();
                fns.push(FnRef {
                    file: fi,
                    local: li,
                });
                by_name.entry(def.name.clone()).or_default().push(id);
                if let Some(t) = &def.impl_type {
                    by_type_name
                        .entry((t.clone(), def.name.clone()))
                        .or_default()
                        .push(id);
                }
            }
        }

        // Token ownership (innermost fn wins).
        let mut fn_of_token: Vec<Vec<Option<usize>>> = Vec::with_capacity(files.len());
        let mut global_base = 0usize;
        for f in &files {
            let mut owner: Vec<Option<usize>> = vec![None; f.tokens.len()];
            let mut sized: Vec<usize> = vec![usize::MAX; f.tokens.len()];
            for (li, def) in f.syntax.fns.iter().enumerate() {
                let id = global_base + li;
                let len = def.body.len();
                for idx in def.body.clone() {
                    if len < sized[idx] {
                        sized[idx] = len;
                        owner[idx] = Some(id);
                    }
                }
            }
            global_base += f.syntax.fns.len();
            fn_of_token.push(owner);
        }

        // Call extraction + resolution.
        let krate_of_fn: Vec<&str> = fns.iter().map(|r| files[r.file].krate.as_str()).collect();
        let mut calls: Vec<Vec<CallSite>> = vec![Vec::new(); fns.len()];
        for (fi, f) in files.iter().enumerate() {
            let toks = &f.tokens;
            let text = |i: usize| toks.get(i).map(|t| t.text.as_str());
            for idx in 0..toks.len() {
                if toks[idx].kind != TokenKind::Ident || text(idx + 1) != Some("(") {
                    continue;
                }
                let name = toks[idx].text.as_str();
                if NON_CALL_IDENTS.contains(&name) {
                    continue;
                }
                let Some(caller) = fn_of_token[fi][idx] else {
                    continue;
                };
                let prev = idx.checked_sub(1).and_then(text);
                if prev == Some("fn") || prev == Some("struct") {
                    continue; // a definition, not a call
                }
                let candidates: Vec<usize> = if prev == Some(".") {
                    resolve_method(
                        &fns,
                        &files,
                        &by_name,
                        &by_type_name,
                        caller,
                        fi,
                        toks,
                        idx,
                        name,
                    )
                } else if prev == Some(":") && idx >= 2 && text(idx - 2) == Some(":") {
                    resolve_path(
                        &by_name,
                        &by_type_name,
                        &krate_of_fn,
                        caller,
                        toks,
                        idx,
                        name,
                    )
                } else {
                    resolve_free(&fns, &files, &by_name, &krate_of_fn, caller, name)
                };
                for callee in candidates {
                    calls[caller].push(CallSite {
                        callee,
                        line: toks[idx].line,
                        idx,
                    });
                }
            }
        }

        CallGraph {
            files,
            fns,
            calls,
            fn_of_token,
        }
    }

    /// Which functions can reach a seed function through call edges, with a
    /// next-hop witness per reached function. `blocked` functions neither
    /// count as seeds nor propagate.
    ///
    /// Returns `reached → Some(next hop toward a seed)` (`None` for the
    /// seeds themselves).
    pub fn reach_to(
        &self,
        seeds: &HashSet<usize>,
        blocked: &HashSet<usize>,
    ) -> HashMap<usize, Option<usize>> {
        // Reverse adjacency.
        let mut rev: HashMap<usize, Vec<usize>> = HashMap::new();
        for (caller, sites) in self.calls.iter().enumerate() {
            for s in sites {
                rev.entry(s.callee).or_default().push(caller);
            }
        }
        let mut out: HashMap<usize, Option<usize>> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &s in seeds {
            if blocked.contains(&s) {
                continue;
            }
            out.insert(s, None);
            queue.push_back(s);
        }
        while let Some(cur) = queue.pop_front() {
            if let Some(callers) = rev.get(&cur) {
                for &c in callers {
                    if blocked.contains(&c) || out.contains_key(&c) {
                        continue;
                    }
                    out.insert(c, Some(cur));
                    queue.push_back(c);
                }
            }
        }
        out
    }

    /// Render the witness chain `start → ... → seed` from a
    /// [`CallGraph::reach_to`] map, e.g. `` `a` → `b` → `c` ``.
    pub fn chain(&self, reach: &HashMap<usize, Option<usize>>, start: usize) -> String {
        let mut parts = vec![format!("`{}`", self.name(start))];
        let mut cur = start;
        let mut hops = 0;
        while let Some(Some(next)) = reach.get(&cur) {
            parts.push(format!("`{}`", self.name(*next)));
            cur = *next;
            hops += 1;
            if hops > 12 {
                parts.push("…".into());
                break;
            }
        }
        parts.join(" → ")
    }
}

/// Root identifier of a `.m(..)` receiver chain (`self.a.b.m()` → `self`),
/// or `None` when the chain runs through a call or index.
fn receiver_root(toks: &[Token], call_idx: usize) -> Option<String> {
    // call_idx points at the method name; call_idx-1 is `.`.
    let mut j = call_idx.checked_sub(2)?;
    loop {
        let t = &toks[j];
        if t.kind != TokenKind::Ident {
            return None; // chained off a call/index/paren — unknown root
        }
        match j.checked_sub(1) {
            Some(p) if toks[p].text == "." => match p.checked_sub(1) {
                Some(pp) => j = pp,
                None => return Some(t.text.clone()),
            },
            _ => return Some(t.text.clone()),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn resolve_method(
    fns: &[FnRef],
    files: &[SourceFile],
    by_name: &HashMap<String, Vec<usize>>,
    by_type_name: &HashMap<(String, String), Vec<usize>>,
    caller: usize,
    file_idx: usize,
    toks: &[Token],
    idx: usize,
    name: &str,
) -> Vec<usize> {
    let root = receiver_root(toks, idx);
    if root.as_deref() == Some("self") {
        let caller_ref = fns[caller];
        let caller_ty = files[file_idx].syntax.fns[caller_ref.local]
            .impl_type
            .clone();
        if let Some(ty) = caller_ty {
            if let Some(c) = by_type_name.get(&(ty, name.to_string())) {
                return c.clone();
            }
        }
    }
    if COMMON_STD_METHODS.contains(&name) {
        return Vec::new(); // untyped generic name: documented false negative
    }
    match by_name.get(name) {
        Some(c) => {
            let filtered: Vec<usize> = c.iter().copied().filter(|&id| id != caller).collect();
            if filtered.len() > AMBIGUITY_CAP {
                Vec::new() // unresolved: documented false-negative class
            } else {
                filtered
            }
        }
        None => Vec::new(),
    }
}

fn resolve_path(
    by_name: &HashMap<String, Vec<usize>>,
    by_type_name: &HashMap<(String, String), Vec<usize>>,
    krate_of_fn: &[&str],
    caller: usize,
    toks: &[Token],
    idx: usize,
    name: &str,
) -> Vec<usize> {
    let seg = match idx.checked_sub(3) {
        Some(i) if toks[i].kind == TokenKind::Ident => toks[i].text.clone(),
        _ => return Vec::new(),
    };
    if let Some(c) = by_type_name.get(&(seg.clone(), name.to_string())) {
        return c.clone();
    }
    if STD_PATH_ROOTS.contains(&seg.as_str()) {
        return Vec::new();
    }
    // Module path (`wire::parse_line`): resolve by name, same crate first.
    match by_name.get(name) {
        Some(c) => {
            let same: Vec<usize> = c
                .iter()
                .copied()
                .filter(|&id| krate_of_fn[id] == krate_of_fn[caller])
                .collect();
            let pool = if same.is_empty() { c.clone() } else { same };
            if pool.len() > AMBIGUITY_CAP {
                Vec::new()
            } else {
                pool
            }
        }
        None => Vec::new(),
    }
}

fn resolve_free(
    fns: &[FnRef],
    files: &[SourceFile],
    by_name: &HashMap<String, Vec<usize>>,
    krate_of_fn: &[&str],
    caller: usize,
    name: &str,
) -> Vec<usize> {
    let Some(c) = by_name.get(name) else {
        return Vec::new();
    };
    let free: Vec<usize> = c
        .iter()
        .copied()
        .filter(|&id| {
            let r = fns[id];
            files[r.file].syntax.fns[r.local].impl_type.is_none()
        })
        .collect();
    let same: Vec<usize> = free
        .iter()
        .copied()
        .filter(|&id| krate_of_fn[id] == krate_of_fn[caller])
        .collect();
    let pool = if same.is_empty() { free } else { same };
    if pool.len() > AMBIGUITY_CAP {
        Vec::new()
    } else {
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::prepare_source;

    fn graph(sources: &[(&str, &str)]) -> CallGraph {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, src)| prepare_source(rel, src))
            .collect();
        CallGraph::build(files)
    }

    fn fn_id(g: &CallGraph, name: &str) -> usize {
        (0..g.fns.len())
            .find(|&id| g.name(id) == name)
            .unwrap_or_else(|| panic!("fn {name} not found"))
    }

    #[test]
    fn free_call_resolves_within_crate() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn callee() {} fn caller() { callee(); }",
        )]);
        let caller = fn_id(&g, "caller");
        let callee = fn_id(&g, "callee");
        assert!(g.calls[caller].iter().any(|s| s.callee == callee));
    }

    #[test]
    fn self_method_prefers_same_impl_type() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "struct A; struct B;
             impl A { fn go(&self) { self.step(); } fn step(&self) {} }
             impl B { fn step(&self) {} }",
        )]);
        let go = fn_id(&g, "A::go");
        let a_step = fn_id(&g, "A::step");
        let b_step = fn_id(&g, "B::step");
        let callees: Vec<usize> = g.calls[go].iter().map(|s| s.callee).collect();
        assert!(callees.contains(&a_step));
        assert!(!callees.contains(&b_step));
    }

    #[test]
    fn unknown_receiver_fans_out_to_all_candidates_cross_crate() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "struct A; impl A { fn work(&self) {} }",
            ),
            (
                "crates/b/src/lib.rs",
                "struct B; impl B { fn work(&self) {} }
                 fn driver(x: &X) { x.work(); }",
            ),
        ]);
        let driver = fn_id(&g, "driver");
        let callees: Vec<usize> = g.calls[driver].iter().map(|s| s.callee).collect();
        assert_eq!(callees.len(), 2, "both `work` methods are candidates");
    }

    #[test]
    fn std_path_roots_do_not_resolve_into_the_workspace() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn take() {} fn caller() { let x = std::mem::take(&mut y); }",
        )]);
        let caller = fn_id(&g, "caller");
        assert!(
            g.calls[caller].is_empty(),
            "mem::take is not workspace take()"
        );
    }

    #[test]
    fn reach_to_finds_transitive_callers_with_witness() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn leaf() {} fn mid() { leaf(); } fn top() { mid(); }",
        )]);
        let leaf = fn_id(&g, "leaf");
        let top = fn_id(&g, "top");
        let reach = g.reach_to(&HashSet::from([leaf]), &HashSet::new());
        assert!(reach.contains_key(&top));
        let chain = g.chain(&reach, top);
        assert_eq!(chain, "`top` → `mid` → `leaf`");
    }

    #[test]
    fn blocked_fns_stop_propagation() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn leaf() {} fn mid() { leaf(); } fn top() { mid(); }",
        )]);
        let leaf = fn_id(&g, "leaf");
        let mid = fn_id(&g, "mid");
        let top = fn_id(&g, "top");
        let reach = g.reach_to(&HashSet::from([leaf]), &HashSet::from([mid]));
        assert!(!reach.contains_key(&top), "blocked mid stops the walk");
    }
}
