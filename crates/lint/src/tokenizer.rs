//! A hand-rolled Rust tokenizer, just enough for path-scoped token lints.
//!
//! The lexer understands the parts of Rust's lexical grammar that matter for
//! not producing false positives: line/doc comments, nested block comments,
//! string/char/byte/raw-string literals, lifetimes, numbers, identifiers and
//! punctuation. Everything inside comments and string literals is invisible
//! to the rules — so an `unwrap()` in a doctest or an error message never
//! fires — with one exception: comments are scanned for `quill-lint:`
//! allow-annotations, which are returned alongside the token stream.

/// What kind of lexeme a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character (`.`, `!`, `{`, ...).
    Punct,
    /// String/char/number literal (content not preserved verbatim for
    /// strings; rules never need it).
    Literal,
    /// A lifetime such as `'a`.
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text (for [`TokenKind::Literal`] strings, the placeholder
    /// `"…"`).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
    /// Lexeme class.
    pub kind: TokenKind,
}

/// A parsed `// quill-lint: allow(rule, reason = "...")` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule being allowed.
    pub rule: String,
    /// The stated reason (empty when missing — malformed).
    pub reason: String,
    /// 1-based line the annotation appears on.
    pub line: usize,
    /// `Some(problem)` when the annotation does not follow the grammar.
    pub malformed: Option<String>,
}

/// Output of [`lex`]: the token stream plus any allow-annotations found in
/// comments.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Tokens outside comments and in source order.
    pub tokens: Vec<Token>,
    /// Allow-annotations found in comments, in source order.
    pub allows: Vec<Allow>,
}

/// Marker that introduces an allow-annotation inside a comment.
const ANNOTATION: &str = "quill-lint:";

/// Parse the annotation body following `quill-lint:` in a comment.
fn parse_annotation(body: &str, line: usize) -> Allow {
    let malformed = |why: &str| Allow {
        rule: String::new(),
        reason: String::new(),
        line,
        malformed: Some(why.to_string()),
    };
    let body = body.trim();
    let Some(rest) = body.strip_prefix("allow(") else {
        return malformed("expected `allow(<rule>, reason = \"...\")`");
    };
    let Some(end) = rest.rfind(')') else {
        return malformed("unclosed `allow(`");
    };
    let inner = &rest[..end];
    let (rule, reason_part) = match inner.split_once(',') {
        Some((r, rest)) => (r.trim(), Some(rest.trim())),
        None => (inner.trim(), None),
    };
    if rule.is_empty() {
        return malformed("missing rule name in `allow(...)`");
    }
    let Some(reason_part) = reason_part else {
        return Allow {
            rule: rule.to_string(),
            reason: String::new(),
            line,
            malformed: Some("missing `reason = \"...\"`".to_string()),
        };
    };
    let Some(rhs) = reason_part
        .strip_prefix("reason")
        .map(|r| r.trim_start())
        .and_then(|r| r.strip_prefix('='))
        .map(|r| r.trim_start())
    else {
        return malformed("expected `reason = \"...\"` after the rule name");
    };
    let reason = rhs
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .unwrap_or("")
        .trim()
        .to_string();
    if reason.is_empty() {
        return Allow {
            rule: rule.to_string(),
            reason,
            line,
            malformed: Some("empty reason".to_string()),
        };
    }
    Allow {
        rule: rule.to_string(),
        reason,
        line,
        malformed: None,
    }
}

/// Scan a comment's text for an allow-annotation.
fn scan_comment(text: &str, line: usize, allows: &mut Vec<Allow>) {
    if let Some(at) = text.find(ANNOTATION) {
        let body = &text[at + ANNOTATION.len()..];
        // Strip a block-comment terminator if the annotation sits in one.
        let body = body.split("*/").next().unwrap_or(body);
        allows.push(parse_annotation(body, line));
    }
}

/// Tokenize `source`, returning tokens outside comments/strings plus any
/// `quill-lint:` annotations found in comments.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut out = Lexed::default();

    // Count newlines in chars[from..to] and advance `line`.
    fn advance_lines(chars: &[char], from: usize, to: usize, line: &mut usize) {
        *line += chars[from..to].iter().filter(|&&c| c == '\n').count();
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        // Line and doc comments. Annotations live in plain `//` comments
        // only: doc comments (`///`, `//!`) describe the grammar without
        // enacting it.
        if c == '/' && next == Some('/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            if !text.starts_with("///") && !text.starts_with("//!") {
                scan_comment(&text, line, &mut out.allows);
            }
            continue;
        }
        // Block comments (nested).
        if c == '/' && next == Some('*') {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            let text: String = chars[start..i.min(chars.len())].iter().collect();
            if !text.starts_with("/**") && !text.starts_with("/*!") {
                scan_comment(&text, start_line, &mut out.allows);
            }
            continue;
        }
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Identifiers / keywords — possibly a raw/byte string prefix.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let is_str_prefix = matches!(text.as_str(), "r" | "b" | "br" | "rb" | "c" | "cr");
            if is_str_prefix && matches!(chars.get(i), Some('"') | Some('#')) {
                // Raw / byte / C string: r"..."  r#"..."#  b"..."  br#"..."#
                let lit_line = line;
                let mut hashes = 0usize;
                while chars.get(i) == Some(&'#') {
                    hashes += 1;
                    i += 1;
                }
                if chars.get(i) == Some(&'"') {
                    i += 1;
                    // Scan for closing quote followed by `hashes` hashes.
                    let from = i;
                    'scan: while i < chars.len() {
                        if chars[i] == '"' {
                            let mut ok = true;
                            for h in 0..hashes {
                                if chars.get(i + 1 + h) != Some(&'#') {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                advance_lines(&chars, from, i, &mut line);
                                i += 1 + hashes;
                                break 'scan;
                            }
                        }
                        i += 1;
                    }
                    out.tokens.push(Token {
                        text: "\"…\"".into(),
                        line: lit_line,
                        kind: TokenKind::Literal,
                    });
                } else {
                    // `r#ident` raw identifier: emit the identifier.
                    let id_start = i;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        text: chars[id_start..i].iter().collect(),
                        line,
                        kind: TokenKind::Ident,
                    });
                }
            } else {
                out.tokens.push(Token {
                    text,
                    line,
                    kind: TokenKind::Ident,
                });
            }
            continue;
        }
        // Ordinary string literals.
        if c == '"' {
            let lit_line = line;
            i += 1;
            while i < chars.len() {
                match chars[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            out.tokens.push(Token {
                text: "\"…\"".into(),
                line: lit_line,
                kind: TokenKind::Literal,
            });
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            // Lifetime: 'ident not followed by a closing quote.
            let is_lifetime = match next {
                Some(n) if n.is_alphabetic() || n == '_' => {
                    // 'a' is a char literal; 'a  (no closing quote) a lifetime.
                    let mut j = i + 1;
                    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                    chars.get(j) != Some(&'\'')
                }
                _ => false,
            };
            if is_lifetime {
                let start = i;
                i += 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    text: chars[start..i].iter().collect(),
                    line,
                    kind: TokenKind::Lifetime,
                });
            } else {
                // Char literal, possibly escaped.
                let lit_line = line;
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '\'' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                out.tokens.push(Token {
                    text: "'…'".into(),
                    line: lit_line,
                    kind: TokenKind::Literal,
                });
            }
            continue;
        }
        // Numbers (loose: digits then any alphanumeric/underscore/dot run,
        // without swallowing `..` or a method call like `1.max(2)`).
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() {
                let d = chars[i];
                let digit_dot_digit = d == '.'
                    && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                    && chars
                        .get(i.wrapping_sub(1))
                        .is_some_and(|p| p.is_ascii_digit());
                if d.is_alphanumeric() || d == '_' || digit_dot_digit {
                    i += 1;
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                text: chars[start..i].iter().collect(),
                line,
                kind: TokenKind::Literal,
            });
            continue;
        }
        // Everything else: single-character punctuation.
        out.tokens.push(Token {
            text: c.to_string(),
            line,
            kind: TokenKind::Punct,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_invisible() {
        let src = r#"
            // unwrap() in a comment
            /* panic! in a /* nested */ block */
            let s = "unwrap() in a string";
            let c = '"';
            x.unwrap();
        "#;
        let ids = idents(src);
        assert_eq!(
            ids.iter().filter(|t| t.as_str() == "unwrap").count(),
            1,
            "{ids:?}"
        );
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn raw_strings_are_literals() {
        let src = r##"let s = r#"unwrap() " inside raw"#; y.expect("x");"##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"expect".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x';";
        let toks = lex(src);
        assert!(toks
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
        assert!(toks
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "'…'"));
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = \"two\nlines\";\nb.unwrap();";
        let toks = lex(src);
        let unwrap = toks.tokens.iter().find(|t| t.text == "unwrap").unwrap();
        assert_eq!(unwrap.line, 3);
    }

    #[test]
    fn annotation_parses_rule_and_reason() {
        let src = "// quill-lint: allow(no-panic, reason = \"heap checked above\")\nx.unwrap();";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        let a = &lexed.allows[0];
        assert_eq!(a.rule, "no-panic");
        assert_eq!(a.reason, "heap checked above");
        assert_eq!(a.line, 1);
        assert!(a.malformed.is_none());
    }

    #[test]
    fn annotation_without_reason_is_malformed() {
        let lexed = lex("// quill-lint: allow(no-panic)\n");
        assert_eq!(lexed.allows.len(), 1);
        assert!(lexed.allows[0].malformed.is_some());
        let lexed = lex("// quill-lint: allow(no-panic, reason = \"\")\n");
        assert!(lexed.allows[0].malformed.is_some());
        let lexed = lex("// quill-lint: disallow(no-panic)\n");
        assert!(lexed.allows[0].malformed.is_some());
    }

    #[test]
    fn annotation_in_block_comment_is_found() {
        let lexed = lex("/* quill-lint: allow(no-wall-clock, reason = \"bench only\") */\n");
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].rule, "no-wall-clock");
        assert!(lexed.allows[0].malformed.is_none());
    }

    #[test]
    fn numbers_do_not_swallow_method_calls() {
        let ids = idents("let x = 1.max(2); let y = 1.5e3; let r = 0..10;");
        assert!(ids.contains(&"max".to_string()));
    }
}
