//! The lint rules and the workspace walker.
//!
//! Rules are *path-scoped*: each rule knows which workspace-relative files
//! it guards. [`lint_source`] lints one file given its workspace-relative
//! path (which is what makes the rules unit-testable against fixtures);
//! [`lint_workspace`] walks the live workspace and lints every `.rs` file of
//! every member crate.
//!
//! `#[cfg(test)]` items are exempt from every token rule except L5
//! (`no-nondeterminism`) — tests exercise panics and wall-clocks
//! deliberately, but the simulation crate's tests must stay replayable from
//! their seeds just like its library code. Deliberate production exceptions
//! carry `// quill-lint: allow(<rule>, reason = "...")` annotations (grammar
//! in DESIGN.md §11).

use crate::tokenizer::{lex, Allow, Token, TokenKind};
use crate::{Diagnostic, Severity};
use std::collections::{HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};

/// Rule id for L1.
pub const RULE_NO_PANIC: &str = "no-panic";
/// Rule id for L2.
pub const RULE_NO_WALL_CLOCK: &str = "no-wall-clock";
/// Rule id for L3.
pub const RULE_GUARDED_TELEMETRY: &str = "guarded-telemetry";
/// Rule id for L4.
pub const RULE_CRATE_HYGIENE: &str = "crate-hygiene";
/// Rule id for L5.
pub const RULE_NO_NONDETERMINISM: &str = "no-nondeterminism";
/// Rule id for malformed allow-annotations.
pub const RULE_ALLOW_SYNTAX: &str = "allow-syntax";
/// Rule id for L6: no blocking operation while a lock guard is live.
pub const RULE_LOCK_DISCIPLINE: &str = "lock-discipline";
/// Rule id for L7: workspace-consistent lock acquisition order.
pub const RULE_LOCK_ORDER: &str = "lock-order";
/// Rule id for L8: wall-clock reads propagated through the call graph.
pub const RULE_WALL_CLOCK_TAINT: &str = "wall-clock-taint";
/// Rule id for L9: no per-event allocation in data-path loops.
pub const RULE_HOT_PATH_ALLOC: &str = "hot-path-alloc";

/// Every rule id an annotation may name.
pub const ALL_RULES: &[&str] = &[
    RULE_NO_PANIC,
    RULE_NO_WALL_CLOCK,
    RULE_GUARDED_TELEMETRY,
    RULE_CRATE_HYGIENE,
    RULE_NO_NONDETERMINISM,
    RULE_LOCK_DISCIPLINE,
    RULE_LOCK_ORDER,
    RULE_WALL_CLOCK_TAINT,
    RULE_HOT_PATH_ALLOC,
];

/// Hot-path modules where a panic aborts live query execution (L1 scope).
const HOT_PATH_FILES: &[&str] = &[
    "crates/engine/src/parallel.rs",
    "crates/core/src/buffer.rs",
    "crates/core/src/strategy.rs",
    "crates/core/src/runner.rs",
    "crates/core/src/session.rs",
];

/// Modules whose behaviour must be a pure function of the event sequence so
/// MP/AQ K-estimation replays deterministically (L2 scope).
const DETERMINISTIC_FILES: &[&str] = &[
    "crates/core/src/strategy.rs",
    "crates/core/src/aq.rs",
    "crates/core/src/estimator.rs",
    "crates/core/src/controller.rs",
    "crates/core/src/buffer.rs",
    "crates/core/src/punctuated.rs",
    "crates/core/src/online.rs",
    "crates/core/src/quality.rs",
    "crates/core/src/session.rs",
];

/// Files allowed to construct trace events / spans / enabled instruments
/// directly (L3 exemptions): the recorders and registry themselves.
const TELEMETRY_CONSTRUCTION_FILES: &[&str] = &[
    "crates/telemetry/src/trace.rs",
    "crates/telemetry/src/span.rs",
    "crates/telemetry/src/lib.rs",
];

fn is_hot_path(rel: &str) -> bool {
    rel.starts_with("crates/engine/src/operator/") || HOT_PATH_FILES.contains(&rel)
}

pub(crate) fn is_deterministic(rel: &str) -> bool {
    // The whole daemon crate is in scope: stream-time decisions (eviction,
    // drain, watermarks) must derive from ticks and event time, never the
    // wall clock. Deliberate operator-facing exceptions (e.g. /healthz
    // uptime) carry scoped allow annotations rather than a path exclusion.
    rel.starts_with("crates/engine/src/operator/")
        || rel.starts_with("crates/serve/src/")
        || DETERMINISTIC_FILES.contains(&rel)
}

/// The simulation crate (L5 scope): every file, tests included — the whole
/// crate's contract is byte-identical replay from a case seed.
fn is_simulation(rel: &str) -> bool {
    rel.starts_with("crates/sim/")
}

/// Whether `rel` is a workspace member crate root subject to L4.
fn crate_root_kind(rel: &str) -> Option<CrateRootKind> {
    if rel.starts_with("crates/") && rel.ends_with("/src/lib.rs") {
        return Some(CrateRootKind::Lib);
    }
    if rel == "examples/common.rs" || rel == "tests/common.rs" {
        return Some(CrateRootKind::Member);
    }
    None
}

#[derive(Clone, Copy, PartialEq)]
enum CrateRootKind {
    /// A library crate under `crates/`: full hygiene (docs lint required).
    Lib,
    /// The examples/tests member roots: unsafe-forbid + crate docs.
    Member,
}

/// Mark every token inside a `#[cfg(test)]` item (attribute included).
fn cfg_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let text = |i: usize| tokens.get(i).map(|t: &Token| t.text.as_str());
    let mut i = 0;
    while i < tokens.len() {
        let is_cfg_test = text(i) == Some("#")
            && text(i + 1) == Some("[")
            && text(i + 2) == Some("cfg")
            && text(i + 3) == Some("(")
            && text(i + 4) == Some("test")
            && text(i + 5) == Some(")")
            && text(i + 6) == Some("]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip any further attributes between the cfg and the item.
        let mut j = i + 7;
        while text(j) == Some("#") && text(j + 1) == Some("[") {
            let mut depth = 0usize;
            let mut k = j + 1;
            while k < tokens.len() {
                match tokens[k].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            j = k + 1;
        }
        // The item ends at the first `;` before any brace, or at the close
        // of its first brace block (covers `mod`, `fn`, `impl`, `use`).
        let mut end = tokens.len();
        let mut k = j;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                ";" => {
                    end = k + 1;
                    break;
                }
                "{" => {
                    let mut depth = 1usize;
                    let mut m = k + 1;
                    while m < tokens.len() && depth > 0 {
                        match tokens[m].text.as_str() {
                            "{" => depth += 1,
                            "}" => depth -= 1,
                            _ => {}
                        }
                        m += 1;
                    }
                    end = m;
                    break;
                }
                _ => k += 1,
            }
        }
        for slot in mask.iter_mut().take(end.min(tokens.len())).skip(i) {
            *slot = true;
        }
        i = end;
    }
    mask
}

/// Lines each allow-annotation suppresses: its own line plus the next line
/// carrying a token.
fn allow_lines(allows: &[Allow], tokens: &[Token]) -> HashMap<String, HashSet<usize>> {
    let mut map: HashMap<String, HashSet<usize>> = HashMap::new();
    for a in allows.iter().filter(|a| a.malformed.is_none()) {
        let entry = map.entry(a.rule.clone()).or_default();
        entry.insert(a.line);
        if let Some(next) = tokens.iter().map(|t| t.line).find(|&l| l > a.line) {
            entry.insert(next);
        }
    }
    map
}

struct FileLinter<'a> {
    rel: &'a str,
    tokens: &'a [Token],
    mask: Vec<bool>,
    allows: HashMap<String, HashSet<usize>>,
    diags: Vec<Diagnostic>,
}

impl<'a> FileLinter<'a> {
    fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allows.get(rule).is_some_and(|s| s.contains(&line))
    }

    fn push(&mut self, rule: &str, line: usize, message: String, help: String) {
        if self.allowed(rule, line) {
            return;
        }
        self.diags.push(Diagnostic {
            rule: rule.to_string(),
            path: self.rel.to_string(),
            line,
            severity: Severity::Deny,
            message,
            help,
        });
    }

    fn text(&self, i: usize) -> Option<&str> {
        self.tokens.get(i).map(|t| t.text.as_str())
    }

    /// L1: no `unwrap()` / `expect()` / panicking macros in hot paths.
    fn rule_no_panic(&mut self) {
        for i in 0..self.tokens.len() {
            if self.mask[i] || self.tokens[i].kind != TokenKind::Ident {
                continue;
            }
            let line = self.tokens[i].line;
            match self.tokens[i].text.as_str() {
                m @ ("unwrap" | "expect")
                    if i > 0 && self.text(i - 1) == Some(".") && self.text(i + 1) == Some("(") =>
                {
                    self.push(
                        RULE_NO_PANIC,
                        line,
                        format!("`.{m}()` in a hot-path module can abort live query execution"),
                        "return a typed `EngineError`, restructure so the invariant is by \
                         construction, or annotate `// quill-lint: allow(no-panic, reason = \
                         \"<invariant>\")`"
                            .into(),
                    );
                }
                m @ ("panic" | "unreachable" | "todo" | "unimplemented")
                    if self.text(i + 1) == Some("!") =>
                {
                    self.push(
                        RULE_NO_PANIC,
                        line,
                        format!("`{m}!` in a hot-path module can abort live query execution"),
                        "return a typed `EngineError` or annotate `// quill-lint: \
                         allow(no-panic, reason = \"<invariant>\")`"
                            .into(),
                    );
                }
                _ => {}
            }
        }
    }

    /// L2: no wall-clock reads in deterministic control-loop modules.
    fn rule_no_wall_clock(&mut self) {
        for i in 0..self.tokens.len() {
            if self.mask[i] || self.tokens[i].kind != TokenKind::Ident {
                continue;
            }
            let ty = self.tokens[i].text.as_str();
            if (ty == "Instant" || ty == "SystemTime")
                && self.text(i + 1) == Some(":")
                && self.text(i + 2) == Some(":")
                && self.text(i + 3) == Some("now")
            {
                let line = self.tokens[i].line;
                self.push(
                    RULE_NO_WALL_CLOCK,
                    line,
                    format!(
                        "`{ty}::now()` in a deterministic module breaks replayable K estimation"
                    ),
                    "derive timing from event timestamps (the stream clock); wall-clock \
                     measurement belongs in the runner/bench layer"
                        .into(),
                );
            }
        }
    }

    /// L5: no ambient-entropy RNG construction anywhere in the simulation
    /// crate. Every random choice must derive from the case seed so a
    /// reproducer replays byte-identically; `thread_rng`, `from_entropy` and
    /// `OsRng` all pull entropy from outside the seed. Unlike L1/L2 this rule
    /// does **not** exempt `#[cfg(test)]` items — sim tests are the product.
    fn rule_no_nondeterminism(&mut self) {
        for i in 0..self.tokens.len() {
            if self.tokens[i].kind != TokenKind::Ident {
                continue;
            }
            let name = self.tokens[i].text.as_str();
            if matches!(name, "thread_rng" | "from_entropy" | "OsRng") {
                let line = self.tokens[i].line;
                self.push(
                    RULE_NO_NONDETERMINISM,
                    line,
                    format!(
                        "`{name}` draws ambient entropy; simulation runs must replay \
                         byte-identically from their case seed"
                    ),
                    "construct RNGs from the case seed (`TestRng::new(seed)` or \
                     `StdRng::seed_from_u64(seed)`), deriving sub-seeds by mixing in a \
                     fixed constant"
                        .into(),
                );
            }
        }
    }

    /// L3: trace events and enabled instruments are only constructed inside
    /// the telemetry crate; everything else goes through guarded handles.
    fn rule_guarded_telemetry(&mut self) {
        if TELEMETRY_CONSTRUCTION_FILES.contains(&self.rel) {
            return;
        }
        for i in 0..self.tokens.len() {
            if self.mask[i] || self.tokens[i].kind != TokenKind::Ident {
                continue;
            }
            let line = self.tokens[i].line;
            let name = self.tokens[i].text.as_str();
            if name == "TraceEvent"
                && (self.text(i + 1) == Some("{")
                    || (self.text(i + 1) == Some(":")
                        && self.text(i + 2) == Some(":")
                        && self.text(i + 3) == Some("new")))
            {
                self.push(
                    RULE_GUARDED_TELEMETRY,
                    line,
                    "direct `TraceEvent` construction bypasses the enabled-guarded \
                     flight recorder"
                        .into(),
                    "record through `FlightRecorder::record(at, shard, TraceKind::…)` so \
                     disabled tracing stays zero-cost and seq-stamping stays consistent"
                        .into(),
                );
            }
            if name == "Span"
                && (self.text(i + 1) == Some("{")
                    || (self.text(i + 1) == Some(":")
                        && self.text(i + 2) == Some(":")
                        && self.text(i + 3) == Some("new")))
            {
                self.push(
                    RULE_GUARDED_TELEMETRY,
                    line,
                    "direct `Span` construction bypasses the enabled-guarded span recorder".into(),
                    "record through `SpanRecorder::record/record_for_query/record_child` so \
                     disabled span tracing stays zero-cost and seq-stamping stays consistent"
                        .into(),
                );
            }
            if matches!(name, "Counter" | "Gauge" | "Histogram" | "SpanRecorder")
                && self.text(i + 1) == Some("(")
                && self.text(i + 2) == Some("Some")
            {
                self.push(
                    RULE_GUARDED_TELEMETRY,
                    line,
                    format!("direct enabled `{name}` construction bypasses the enabled-guard"),
                    "obtain instruments via `Registry::counter/gauge/histogram` and recorders \
                     via `SpanRecorder::new/wall/disabled` so disabled telemetry stays \
                     zero-cost"
                        .into(),
                );
            }
        }
    }

    /// L4: crate roots carry the workspace hygiene attributes.
    fn rule_crate_hygiene(&mut self, source: &str) {
        let Some(kind) = crate_root_kind(self.rel) else {
            return;
        };
        if !source.contains("#![forbid(unsafe_code)]") {
            self.push(
                RULE_CRATE_HYGIENE,
                1,
                "crate root lacks `#![forbid(unsafe_code)]`".into(),
                "add `#![forbid(unsafe_code)]` to the crate root; the workspace is \
                 100% safe Rust"
                    .into(),
            );
        }
        if !source.lines().any(|l| l.trim_start().starts_with("//!")) {
            self.push(
                RULE_CRATE_HYGIENE,
                1,
                "crate root lacks `//!` crate-level documentation".into(),
                "document what the crate is for; rustdoc renders this as the crate front \
                 page"
                    .into(),
            );
        }
        if kind == CrateRootKind::Lib
            && !(source.contains("#![deny(missing_docs)]")
                || source.contains("#![warn(missing_docs)]"))
        {
            self.push(
                RULE_CRATE_HYGIENE,
                1,
                "library crate root lacks a `missing_docs` lint".into(),
                "add `#![deny(missing_docs)]` (the workspace standard) to the crate root".into(),
            );
        }
    }

    /// Malformed or unknown-rule annotations are findings themselves.
    fn rule_allow_syntax(&mut self, allows: &[Allow]) {
        for a in allows {
            if let Some(problem) = &a.malformed {
                self.diags.push(Diagnostic {
                    rule: RULE_ALLOW_SYNTAX.to_string(),
                    path: self.rel.to_string(),
                    line: a.line,
                    severity: Severity::Deny,
                    message: format!("malformed quill-lint annotation: {problem}"),
                    help: "grammar: `// quill-lint: allow(<rule>, reason = \"<non-empty>\")`"
                        .into(),
                });
            } else if !ALL_RULES.contains(&a.rule.as_str()) {
                self.diags.push(Diagnostic {
                    rule: RULE_ALLOW_SYNTAX.to_string(),
                    path: self.rel.to_string(),
                    line: a.line,
                    severity: Severity::Deny,
                    message: format!("annotation allows unknown rule `{}`", a.rule),
                    help: format!("known rules: {}", ALL_RULES.join(", ")),
                });
            }
        }
    }
}

/// Run the per-file token rules (L1–L5 plus allow-syntax) over one file.
fn lint_file_tokens(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let mask = cfg_test_mask(&lexed.tokens);
    let allows = allow_lines(&lexed.allows, &lexed.tokens);
    let mut linter = FileLinter {
        rel: rel_path,
        tokens: &lexed.tokens,
        mask,
        allows,
        diags: Vec::new(),
    };
    linter.rule_allow_syntax(&lexed.allows);
    if is_hot_path(rel_path) {
        linter.rule_no_panic();
    }
    if is_deterministic(rel_path) {
        linter.rule_no_wall_clock();
    }
    if is_simulation(rel_path) {
        linter.rule_no_nondeterminism();
    }
    linter.rule_guarded_telemetry();
    linter.rule_crate_hygiene(source);
    linter.diags
}

/// Owning workspace member of a relative path: `crates/serve/...` → `serve`,
/// `examples/...` → `examples`, `tests/...` → `tests`.
fn krate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("").to_string(),
        Some(top) => top.to_string(),
        None => String::new(),
    }
}

/// Prepare one file for the call-graph passes: lex, mask `#[cfg(test)]`
/// items, resolve allow-annotation lines, and parse the item structure.
pub fn prepare_source(rel_path: &str, source: &str) -> crate::callgraph::SourceFile {
    let lexed = lex(source);
    let mask = cfg_test_mask(&lexed.tokens);
    let allow_lines = allow_lines(&lexed.allows, &lexed.tokens);
    let syntax = crate::syntax::parse_fns(&lexed.tokens);
    crate::callgraph::SourceFile {
        rel: rel_path.to_string(),
        krate: krate_of(rel_path),
        tokens: lexed.tokens,
        mask,
        allow_lines,
        syntax,
    }
}

/// Drop diagnostics identical to an earlier one (same path, line, rule and
/// message) — a pass can reach the same site through several call-edge
/// candidates and must report it once. Distinct findings that happen to
/// share a line (e.g. the three crate-hygiene obligations on a crate root)
/// differ in message and all survive.
pub(crate) fn dedup_diags(diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut seen: HashSet<(String, usize, String, String)> = HashSet::new();
    diags
        .into_iter()
        .filter(|d| seen.insert((d.path.clone(), d.line, d.rule.clone(), d.message.clone())))
        .collect()
}

/// Lint a set of files together: per-file token rules plus the call-graph
/// passes (lock-discipline, lock-order, wall-clock-taint, hot-path-alloc),
/// deduplicated and in path/line order. Each entry is
/// `(workspace-relative path, source)`.
pub fn lint_sources(files: &[(String, String)]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (rel, source) in files {
        diags.extend(lint_file_tokens(rel, source));
    }
    let prepared: Vec<crate::callgraph::SourceFile> = files
        .iter()
        .map(|(rel, source)| prepare_source(rel, source))
        .collect();
    let ws = crate::passes::Workspace::new(prepared);
    diags.extend(crate::passes::run_passes(&ws));
    let mut diags = dedup_diags(diags);
    diags.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    diags
}

/// Lint one file's source given its workspace-relative path (forward-slash
/// separated). This is the unit the fixture tests drive directly; the
/// call-graph passes run too, confined to this one file.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    lint_sources(&[(rel_path.to_string(), source.to_string())])
}

/// Collect every workspace `.rs` file to lint, as
/// `(workspace-relative path, absolute path)` pairs in deterministic order.
/// Vendored stand-in dependencies, build output and the lint fixtures
/// (known-bad by design) are excluded.
pub fn workspace_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    fn visit(dir: &Path, root: &Path, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
        if !dir.is_dir() {
            return Ok(());
        }
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if path.is_dir() {
                if rel == "crates/lint/tests/fixtures" {
                    continue;
                }
                visit(&path, root, out)?;
            } else if rel.ends_with(".rs") {
                out.push((rel, path));
            }
        }
        Ok(())
    }

    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let member = entry?.path();
            if !member.is_dir() {
                continue;
            }
            for sub in ["src", "tests", "benches"] {
                visit(&member.join(sub), root, &mut out)?;
            }
        }
    }
    for member in ["examples", "tests"] {
        let dir = root.join(member);
        if dir.is_dir() {
            for entry in std::fs::read_dir(&dir)? {
                let path = entry?.path();
                if path.extension().is_some_and(|e| e == "rs") {
                    let rel = path
                        .strip_prefix(root)
                        .unwrap_or(&path)
                        .to_string_lossy()
                        .replace('\\', "/");
                    out.push((rel, path));
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint every workspace member file under `root`, returning all findings in
/// path/line order. All files are analysed together so the call-graph
/// passes see cross-crate edges.
///
/// # Errors
/// Propagates I/O errors from walking or reading source files.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for (rel, abs) in workspace_files(root)? {
        files.push((rel, std::fs::read_to_string(&abs)?));
    }
    Ok(lint_sources(&files))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_path_scope_covers_the_issue_list() {
        assert!(is_hot_path("crates/engine/src/operator/window_op.rs"));
        assert!(is_hot_path("crates/engine/src/parallel.rs"));
        assert!(is_hot_path("crates/core/src/runner.rs"));
        assert!(is_hot_path("crates/core/src/session.rs"));
        assert!(!is_hot_path("crates/engine/src/value.rs"));
        assert!(!is_hot_path("crates/gen/src/delay.rs"));
    }

    #[test]
    fn deterministic_scope_covers_the_session_and_daemon() {
        assert!(is_deterministic("crates/core/src/session.rs"));
        assert!(is_deterministic("crates/serve/src/server.rs"));
        assert!(is_deterministic("crates/serve/src/http.rs"));
        assert!(is_deterministic("crates/serve/src/bin/quill_serve.rs"));
        assert!(!is_deterministic("crates/bench/src/bin/serve_soak.rs"));
    }

    #[test]
    fn wall_clock_in_serve_needs_a_scoped_allow() {
        let bare = "fn f() -> std::time::Instant { std::time::Instant::now() }\n";
        let diags = lint_source("crates/serve/src/http.rs", bare);
        assert!(
            diags.iter().any(|d| d.rule == RULE_NO_WALL_CLOCK),
            "{diags:?}"
        );
        let allowed = "// quill-lint: allow(no-wall-clock, reason = \"uptime display\")\n\
                       fn f() -> std::time::Instant { std::time::Instant::now() }\n";
        assert!(lint_source("crates/serve/src/http.rs", allowed).is_empty());
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let src = r#"
            fn hot() { let x: Option<u32> = None; }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let x: Option<u32> = None; x.unwrap(); }
            }
        "#;
        let diags = lint_source("crates/core/src/runner.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn cfg_test_fn_is_exempt() {
        let src = "#[cfg(test)]\nfn helper() { None::<u32>.unwrap(); }\n";
        assert!(lint_source("crates/core/src/runner.rs", src).is_empty());
    }

    #[test]
    fn allow_on_preceding_line_suppresses() {
        let src =
            "fn f() {\n    // quill-lint: allow(no-panic, reason = \"validated above\")\n    \
                   None::<u32>.unwrap();\n}\n";
        assert!(lint_source("crates/core/src/runner.rs", src).is_empty());
    }

    #[test]
    fn trailing_allow_suppresses() {
        let src = "fn f() {\n    None::<u32>.unwrap(); // quill-lint: allow(no-panic, reason = \
                   \"validated\")\n}\n";
        assert!(lint_source("crates/core/src/runner.rs", src).is_empty());
    }

    #[test]
    fn allow_for_a_different_rule_does_not_suppress() {
        let src = "fn f() {\n    // quill-lint: allow(no-wall-clock, reason = \"x\")\n    \
                   None::<u32>.unwrap();\n}\n";
        let diags = lint_source("crates/core/src/runner.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE_NO_PANIC);
    }

    #[test]
    fn unknown_rule_annotation_is_a_finding() {
        let src = "// quill-lint: allow(no-such-rule, reason = \"x\")\n";
        let diags = lint_source("crates/core/src/online.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE_ALLOW_SYNTAX);
    }

    #[test]
    fn span_construction_outside_telemetry_is_flagged() {
        for src in [
            "fn f() { let s = Span { seq: 0, id: 1, parent: 0, stage, begin: 0, end: 1, \
             shard: 0, query: 0 }; }",
            "fn f() { let s = Span::new(); }",
            "fn f() { let r = SpanRecorder(Some(inner)); }",
        ] {
            let diags = lint_source("crates/core/src/buffer.rs", src);
            assert!(
                diags.iter().any(|d| d.rule == RULE_GUARDED_TELEMETRY),
                "expected guarded-telemetry finding for {src:?}: {diags:?}"
            );
        }
    }

    #[test]
    fn span_recorder_api_use_is_clean_everywhere() {
        let src = "fn f(rec: &SpanRecorder) {\n    let rec2 = SpanRecorder::new(64);\n    \
                   rec.record(Stage::Route, 0, 5, 0);\n    let d = SpanRecorder::disabled();\n}\n";
        assert!(lint_source("crates/core/src/buffer.rs", src).is_empty());
    }

    #[test]
    fn span_construction_inside_telemetry_span_module_is_exempt() {
        let src = "fn f() { let r = SpanRecorder(Some(inner)); }";
        assert!(lint_source("crates/telemetry/src/span.rs", src).is_empty());
    }

    #[test]
    fn out_of_scope_files_do_not_fire_l1_l2() {
        let src = "fn f() { None::<u32>.unwrap(); let t = Instant::now(); }";
        assert!(lint_source("crates/gen/src/delay.rs", src).is_empty());
    }

    #[test]
    fn nondeterminism_fires_even_inside_cfg_test() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let _r = rand::thread_rng(); }\n}\n";
        let diags = lint_source("crates/sim/src/spec.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE_NO_NONDETERMINISM);
    }

    #[test]
    fn nondeterminism_allow_annotation_suppresses() {
        let src = "fn f() {\n    // quill-lint: allow(no-nondeterminism, reason = \"doc \
                   example\")\n    let _r = rand::thread_rng();\n}\n";
        assert!(lint_source("crates/sim/src/spec.rs", src).is_empty());
    }

    #[test]
    fn seeded_rng_construction_is_clean_in_sim() {
        let src = "fn f(seed: u64) { let _r = StdRng::seed_from_u64(seed); }";
        assert!(lint_source("crates/sim/src/harness.rs", src).is_empty());
    }

    #[test]
    fn dedup_drops_identical_diagnostics_keeping_first() {
        let mk = |rule: &str, line: usize, msg: &str| Diagnostic {
            rule: rule.into(),
            path: "crates/serve/src/server.rs".into(),
            line,
            severity: Severity::Deny,
            message: msg.into(),
            help: String::new(),
        };
        let out = dedup_diags(vec![
            mk(RULE_LOCK_DISCIPLINE, 10, "blocking send under guard"),
            mk(RULE_LOCK_DISCIPLINE, 10, "blocking send under guard"),
            mk(RULE_LOCK_ORDER, 10, "different rule survives"),
            mk(RULE_LOCK_DISCIPLINE, 11, "different line survives"),
            mk(RULE_LOCK_DISCIPLINE, 10, "different message survives"),
        ]);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].message, "blocking send under guard");
    }
}
