//! Fixture: hot-path code that panics (linted as `crates/core/src/buffer.rs`).

#![forbid(unsafe_code)]

fn release(buffered: Vec<u64>) -> u64 {
    let first = buffered.first().unwrap();
    let last = buffered.last().expect("non-empty");
    if first > last {
        panic!("inverted buffer");
    }
    match first {
        0 => unreachable!("zero timestamps are filtered upstream"),
        _ => todo!("windowing"),
    }
}

#[cfg(test)]
mod tests {
    // Panics inside #[cfg(test)] are exempt: assertions are the point.
    #[test]
    fn test_path_may_unwrap() {
        let v: Vec<u64> = vec![1];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
