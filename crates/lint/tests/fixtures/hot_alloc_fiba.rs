//! Fixture: the FiBA window-state arena is data-path code (L9 scope). The
//! per-element clone in `range_fold` must fire; the per-split arena push in
//! `split_leaf` is per-node-split (amortized, not per-event) and carries the
//! reasoned allow the real module uses.

pub fn range_fold(items: &[u64], lo: u64, hi: u64, out: &mut Vec<Vec<u64>>) -> u64 {
    let mut acc = 0u64;
    for (i, item) in items.iter().enumerate() {
        if lo <= *item && *item <= hi {
            let snapshot = out[i % out.len()].clone();
            acc += snapshot.len() as u64 + item;
        }
    }
    acc
}

pub fn split_leaf(keys: &mut Vec<u64>, arena: &mut Vec<Vec<u64>>) -> usize {
    let mid = keys.len() / 2;
    while keys.len() > mid {
        let k = keys.pop().unwrap_or(0);
        // quill-lint: allow(hot-path-alloc, reason = "per-node-split sibling allocation; splits are amortized O(1/fanout) per insert, not per-event")
        arena.push(vec![k]);
    }
    arena.len()
}
