//! Fixture: hot-path panics suppressed by well-formed allow annotations.

#![forbid(unsafe_code)]

fn release(buffered: Vec<u64>) -> u64 {
    // quill-lint: allow(no-panic, reason = "buffer is checked non-empty by the caller")
    let first = buffered.first().unwrap();
    let last = buffered
        .last()
        // quill-lint: allow(no-panic, reason = "same invariant as above")
        .expect("non-empty");
    first + last
}
