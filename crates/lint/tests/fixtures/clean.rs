//! Fixture: in-scope hot-path code with nothing to report (linted as
//! `crates/core/src/runner.rs`).

#![forbid(unsafe_code)]

fn release(buffered: &[u64]) -> Option<u64> {
    let first = buffered.first()?;
    let last = buffered.last()?;
    Some(first + last)
}
