//! Fixture: malformed and unknown-rule allow annotations (linted as
//! `crates/core/src/strategy.rs`).

#![forbid(unsafe_code)]

fn f(v: Vec<u64>) -> u64 {
    // quill-lint: allow(no-panic)
    let a = v.first().unwrap();
    // quill-lint: allow(not-a-rule, reason = "unknown rule id")
    let b = v.last().unwrap();
    a + b
}
