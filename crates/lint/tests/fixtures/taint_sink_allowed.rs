//! Fixture (cross-crate taint sink, suppressed): the call site carries a
//! line-level allow, so the propagated taint stops at the annotation.

pub fn should_emit(t0: std::time::Instant) -> bool {
    // quill-lint: allow(wall-clock-taint, reason = "fixture: result feeds an operator dashboard, never K estimation")
    wall_elapsed_micros(t0) > 1_000
}
