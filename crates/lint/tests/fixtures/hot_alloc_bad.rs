//! Fixture: per-event allocations inside operator loops (L9), plus the
//! constructor exemption — `from_*` functions run per-session, so their
//! loops may allocate freely.

pub fn fold_batch(events: &[u64], out: &mut Vec<String>) -> u64 {
    let mut acc = 0u64;
    for e in events {
        let label = format!("evt-{e}");
        let copy = label.clone();
        out.push(copy);
        acc += label.len() as u64;
    }
    acc
}

pub fn rescale(batches: &[u64]) -> u64 {
    let mut total = 0u64;
    let mut i = 0;
    while i < batches.len() {
        let mut scratch: Vec<u64> = Vec::new();
        scratch.push(batches[i]);
        total += scratch.len() as u64;
        i += 1;
    }
    total
}

pub fn from_parts(parts: &[u64]) -> Vec<Vec<u64>> {
    let mut out = Vec::new();
    for p in parts {
        out.push(vec![*p]);
    }
    out
}
