// Fixture: a crate root with no crate docs, no unsafe-code forbid and no
// missing-docs lint (linted as `crates/example/src/lib.rs`).

pub fn undocumented() {}
