//! Fixture: direct telemetry construction outside the telemetry crate
//! (linted as `crates/engine/src/operator/window_op.rs`).

#![forbid(unsafe_code)]

fn emit(at: u64) {
    let _ev = TraceEvent {
        seq: 0,
        at,
        shard: 0,
        kind: TraceKind::BufferEmit {
            released: 1,
            watermark: at,
        },
    };
    let _counter = Counter(Some(Default::default()));
}
