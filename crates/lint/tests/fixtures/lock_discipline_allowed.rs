//! Fixture: the same blocking-under-guard shapes as `lock_discipline_bad.rs`
//! with both suppression forms — a line-level allow on the blocking call,
//! and a `fn`-declaration allow marking a whole function non-blocking for
//! the may-block propagation.

use std::sync::mpsc::SyncSender;
use std::sync::Mutex;

pub struct Shared {
    state: Mutex<u64>,
    tx: SyncSender<u64>,
}

impl Shared {
    pub fn enqueue(&self, v: u64) {
        let guard = self.state.lock().unwrap();
        // quill-lint: allow(lock-discipline, reason = "fixture: the consumer never takes `state`, so this send cannot cycle")
        self.tx.send(*guard + v).ok();
    }

    pub fn drain(&self) {
        let guard = self.state.lock().unwrap();
        self.forward(*guard);
    }

    // quill-lint: allow(lock-discipline, reason = "fixture: fed from a pre-drained queue; the send never blocks on this path")
    fn forward(&self, v: u64) {
        self.tx.send(v).ok();
    }
}
