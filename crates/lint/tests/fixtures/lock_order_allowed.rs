//! Fixture: the conflicting orientation of `lock_order_bad.rs` suppressed
//! by a line-level allow on the out-of-order acquisition. With one edge
//! annotated away, no cycle remains.

use std::sync::Mutex;

pub struct Core {
    registry: Mutex<u64>,
    results: Mutex<u64>,
}

impl Core {
    pub fn forward(&self) -> u64 {
        let r = self.registry.lock().unwrap();
        let s = self.results.lock().unwrap();
        *r + *s
    }

    pub fn backward(&self) -> u64 {
        let s = self.results.lock().unwrap();
        // quill-lint: allow(lock-order, reason = "fixture: this path only runs at shutdown after the forward path has quiesced")
        let r = self.registry.lock().unwrap();
        *r + *s
    }
}
