//! Fixture: wall-clock reads in a deterministic module (linted as
//! `crates/core/src/estimator.rs`).

#![forbid(unsafe_code)]

use std::time::{Instant, SystemTime};

fn estimate() -> u128 {
    let t0 = Instant::now();
    let _wall = SystemTime::now();
    t0.elapsed().as_micros()
}
