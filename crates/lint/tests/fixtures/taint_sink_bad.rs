//! Fixture (cross-crate taint sink): deterministic-core code calling the
//! wall-clock helper defined in another crate.

pub fn should_emit(t0: std::time::Instant) -> bool {
    wall_elapsed_micros(t0) > 1_000
}
