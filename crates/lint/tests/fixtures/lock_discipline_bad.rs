//! Fixture: the serve enqueue shape. Ingest threads block on a bounded
//! channel send; the core thread blocks acquiring the session lock. A send
//! made while holding a lock the core thread needs closes the deadlock
//! cycle — this is the exact bug class L6 exists to refuse.

use std::sync::mpsc::SyncSender;
use std::sync::Mutex;

pub struct Shared {
    state: Mutex<u64>,
    tx: SyncSender<u64>,
}

impl Shared {
    /// Direct: a blocking send inside the guard's live range.
    pub fn enqueue(&self, v: u64) {
        let guard = self.state.lock().unwrap();
        self.tx.send(*guard + v).ok();
    }

    /// Transitive: the guard is live across a call into a function whose
    /// body blocks.
    pub fn drain(&self) {
        let guard = self.state.lock().unwrap();
        self.forward(*guard);
    }

    fn forward(&self, v: u64) {
        self.tx.send(v).ok();
    }
}
