//! Fixture: the same loop allocations as `hot_alloc_bad.rs`, each carrying
//! a line-level allow stating why it is not per-event.

pub fn fold_batch(events: &[u64], out: &mut Vec<String>) -> u64 {
    let mut acc = 0u64;
    for e in events {
        // quill-lint: allow(hot-path-alloc, reason = "fixture: label feeds a per-batch audit record, not the per-event path")
        let label = format!("evt-{e}");
        // quill-lint: allow(hot-path-alloc, reason = "fixture: one copy per emitted record, bounded by output rate")
        let copy = label.clone();
        out.push(copy);
        acc += label.len() as u64;
    }
    acc
}

pub fn rescale(batches: &[u64]) -> u64 {
    let mut total = 0u64;
    let mut i = 0;
    while i < batches.len() {
        // quill-lint: allow(hot-path-alloc, reason = "fixture: scratch is per-batch, and batches are amortized over many events")
        let mut scratch: Vec<u64> = Vec::new();
        scratch.push(batches[i]);
        total += scratch.len() as u64;
        i += 1;
    }
    total
}
