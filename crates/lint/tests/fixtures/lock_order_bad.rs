//! Fixture: the two L7 shapes — an inconsistent acquisition order between
//! two locks (deadlock-shaped cycle), and a direct re-acquisition of a lock
//! while its own guard is live (guaranteed deadlock on non-re-entrant
//! locks).

use std::sync::Mutex;

pub struct Core {
    registry: Mutex<u64>,
    results: Mutex<u64>,
}

impl Core {
    pub fn forward(&self) -> u64 {
        let r = self.registry.lock().unwrap();
        let s = self.results.lock().unwrap();
        *r + *s
    }

    pub fn backward(&self) -> u64 {
        let s = self.results.lock().unwrap();
        let r = self.registry.lock().unwrap();
        *r + *s
    }

    pub fn reenter(&self) -> u64 {
        let a = self.registry.lock().unwrap();
        let b = self.registry.lock().unwrap();
        *a + *b
    }
}
