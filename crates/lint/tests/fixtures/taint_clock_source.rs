//! Fixture (cross-crate taint source): a helper crate function that reads
//! the wall clock. Its own file is outside deterministic scope, so the
//! token-level L2 rule never sees it — only taint propagation can.

pub fn wall_elapsed_micros(t0: std::time::Instant) -> u64 {
    t0.elapsed().as_micros() as u64
}
