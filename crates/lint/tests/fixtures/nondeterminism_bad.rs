//! Fixture: ambient-entropy RNG construction in the simulation crate
//! (linted as `crates/sim/src/spec.rs`). Every construction here defeats
//! seed-replay: the same case seed would produce a different stream.

#![forbid(unsafe_code)]

use rand::rngs::OsRng;
use rand::SeedableRng;

fn sample_without_a_seed() -> u64 {
    let mut ambient = rand::thread_rng();
    let mut entropy = rand::rngs::StdRng::from_entropy();
    ambient.next_u64() ^ entropy.next_u64()
}

#[cfg(test)]
mod tests {
    /// Even test-only ambient RNGs break replay: a failing sim test must
    /// reproduce from its printed seed alone.
    #[test]
    fn flaky_by_construction() {
        let _r = rand::thread_rng();
    }
}
