//! Golden fixture tests: one known-bad snippet per lint rule proving the
//! rule fires, the allow-annotation suppression paths, and a regression
//! test that the live workspace is lint-clean.

#![forbid(unsafe_code)]

use quill_lint::rules::{
    lint_source, lint_sources, lint_workspace, RULE_ALLOW_SYNTAX, RULE_CRATE_HYGIENE,
    RULE_GUARDED_TELEMETRY, RULE_HOT_PATH_ALLOC, RULE_LOCK_DISCIPLINE, RULE_LOCK_ORDER,
    RULE_NO_NONDETERMINISM, RULE_NO_PANIC, RULE_NO_WALL_CLOCK, RULE_WALL_CLOCK_TAINT,
};
use quill_lint::{Diagnostic, Severity};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn rules(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule.as_str()).collect()
}

#[test]
fn l1_no_panic_fires_on_hot_path_panics() {
    let diags = lint_source("crates/core/src/buffer.rs", &fixture("no_panic_bad.rs"));
    let hits: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == RULE_NO_PANIC).collect();
    // unwrap, expect, panic!, unreachable!, todo! — the cfg(test) unwrap is exempt.
    assert_eq!(hits.len(), 5, "{diags:?}");
    assert!(hits.iter().all(|d| d.severity == Severity::Deny));
    let lines: Vec<usize> = hits.iter().map(|d| d.line).collect();
    assert!(lines.iter().all(|&l| l < 17), "test-module hit: {diags:?}");
}

#[test]
fn l1_no_panic_is_scope_limited() {
    // The same panicking source outside the hot-path scope is not linted.
    let diags = lint_source("crates/metrics/src/summary.rs", &fixture("no_panic_bad.rs"));
    assert!(!rules(&diags).contains(&RULE_NO_PANIC), "{diags:?}");
}

#[test]
fn l1_allow_annotation_suppresses() {
    let diags = lint_source("crates/core/src/buffer.rs", &fixture("no_panic_allowed.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l2_no_wall_clock_fires_in_deterministic_modules() {
    let diags = lint_source(
        "crates/core/src/estimator.rs",
        &fixture("wall_clock_bad.rs"),
    );
    let hits: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RULE_NO_WALL_CLOCK)
        .collect();
    assert_eq!(hits.len(), 2, "{diags:?}"); // Instant::now + SystemTime::now
    assert!(hits.iter().all(|d| d.severity == Severity::Deny));
    // runner.rs measures wall time on purpose and is outside L2 scope.
    let diags = lint_source("crates/core/src/runner.rs", &fixture("wall_clock_bad.rs"));
    assert!(!rules(&diags).contains(&RULE_NO_WALL_CLOCK), "{diags:?}");
}

#[test]
fn l3_guarded_telemetry_fires_outside_telemetry_crate() {
    let diags = lint_source(
        "crates/engine/src/operator/window_op.rs",
        &fixture("telemetry_bad.rs"),
    );
    let hits: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RULE_GUARDED_TELEMETRY)
        .collect();
    assert_eq!(hits.len(), 2, "{diags:?}"); // TraceEvent literal + Counter(Some
                                            // The same constructions inside the telemetry crate are the one legal site.
    let diags = lint_source(
        "crates/telemetry/src/trace.rs",
        &fixture("telemetry_bad.rs"),
    );
    assert!(
        !rules(&diags).contains(&RULE_GUARDED_TELEMETRY),
        "{diags:?}"
    );
}

#[test]
fn l4_crate_hygiene_fires_on_bare_crate_root() {
    let diags = lint_source("crates/example/src/lib.rs", &fixture("hygiene_bad.rs"));
    let hits: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RULE_CRATE_HYGIENE)
        .collect();
    // forbid(unsafe_code), crate docs, missing_docs lint — all absent.
    assert_eq!(hits.len(), 3, "{diags:?}");
    // A non-root file in the same crate carries no hygiene obligations.
    let diags = lint_source("crates/example/src/util.rs", &fixture("hygiene_bad.rs"));
    assert!(!rules(&diags).contains(&RULE_CRATE_HYGIENE), "{diags:?}");
}

#[test]
fn l5_no_nondeterminism_fires_throughout_the_sim_crate() {
    let diags = lint_source("crates/sim/src/spec.rs", &fixture("nondeterminism_bad.rs"));
    let hits: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RULE_NO_NONDETERMINISM)
        .collect();
    // OsRng import, thread_rng, from_entropy, and the cfg(test) thread_rng:
    // unlike L1/L2, test items are NOT exempt in the sim crate.
    assert_eq!(hits.len(), 4, "{diags:?}");
    assert!(hits.iter().all(|d| d.severity == Severity::Deny));
    assert!(
        hits.iter().any(|d| d.line > 15),
        "cfg(test) construction not caught: {diags:?}"
    );
    // Sim test files are in scope too, not just src/.
    let diags = lint_source(
        "crates/sim/tests/differential.rs",
        &fixture("nondeterminism_bad.rs"),
    );
    assert!(rules(&diags).contains(&RULE_NO_NONDETERMINISM), "{diags:?}");
}

#[test]
fn l5_no_nondeterminism_is_scope_limited_to_sim() {
    // The generator crate owns delay models and legitimately constructs RNGs
    // from caller-provided state; the rule must stay silent there.
    let diags = lint_source("crates/gen/src/delay.rs", &fixture("nondeterminism_bad.rs"));
    assert!(
        !rules(&diags).contains(&RULE_NO_NONDETERMINISM),
        "{diags:?}"
    );
}

#[test]
fn allow_syntax_rejects_malformed_and_unknown_annotations() {
    let diags = lint_source(
        "crates/core/src/strategy.rs",
        &fixture("allow_syntax_bad.rs"),
    );
    let syntax_hits = diags.iter().filter(|d| d.rule == RULE_ALLOW_SYNTAX).count();
    assert_eq!(syntax_hits, 2, "{diags:?}"); // missing reason + unknown rule
                                             // Broken annotations suppress nothing: the unwraps still fire.
    let panic_hits = diags.iter().filter(|d| d.rule == RULE_NO_PANIC).count();
    assert_eq!(panic_hits, 2, "{diags:?}");
}

#[test]
fn clean_fixture_yields_no_findings() {
    let diags = lint_source("crates/core/src/runner.rs", &fixture("clean.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l6_lock_discipline_fires_on_blocking_under_guard() {
    let diags = lint_source(
        "crates/serve/src/server.rs",
        &fixture("lock_discipline_bad.rs"),
    );
    let hits: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RULE_LOCK_DISCIPLINE)
        .collect();
    // The direct send in `enqueue` plus the call in `drain` that reaches
    // `forward`'s send.
    assert_eq!(hits.len(), 2, "{diags:?}");
    assert!(hits.iter().all(|d| d.severity == Severity::Deny));
    assert!(
        hits.iter()
            .any(|d| d.message.contains("`guard` guard on `serve::state`")),
        "{diags:?}"
    );
    assert!(
        hits.iter()
            .any(|d| d.message.contains("may block") && d.message.contains("forward")),
        "transitive finding missing its witness: {diags:?}"
    );
}

#[test]
fn l6_lock_discipline_allows_suppress_both_shapes() {
    let diags = lint_source(
        "crates/serve/src/server.rs",
        &fixture("lock_discipline_allowed.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l7_lock_order_fires_on_conflicting_order_and_reacquisition() {
    let diags = lint_source("crates/serve/src/server.rs", &fixture("lock_order_bad.rs"));
    let hits: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == RULE_LOCK_ORDER).collect();
    // One conflict per unordered pair (reported once, both paths cited),
    // plus the direct re-acquisition in `reenter`.
    assert_eq!(hits.len(), 2, "{diags:?}");
    let conflict = hits
        .iter()
        .find(|d| d.message.contains("inconsistent lock order"))
        .unwrap_or_else(|| panic!("{diags:?}"));
    assert!(
        conflict.message.contains("forward") && conflict.message.contains("backward"),
        "conflict must cite both call paths: {}",
        conflict.message
    );
    assert!(
        hits.iter().any(|d| d.message.contains("not re-entrant")),
        "{diags:?}"
    );
}

#[test]
fn l7_lock_order_allow_on_one_edge_dissolves_the_cycle() {
    let diags = lint_source(
        "crates/serve/src/server.rs",
        &fixture("lock_order_allowed.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l8_wall_clock_taint_crosses_crates() {
    // The helper lives in telemetry (outside deterministic scope — L2 is
    // silent there); the deterministic core calls it. Only the multi-file
    // entry point can see the cross-crate edge.
    let files = vec![
        (
            "crates/telemetry/src/clock.rs".to_string(),
            fixture("taint_clock_source.rs"),
        ),
        (
            "crates/core/src/strategy.rs".to_string(),
            fixture("taint_sink_bad.rs"),
        ),
    ];
    let diags = lint_sources(&files);
    let hits: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RULE_WALL_CLOCK_TAINT)
        .collect();
    assert_eq!(hits.len(), 1, "{diags:?}");
    assert_eq!(hits[0].path, "crates/core/src/strategy.rs");
    assert!(
        hits[0].message.contains("wall_elapsed_micros"),
        "witness chain must name the tainted callee: {}",
        hits[0].message
    );
    // The helper's own file is outside deterministic scope: no findings there.
    assert!(
        diags
            .iter()
            .all(|d| d.path != "crates/telemetry/src/clock.rs"),
        "{diags:?}"
    );
}

#[test]
fn l8_wall_clock_taint_call_site_allow_suppresses() {
    let files = vec![
        (
            "crates/telemetry/src/clock.rs".to_string(),
            fixture("taint_clock_source.rs"),
        ),
        (
            "crates/core/src/strategy.rs".to_string(),
            fixture("taint_sink_allowed.rs"),
        ),
    ];
    let diags = lint_sources(&files);
    assert!(!rules(&diags).contains(&RULE_WALL_CLOCK_TAINT), "{diags:?}");
}

#[test]
fn l9_hot_path_alloc_fires_in_loops_and_exempts_constructors() {
    let diags = lint_source(
        "crates/engine/src/operator/fold.rs",
        &fixture("hot_alloc_bad.rs"),
    );
    let hits: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RULE_HOT_PATH_ALLOC)
        .collect();
    // format! + .clone() in fold_batch, Vec::new in rescale; the vec! in
    // `from_parts` is constructor-exempt.
    assert_eq!(hits.len(), 3, "{diags:?}");
    assert!(hits.iter().all(|d| d.severity == Severity::Deny));
    assert!(
        hits.iter().all(|d| !d.message.contains("from_parts")),
        "constructor exemption violated: {diags:?}"
    );
}

#[test]
fn l9_hot_path_alloc_covers_the_fiba_window_state() {
    // The FiBA arena joined the data-path scope: the per-element clone in
    // `range_fold` fires, while the per-node-split allocation in
    // `split_leaf` is suppressed by the same reasoned allow the real
    // module uses.
    let diags = lint_source("crates/engine/src/fiba.rs", &fixture("hot_alloc_fiba.rs"));
    let hits: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RULE_HOT_PATH_ALLOC)
        .collect();
    assert_eq!(hits.len(), 1, "{diags:?}");
    assert!(
        hits[0].message.contains("`.clone()`") && hits[0].message.contains("range_fold"),
        "{diags:?}"
    );
    // The same source outside the data-path scope is not linted.
    let diags = lint_source(
        "crates/metrics/src/summary.rs",
        &fixture("hot_alloc_fiba.rs"),
    );
    assert!(!rules(&diags).contains(&RULE_HOT_PATH_ALLOC), "{diags:?}");
}

#[test]
fn l9_hot_path_alloc_is_scope_limited() {
    // The same loops outside the data-path modules are not linted.
    let diags = lint_source(
        "crates/metrics/src/summary.rs",
        &fixture("hot_alloc_bad.rs"),
    );
    assert!(!rules(&diags).contains(&RULE_HOT_PATH_ALLOC), "{diags:?}");
}

#[test]
fn l9_hot_path_alloc_allow_suppresses() {
    let diags = lint_source(
        "crates/engine/src/operator/fold.rs",
        &fixture("hot_alloc_allowed.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn jsonl_rendering_round_trips_fixture_findings() {
    let diags = lint_source("crates/core/src/buffer.rs", &fixture("no_panic_bad.rs"));
    let jsonl = quill_lint::to_jsonl(&diags);
    assert_eq!(jsonl.lines().count(), diags.len());
    for (line, d) in jsonl.lines().zip(&diags) {
        assert!(line.contains(&format!("\"rule\":\"{}\"", d.rule)), "{line}");
        assert!(line.contains(&format!("\"line\":{}", d.line)), "{line}");
    }
}

#[test]
fn sarif_rendering_round_trips_fixture_findings() {
    let diags = lint_source(
        "crates/serve/src/server.rs",
        &fixture("lock_discipline_bad.rs"),
    );
    assert!(!diags.is_empty());
    let sarif = quill_lint::to_sarif(&diags);
    // Envelope: version, schema, and the tool driver.
    assert!(sarif.contains("\"version\":\"2.1.0\""), "{sarif}");
    assert!(sarif.contains("\"name\":\"quill-lint\""), "{sarif}");
    // Every finding must survive as a result with its rule id, level,
    // location and line.
    for d in &diags {
        assert!(
            sarif.contains(&format!("\"ruleId\":\"{}\"", d.rule)),
            "{d:?}"
        );
        assert!(
            sarif.contains(&format!("\"uri\":\"{}\"", d.path)),
            "{d:?}\n{sarif}"
        );
        assert!(
            sarif.contains(&format!("\"startLine\":{}", d.line)),
            "{d:?}\n{sarif}"
        );
    }
    assert_eq!(
        sarif.matches("\"ruleId\"").count(),
        diags.len(),
        "one result per finding:\n{sarif}"
    );
    assert!(sarif.contains("\"level\":\"error\""), "{sarif}");
}

/// Regression: the live workspace must stay lint-clean. This is the same
/// check `scripts/check.sh` enforces via the CLI.
#[test]
fn live_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    assert!(root.join("Cargo.toml").exists(), "bad root {root:?}");
    let diags = lint_workspace(root).expect("walk workspace");
    assert!(
        diags.is_empty(),
        "workspace has lint findings:\n{}",
        quill_lint::render_text(&diags)
    );
}
