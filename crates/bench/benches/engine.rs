//! Micro-benchmarks of the stream engine: windowed-aggregation throughput
//! per aggregate kind and window shape (the R-F7 denominator).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use quill_engine::aggregate::{AggregateKind, AggregateSpec};
use quill_engine::operator::{LatePolicy, Operator, WindowAggregateOp};
use quill_engine::prelude::{Event, Row, StreamElement, Value, WindowSpec};

fn ordered_stream(n: u64) -> Vec<StreamElement> {
    let mut v: Vec<StreamElement> = (0..n)
        .map(|i| StreamElement::Event(Event::new(i, i, Row::new([Value::Float((i % 97) as f64)]))))
        .collect();
    v.push(StreamElement::Flush);
    v
}

fn bench_aggregates(c: &mut Criterion) {
    let input = ordered_stream(10_000);
    let mut group = c.benchmark_group("window_aggregate_kind");
    group.throughput(Throughput::Elements(10_000));
    for kind in [
        AggregateKind::Sum,
        AggregateKind::Mean,
        AggregateKind::StdDev,
        AggregateKind::Median,
        AggregateKind::DistinctCount,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind}")),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut op = WindowAggregateOp::new(
                        WindowSpec::tumbling(100u64),
                        vec![AggregateSpec::new(kind, 0, "agg")],
                        None,
                        LatePolicy::Drop,
                    )
                    .expect("valid op");
                    let mut n = 0usize;
                    for el in &input {
                        op.process(el.clone(), &mut |_| n += 1);
                    }
                    n
                })
            },
        );
    }
    group.finish();
}

fn bench_window_shapes(c: &mut Criterion) {
    let input = ordered_stream(10_000);
    let mut group = c.benchmark_group("window_shape");
    group.throughput(Throughput::Elements(10_000));
    let shapes = [
        ("tumbling", WindowSpec::tumbling(100u64)),
        ("sliding/2", WindowSpec::sliding(100u64, 50u64)),
        ("sliding/10", WindowSpec::sliding(100u64, 10u64)),
    ];
    for (name, spec) in shapes {
        group.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, spec| {
            b.iter(|| {
                let mut op = WindowAggregateOp::new(
                    *spec,
                    vec![AggregateSpec::new(AggregateKind::Sum, 0, "sum")],
                    None,
                    LatePolicy::Drop,
                )
                .expect("valid op");
                let mut n = 0usize;
                for el in &input {
                    op.process(el.clone(), &mut |_| n += 1);
                }
                n
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_aggregates, bench_window_shapes);

mod parallel_bench {
    use super::*;
    use criterion::{BenchmarkId, Criterion, Throughput};
    use quill_engine::parallel::{run_keyed_parallel, run_keyed_parallel_with, ParallelConfig};

    fn keyed_stream(n: u64, keys: i64) -> Vec<StreamElement> {
        let mut v: Vec<StreamElement> = (0..n)
            .map(|i| {
                StreamElement::Event(Event::new(
                    i,
                    i,
                    Row::new([Value::Int((i as i64) % keys), Value::Float((i % 97) as f64)]),
                ))
            })
            .collect();
        v.push(StreamElement::Flush);
        v
    }

    pub fn bench_keyed_parallel(c: &mut Criterion) {
        let input = keyed_stream(20_000, 64);
        let mut group = c.benchmark_group("keyed_parallel_shards");
        group.throughput(Throughput::Elements(20_000));
        for shards in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::from_parameter(shards),
                &shards,
                |b, &shards| {
                    b.iter(|| {
                        run_keyed_parallel(input.clone(), 0, shards, || {
                            Box::new(
                                WindowAggregateOp::new(
                                    WindowSpec::sliding(200u64, 40u64),
                                    vec![
                                        AggregateSpec::new(AggregateKind::Median, 1, "med"),
                                        AggregateSpec::new(AggregateKind::StdDev, 1, "sd"),
                                    ],
                                    Some(0),
                                    LatePolicy::Drop,
                                )
                                .expect("valid op"),
                            )
                        })
                        .expect("parallel run")
                        .len()
                    })
                },
            );
        }
        group.finish();
    }

    /// Throughput across the shards × batch-size matrix on the keyed
    /// Median+Quantile workload (the ISSUE's acceptance workload): shows
    /// both the scaling curve and the batching win over per-event sends.
    pub fn bench_keyed_parallel_batched(c: &mut Criterion) {
        let n = 20_000u64;
        let input = keyed_stream(n, 64);
        let make_op = || {
            WindowAggregateOp::new(
                WindowSpec::sliding(200u64, 40u64),
                vec![
                    AggregateSpec::new(AggregateKind::Median, 1, "med"),
                    AggregateSpec::new(AggregateKind::Quantile(0.9), 1, "q90"),
                ],
                Some(0),
                LatePolicy::Drop,
            )
            .expect("valid op")
        };
        let mut group = c.benchmark_group("keyed_parallel_batched");
        group.throughput(Throughput::Elements(n));
        for shards in [1usize, 2, 4, 8] {
            for batch in [1usize, 64, 256, 1024] {
                group.bench_with_input(
                    BenchmarkId::from_parameter(format!("s{shards}_b{batch}")),
                    &(shards, batch),
                    |b, &(shards, batch)| {
                        b.iter(|| {
                            run_keyed_parallel_with(
                                input.clone(),
                                0,
                                ParallelConfig::new(shards).with_batch_size(batch),
                                make_op,
                            )
                            .expect("parallel run")
                            .0
                            .len()
                        })
                    },
                );
            }
        }
        group.finish();
    }
}

criterion_group!(
    parallel_benches,
    parallel_bench::bench_keyed_parallel,
    parallel_bench::bench_keyed_parallel_batched
);
criterion_main!(benches, parallel_benches);
