//! Micro-benchmarks of end-to-end strategy overhead: full `execute` cost
//! per strategy on an identical disordered stream (wall-clock counterpart
//! of R-F7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use quill_core::prelude::*;
use quill_engine::aggregate::{AggregateKind, AggregateSpec};
use quill_engine::prelude::{Event, Row, Value, WindowSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn disordered_events(n: u64, max_delay: u64, seed: u64) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arrivals: Vec<(u64, u64)> = (0..n)
        .map(|i| (i * 10 + rng.gen_range(0..=max_delay), i * 10))
        .collect();
    arrivals.sort();
    arrivals
        .into_iter()
        .enumerate()
        .map(|(seq, (_, ts))| Event::new(ts, seq as u64, Row::new([Value::Float(1.0)])))
        .collect()
}

fn query() -> QuerySpec {
    QuerySpec::new(
        WindowSpec::tumbling(500u64),
        vec![AggregateSpec::new(AggregateKind::Mean, 0, "mean")],
        None,
    )
}

fn bench_strategies(c: &mut Criterion) {
    let events = disordered_events(10_000, 500, 1);
    let q = query();
    let mut group = c.benchmark_group("strategy_end_to_end");
    group.throughput(Throughput::Elements(events.len() as u64));
    type StrategyFactory = fn() -> Box<dyn DisorderControl>;
    let make: Vec<(&str, StrategyFactory)> = vec![
        ("drop", || Box::new(DropAll::new())),
        ("fixed500", || Box::new(FixedKSlack::new(500u64))),
        ("mp", || Box::new(MpKSlack::new())),
        ("aq", || Box::new(AqKSlack::for_completeness(0.95))),
    ];
    for (name, factory) in make {
        group.bench_with_input(BenchmarkId::from_parameter(name), &factory, |b, f| {
            b.iter(|| {
                let mut s = f();
                execute(&events, s.as_mut(), &q, &ExecOptions::sequential())
                    .expect("valid query")
                    .results
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_aq_adaptation_interval(c: &mut Criterion) {
    let events = disordered_events(10_000, 500, 2);
    let q = query();
    let mut group = c.benchmark_group("aq_adapt_interval");
    group.throughput(Throughput::Elements(events.len() as u64));
    for every in [1u64, 16, 64, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(every), &every, |b, &every| {
            b.iter(|| {
                let mut cfg = AqConfig::completeness(0.95);
                cfg.adapt_every = every;
                let mut s = AqKSlack::new(cfg);
                execute(&events, &mut s, &q, &ExecOptions::sequential())
                    .expect("valid query")
                    .results
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_aq_adaptation_interval);
criterion_main!(benches);
