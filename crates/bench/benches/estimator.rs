//! Micro-benchmarks of AQ's per-event machinery: delay-estimator
//! observation + quantile queries, and histogram recording.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use quill_core::prelude::DelayEstimator;
use quill_engine::prelude::TimeDelta;
use quill_metrics::LogHistogram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn delays(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..10_000)).collect()
}

fn bench_observe(c: &mut Criterion) {
    let ds = delays(10_000, 1);
    let mut group = c.benchmark_group("estimator_observe");
    group.throughput(Throughput::Elements(ds.len() as u64));
    for cap in [256usize, 4096, 65_536] {
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| {
                let mut e = DelayEstimator::new(cap);
                for &d in &ds {
                    e.observe(TimeDelta(d));
                }
                e.len()
            })
        });
    }
    group.finish();
}

fn bench_quantile(c: &mut Criterion) {
    let ds = delays(100_000, 2);
    let mut group = c.benchmark_group("estimator_quantile");
    for cap in [256usize, 4096, 65_536] {
        let mut e = DelayEstimator::new(cap);
        for &d in &ds {
            e.observe(TimeDelta(d));
        }
        group.bench_with_input(BenchmarkId::from_parameter(cap), &e, |b, e| {
            b.iter(|| e.quantile(0.99))
        });
    }
    group.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let ds = delays(10_000, 3);
    let mut group = c.benchmark_group("log_histogram");
    group.throughput(Throughput::Elements(ds.len() as u64));
    group.bench_function("record_10k", |b| {
        b.iter(|| {
            let mut h = LogHistogram::with_default_precision();
            for &d in &ds {
                h.record(d);
            }
            h.count()
        })
    });
    let mut h = LogHistogram::with_default_precision();
    for &d in &ds {
        h.record(d);
    }
    group.bench_function("quantile", |b| b.iter(|| h.quantile(0.99)));
    group.finish();
}

criterion_group!(benches, bench_observe, bench_quantile, bench_histogram);
criterion_main!(benches);
