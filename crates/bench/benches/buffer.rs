//! Micro-benchmarks of the K-slack ordering buffer: insertion + release
//! throughput across slack sizes and disorder levels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use quill_core::prelude::SlackBuffer;
use quill_engine::prelude::{Event, Row, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn disordered_events(n: u64, max_delay: u64, seed: u64) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arrivals: Vec<(u64, u64)> = (0..n)
        .map(|i| (i * 10 + rng.gen_range(0..=max_delay), i * 10))
        .collect();
    arrivals.sort();
    arrivals
        .into_iter()
        .enumerate()
        .map(|(seq, (_, ts))| Event::new(ts, seq as u64, Row::new([Value::Float(1.0)])))
        .collect()
}

fn bench_insert(c: &mut Criterion) {
    let events = disordered_events(10_000, 500, 1);
    let mut group = c.benchmark_group("slack_buffer_insert");
    group.throughput(Throughput::Elements(events.len() as u64));
    for k in [0u64, 100, 1000, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut buf = SlackBuffer::new(k);
                let mut out = Vec::new();
                for e in &events {
                    buf.insert(e.clone(), &mut out);
                    out.clear();
                }
                buf.finish(&mut out);
                out.len()
            })
        });
    }
    group.finish();
}

fn bench_disorder_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("slack_buffer_disorder");
    group.throughput(Throughput::Elements(10_000));
    for max_delay in [0u64, 50, 500, 5000] {
        let events = disordered_events(10_000, max_delay, 2);
        group.bench_with_input(
            BenchmarkId::from_parameter(max_delay),
            &events,
            |b, events| {
                b.iter(|| {
                    let mut buf = SlackBuffer::new(max_delay);
                    let mut out = Vec::new();
                    for e in events {
                        buf.insert(e.clone(), &mut out);
                        out.clear();
                    }
                    buf.finish(&mut out);
                    out.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_insert, bench_disorder_levels);
criterion_main!(benches);
