//! R-T1 — workload characterization table.
//!
//! For each workload: event rate, disorder ratio, and the delay
//! distribution's mean / p50 / p99 / max. Establishes that the suite spans
//! light-tailed, heavy-tailed and non-stationary regimes (the experimental
//! conditions the strategies are compared under).

use crate::harness::{
    delay_quantile, delays_of, fmt_f64, standard_benches, Artifact, ExperimentCtx,
};
use quill_metrics::Table;

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) -> Vec<Artifact> {
    let mut table = Table::new(
        "R-T1: workload characterization",
        [
            "workload",
            "events",
            "rate (ev/kt)",
            "disorder %",
            "mean delay",
            "p50 delay",
            "p99 delay",
            "max delay",
        ],
    );
    for b in standard_benches(ctx) {
        let delays = delays_of(&b.stream.events);
        let span = b.stream.time_span().max(1);
        let rate = b.stream.len() as f64 * 1000.0 / span as f64;
        table.push_row([
            b.name.to_string(),
            b.stream.len().to_string(),
            fmt_f64(rate),
            fmt_f64(b.stream.stats.disorder_ratio() * 100.0),
            fmt_f64(b.stream.stats.mean_delay()),
            delay_quantile(&delays, 0.5).to_string(),
            delay_quantile(&delays, 0.99).to_string(),
            b.stream.stats.max_delay.raw().to_string(),
        ]);
    }
    // Companion figure: the empirical delay CDFs (the classic "why tails
    // matter" plot). Encoded as series with x = delay (log-spaced probes),
    // y = F(delay).
    let mut cdf_series = Vec::new();
    for b in standard_benches(ctx) {
        let mut delays = delays_of(&b.stream.events);
        delays.sort_unstable();
        let mut s = quill_metrics::TimeSeries::new(format!("cdf_{}", b.name));
        let max = *delays.last().unwrap_or(&1);
        let mut probe = 1u64;
        while probe <= max {
            let frac = delays.partition_point(|&d| d <= probe) as f64 / delays.len() as f64;
            s.push(quill_engine::time::Timestamp(probe), frac);
            probe = (probe as f64 * 1.5).ceil() as u64;
        }
        cdf_series.push(s);
    }
    vec![
        Artifact::Table {
            id: "t1_workloads".into(),
            table,
        },
        Artifact::Series {
            id: "t1_delay_cdfs".into(),
            title: "R-T1b: empirical delay CDFs per workload (x = delay, y = F(x))".into(),
            series: cdf_series,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_row_per_workload() {
        let ctx = ExperimentCtx::quick();
        let arts = run(&ctx);
        match &arts[0] {
            Artifact::Table { table, .. } => {
                assert_eq!(table.rows.len(), 5);
                // Pareto tail must exceed exp tail (column 6 = p99).
                let find = |name: &str| {
                    table
                        .rows
                        .iter()
                        .find(|r| r[0] == name)
                        .expect("row present")
                };
                let p99 = |name: &str| find(name)[6].parse::<u64>().expect("p99 parses");
                assert!(p99("synthetic-pareto") > p99("synthetic-exp") / 2);
            }
            _ => panic!("expected table"),
        }
    }
}
