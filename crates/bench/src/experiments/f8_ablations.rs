//! R-F8 — ablations of AQ-K-slack's design choices.
//!
//! On the non-stationary netmon workload (delay step mid-run), target
//! q = 0.97:
//!
//! * **feedback loop off** (open-loop quantile only) → more violations
//!   around the regime change;
//! * **delay-sample size W** — tiny samples make K noisy (more violations
//!   or more latency), huge samples adapt sluggishly;
//! * **adaptation interval** — adapting rarely reacts late to the step.

use crate::harness::{fmt_f64, standard_query, Artifact, ExperimentCtx};
use quill_core::prelude::*;
use quill_gen::workload::netmon::{self, NetmonConfig};
use quill_metrics::Table;

/// The completeness target.
pub const TARGET: f64 = 0.97;

fn variant(name: &str, cfg: AqConfig) -> (String, AqConfig) {
    (name.to_string(), cfg)
}

/// The ablation grid.
pub fn variants() -> Vec<(String, AqConfig)> {
    let base = AqConfig::completeness(TARGET);
    let mut out = vec![variant("base (W=4096, every 64, PI on)", base.clone())];
    let mut v = base.clone();
    v.open_loop = true;
    out.push(variant("open-loop (no PI)", v));
    for w in [64usize, 512, 16384] {
        let mut v = base.clone();
        v.sample_capacity = w;
        out.push(variant(&format!("W={w}"), v));
    }
    for every in [8u64, 1024] {
        let mut v = base.clone();
        v.adapt_every = every;
        out.push(variant(&format!("adapt every {every}"), v));
    }
    let mut v = base.clone();
    v.max_shrink = 1.0;
    out.push(variant("no shrink hysteresis", v));
    let mut v = base.clone();
    v.estimator = quill_core::prelude::EstimatorKind::DecayingHistogram {
        precision_bits: 7,
        decay_every: 2048,
    };
    out.push(variant("histogram estimator (O(1) mem)", v));
    let mut v = base;
    v.estimator = quill_core::prelude::EstimatorKind::DecayingHistogram {
        precision_bits: 3,
        decay_every: 2048,
    };
    out.push(variant("histogram estimator (coarse, 3 bits)", v));
    out
}

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) -> Vec<Artifact> {
    let horizon = (ctx.events as u64) * 5;
    let cfg = NetmonConfig::default().with_step_drift(horizon / 2);
    let stream = netmon::generate(&cfg, ctx.events, ctx.seed);
    let query = standard_query("netmon");

    let mut table = Table::new(
        format!("R-F8: AQ ablations on netmon + delay step (target q={TARGET})"),
        [
            "variant",
            "compl %",
            "viol %",
            "mean lat",
            "mean K",
            "adaptations",
        ],
    );
    for (name, aq_cfg) in variants() {
        let mut s = AqKSlack::new(aq_cfg);
        let out = execute(&stream.events, &mut s, &query, &ExecOptions::sequential())
            .expect("valid query");
        table.push_row([
            name,
            fmt_f64(out.quality.mean_completeness * 100.0),
            fmt_f64(out.quality.violation_rate(TARGET) * 100.0),
            fmt_f64(out.latency.mean),
            fmt_f64(out.mean_k),
            s.aq_stats().adaptations.to_string(),
        ]);
    }
    vec![Artifact::Table {
        id: "f8_ablations".into(),
        table,
    }]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_runs_and_base_is_compliant() {
        let ctx = ExperimentCtx::quick();
        let arts = run(&ctx);
        let table = match &arts[0] {
            Artifact::Table { table, .. } => table,
            _ => panic!("expected table"),
        };
        assert_eq!(table.rows.len(), variants().len());
        let col = |r: &Vec<String>, i: usize| r[i].parse::<f64>().expect("numeric cell");
        let base = &table.rows[0];
        assert!(
            col(base, 1) >= TARGET * 100.0 - 6.0,
            "base compl {}",
            base[1]
        );
        // Adapting rarely performs no better on violations than the base.
        let rare = table
            .rows
            .iter()
            .find(|r| r[0].contains("1024"))
            .expect("rare-adaptation row");
        assert!(col(rare, 5) < col(base, 5), "rare adapts less often");
    }
}
