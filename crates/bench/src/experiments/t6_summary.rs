//! R-T6 — the grand summary: strategy × workload.
//!
//! Mean/p99 latency, mean buffer occupancy, achieved completeness and
//! violation rate against a 0.95 target, for every strategy on every
//! workload. The expected shape: AQ sits on the quality target with the
//! smallest latency among compliant strategies; Drop is fast but broken;
//! MP is compliant but pays max-delay latency; Oracle is exact but its
//! "latency" is the whole stream.

use crate::harness::{
    delays_of, fmt_f64, make_strategy, standard_benches, Artifact, ExperimentCtx, StrategySpec,
};
use quill_core::prelude::{execute, ExecOptions};
use quill_metrics::Table;

/// The completeness level used for violation accounting.
pub const TARGET: f64 = 0.95;

/// Strategies compared (Fixed-lo = offline median delay, Fixed-hi = offline
/// p99 delay).
pub fn strategies() -> Vec<(&'static str, StrategySpec)> {
    vec![
        ("drop", StrategySpec::Drop),
        ("fixed-lo", StrategySpec::FixedQuantile(0.5)),
        ("fixed-hi", StrategySpec::FixedQuantile(0.99)),
        ("mp", StrategySpec::Mp),
        ("aq", StrategySpec::Aq(TARGET)),
    ]
}

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) -> Vec<Artifact> {
    let mut table = Table::new(
        format!("R-T6: strategy x workload summary (violation target q={TARGET})"),
        [
            "workload", "strategy", "mean lat", "p99 lat", "mean buf", "compl %", "viol %",
            "late ev",
        ],
    );
    for b in standard_benches(ctx) {
        let delays = delays_of(&b.stream.events);
        let mut all = strategies();
        // Workloads with natural sources also get the punctuation baseline
        // (with a modest per-source slack to compensate intra-source
        // disorder — the median overall delay).
        if let Some((source_field, sources)) = crate::harness::source_info(b.name) {
            let slack = crate::harness::delay_quantile(&delays, 0.5);
            all.push((
                "punct",
                StrategySpec::Punct {
                    source_field,
                    sources,
                    slack,
                },
            ));
        }
        for (label, spec) in all {
            let mut s = make_strategy(&spec, &delays);
            let out = execute(
                &b.stream.events,
                s.as_mut(),
                &b.query,
                &ExecOptions::sequential(),
            )
            .expect("valid query");
            table.push_row([
                b.name.to_string(),
                label.to_string(),
                fmt_f64(out.latency.mean),
                fmt_f64(out.latency.p99),
                fmt_f64(out.buffer.mean_buffered()),
                fmt_f64(out.quality.mean_completeness * 100.0),
                fmt_f64(out.quality.violation_rate(TARGET) * 100.0),
                out.buffer.late_passed.to_string(),
            ]);
        }
    }
    vec![Artifact::Table {
        id: "t6_summary".into(),
        table,
    }]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds_on_synthetic_exp() {
        let ctx = ExperimentCtx::quick();
        let arts = run(&ctx);
        let table = match &arts[0] {
            Artifact::Table { table, .. } => table,
            _ => panic!("expected table"),
        };
        let col = |r: &Vec<String>, i: usize| r[i].parse::<f64>().expect("numeric cell");
        let get = |strategy: &str| {
            table
                .rows
                .iter()
                .find(|r| r[0] == "synthetic-exp" && r[1] == strategy)
                .expect("row present")
        };
        // Drop: fastest, worst quality.
        assert!(col(get("drop"), 2) < col(get("mp"), 2));
        assert!(col(get("drop"), 5) < col(get("aq"), 5));
        // AQ: compliant-ish and cheaper than MP.
        assert!(col(get("aq"), 5) >= TARGET * 100.0 - 6.0);
        assert!(col(get("aq"), 2) < col(get("mp"), 2));
        // fixed-hi buys more quality than fixed-lo at more latency.
        assert!(col(get("fixed-hi"), 5) >= col(get("fixed-lo"), 5));
        assert!(col(get("fixed-hi"), 2) >= col(get("fixed-lo"), 2));
    }
}
