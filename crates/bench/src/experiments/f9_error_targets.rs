//! R-F9 — aggregate-error quality targets: relative error vs. latency.
//!
//! On the stock stream with a mean-price query, AQ is driven by a maximum
//! relative-error target ε instead of completeness. Because a bounded error
//! tolerates some missing tuples (scaled by the payload's dispersion via the
//! sensitivity model), error targets should reach their goal at *lower*
//! latency than a near-exact completeness target — and latency should grow
//! as ε tightens.

use crate::harness::{fmt_f64, standard_query, Artifact, ExperimentCtx};
use quill_core::prelude::*;
use quill_gen::workload::stock::{self, StockConfig};
use quill_metrics::Table;

/// Error bounds swept.
pub const EPSILONS: &[f64] = &[0.10, 0.05, 0.01, 0.001];

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) -> Vec<Artifact> {
    let stream = stock::generate(&StockConfig::default(), ctx.events, ctx.seed);
    let query = standard_query("stock");

    let mut table = Table::new(
        "R-F9: relative-error targets on stock mean-price (AQ error-driven)",
        [
            "target",
            "mean lat",
            "mean rel err %",
            "err viol %",
            "compl %",
            "mean K",
        ],
    );
    for &eps in EPSILONS {
        let mut s = AqKSlack::new(AqConfig::max_rel_error(eps, stock::PRICE_FIELD));
        let out = execute(&stream.events, &mut s, &query, &ExecOptions::sequential())
            .expect("valid query");
        table.push_row([
            format!("eps={eps}"),
            fmt_f64(out.latency.mean),
            fmt_f64(out.quality.mean_rel_error[0] * 100.0),
            fmt_f64(out.quality.error_violation_rate(0, eps) * 100.0),
            fmt_f64(out.quality.mean_completeness * 100.0),
            fmt_f64(out.mean_k),
        ]);
    }
    // Reference: a near-exact completeness run.
    let mut s = AqKSlack::for_completeness(0.999);
    let out =
        execute(&stream.events, &mut s, &query, &ExecOptions::sequential()).expect("valid query");
    table.push_row([
        "compl=0.999 (ref)".to_string(),
        fmt_f64(out.latency.mean),
        fmt_f64(out.quality.mean_rel_error[0] * 100.0),
        fmt_f64(out.quality.error_violation_rate(0, 0.01) * 100.0),
        fmt_f64(out.quality.mean_completeness * 100.0),
        fmt_f64(out.mean_k),
    ]);
    vec![Artifact::Table {
        id: "f9_error_targets".into(),
        table,
    }]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn looser_error_budgets_cost_less_latency() {
        let ctx = ExperimentCtx::quick();
        let arts = run(&ctx);
        let table = match &arts[0] {
            Artifact::Table { table, .. } => table,
            _ => panic!("expected table"),
        };
        let col = |r: &Vec<String>, i: usize| r[i].parse::<f64>().expect("numeric cell");
        // eps=0.10 row vs eps=0.001 row: latency should not decrease as the
        // budget tightens.
        let loose = &table.rows[0];
        let tight = &table.rows[EPSILONS.len() - 1];
        assert!(
            col(tight, 1) >= col(loose, 1),
            "tight eps latency {} < loose {}",
            col(tight, 1),
            col(loose, 1)
        );
        // Achieved mean relative error at the loosest budget stays within it
        // (generously: ×1.5 for window granularity noise at quick scale).
        assert!(
            col(loose, 2) <= 10.0 * 1.5,
            "mean err {}% blew the 10% budget",
            col(loose, 2)
        );
        // The strict-completeness reference pays at least as much latency as
        // the loosest error target.
        let reference = table.rows.last().expect("ref row");
        assert!(col(reference, 1) >= col(loose, 1));
    }
}
