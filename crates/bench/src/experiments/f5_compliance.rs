//! R-F5 — achieved quality over time vs. the target.
//!
//! Netmon with a mid-run delay step, target completeness 0.97. Per-window
//! completeness is plotted over event time for AQ and for a fixed-K baseline
//! calibrated on the *calm* prefix: the fixed baseline collapses after the
//! regime change while AQ recovers, and the violation-rate table quantifies
//! it.

use crate::harness::{delay_quantile, delays_of, fmt_f64, standard_query, Artifact, ExperimentCtx};
use quill_core::prelude::*;
use quill_gen::workload::netmon::{self, NetmonConfig};
use quill_metrics::{Table, TimeSeries};

/// The completeness target.
pub const TARGET: f64 = 0.97;

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) -> Vec<Artifact> {
    let horizon = (ctx.events as u64) * 5;
    let step_at = horizon / 2;
    let cfg = NetmonConfig::default().with_step_drift(step_at);
    let stream = netmon::generate(&cfg, ctx.events, ctx.seed);
    let query = standard_query("netmon");

    // Calibrate the fixed baseline on the calm prefix only (what an operator
    // tuning on historical data would do).
    let calm_delays: Vec<u64> = {
        let prefix: Vec<_> = stream
            .events
            .iter()
            .filter(|e| e.ts.raw() < step_at)
            .cloned()
            .collect();
        delays_of(&prefix)
    };
    let k_fixed = delay_quantile(&calm_delays, TARGET);

    let mut aq = AqKSlack::for_completeness(TARGET);
    let aq_out =
        execute(&stream.events, &mut aq, &query, &ExecOptions::sequential()).expect("valid query");
    let mut fx = FixedKSlack::new(k_fixed);
    let fx_out =
        execute(&stream.events, &mut fx, &query, &ExecOptions::sequential()).expect("valid query");

    let series_of = |name: &str, out: &RunOutput| {
        let mut s = TimeSeries::new(name);
        for w in &out.quality.per_window {
            s.push(w.window.end, w.completeness);
        }
        // per_window is in oracle (window-end) order already.
        s.downsample(500)
    };

    let mut table = Table::new(
        format!("R-F5: target q={TARGET}, violation rates before/after the delay step"),
        [
            "strategy",
            "viol % (calm)",
            "viol % (stressed)",
            "overall compl %",
        ],
    );
    for (name, out) in [("aq", &aq_out), (&format!("fixed(K={k_fixed})"), &fx_out)] {
        let (mut v_calm, mut n_calm, mut v_stress, mut n_stress) = (0u64, 0u64, 0u64, 0u64);
        for w in &out.quality.per_window {
            let violated = w.completeness < TARGET;
            if w.window.end.raw() < step_at {
                n_calm += 1;
                v_calm += violated as u64;
            } else {
                n_stress += 1;
                v_stress += violated as u64;
            }
        }
        table.push_row([
            name.to_string(),
            fmt_f64(100.0 * v_calm as f64 / n_calm.max(1) as f64),
            fmt_f64(100.0 * v_stress as f64 / n_stress.max(1) as f64),
            fmt_f64(out.quality.mean_completeness * 100.0),
        ]);
    }

    vec![
        Artifact::Table {
            id: "f5_compliance_summary".into(),
            table,
        },
        Artifact::Series {
            id: "f5_compliance_series".into(),
            title: format!("R-F5: per-window completeness over time (target {TARGET})"),
            series: vec![
                series_of("aq_completeness", &aq_out),
                series_of("fixed_completeness", &fx_out),
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aq_violates_less_than_fixed_after_the_step() {
        let ctx = ExperimentCtx::quick();
        let arts = run(&ctx);
        let table = match &arts[0] {
            Artifact::Table { table, .. } => table,
            _ => panic!("expected table"),
        };
        let col = |r: &Vec<String>, i: usize| r[i].parse::<f64>().expect("numeric cell");
        let aq = &table.rows[0];
        let fx = &table.rows[1];
        assert!(
            col(aq, 2) <= col(fx, 2) + 1e-9,
            "AQ stressed violations {} should not exceed fixed {}",
            col(aq, 2),
            col(fx, 2)
        );
        // Fixed calibrated on calm data degrades in the stressed half.
        assert!(
            col(fx, 2) >= col(fx, 1),
            "fixed should degrade after the step"
        );
    }
}
