//! R-F5 — achieved quality over time vs. the target.
//!
//! Netmon with a mid-run delay step, target completeness 0.97. Per-window
//! completeness is plotted over event time for AQ and for a fixed-K baseline
//! calibrated on the *calm* prefix: the fixed baseline collapses after the
//! regime change while AQ recovers, and the violation-rate table quantifies
//! it.

use crate::harness::{delay_quantile, delays_of, fmt_f64, standard_query, Artifact, ExperimentCtx};
use quill_core::prelude::*;
use quill_gen::workload::netmon::{self, NetmonConfig};
use quill_metrics::{Table, TimeSeries};

/// The completeness target.
pub const TARGET: f64 = 0.97;

/// Post-mortems persisted per run (the earliest violations tell the story;
/// the rest repeat it).
const MAX_POSTMORTEMS: usize = 5;

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) -> Vec<Artifact> {
    let horizon = (ctx.events as u64) * 5;
    let step_at = horizon / 2;
    let cfg = NetmonConfig::default().with_step_drift(step_at);
    let stream = netmon::generate(&cfg, ctx.events, ctx.seed);
    let query = standard_query("netmon");

    // Calibrate the fixed baseline on the calm prefix only (what an operator
    // tuning on historical data would do).
    let calm_delays: Vec<u64> = {
        let prefix: Vec<_> = stream
            .events
            .iter()
            .filter(|e| e.ts.raw() < step_at)
            .cloned()
            .collect();
        delays_of(&prefix)
    };
    let k_fixed = delay_quantile(&calm_delays, TARGET);

    let mut aq = AqKSlack::for_completeness(TARGET);
    let aq_out =
        execute(&stream.events, &mut aq, &query, &ExecOptions::sequential()).expect("valid query");
    // The fixed baseline carries a flight recorder and the quality target:
    // after the delay step its calm-calibrated K misses the target, and
    // every violated window gets a post-mortem — the causal trace slice
    // (late arrivals, the drops, the K decision in force, the finalize).
    // The first few are persisted as `results/f5_postmortems.jsonl` for
    // `quill-inspect`.
    let fx_trace = FlightRecorder::with_default_capacity();
    let mut fx = FixedKSlack::new(k_fixed);
    let fx_out = execute(
        &stream.events,
        &mut fx,
        &query,
        &ExecOptions::sequential()
            .with_trace(&fx_trace)
            .with_required_completeness(TARGET),
    )
    .expect("valid query");
    let postmortem_lines = post_mortems_to_lines(
        &fx_out.post_mortems[..fx_out.post_mortems.len().min(MAX_POSTMORTEMS)],
    );

    let series_of = |name: &str, out: &RunOutput| {
        let mut s = TimeSeries::new(name);
        for w in &out.quality.per_window {
            s.push(w.window.end, w.completeness);
        }
        // per_window is in oracle (window-end) order already.
        s.downsample(500)
    };

    let mut table = Table::new(
        format!("R-F5: target q={TARGET}, violation rates before/after the delay step"),
        [
            "strategy",
            "viol % (calm)",
            "viol % (stressed)",
            "overall compl %",
        ],
    );
    for (name, out) in [("aq", &aq_out), (&format!("fixed(K={k_fixed})"), &fx_out)] {
        let (mut v_calm, mut n_calm, mut v_stress, mut n_stress) = (0u64, 0u64, 0u64, 0u64);
        for w in &out.quality.per_window {
            let violated = w.completeness < TARGET;
            if w.window.end.raw() < step_at {
                n_calm += 1;
                v_calm += violated as u64;
            } else {
                n_stress += 1;
                v_stress += violated as u64;
            }
        }
        table.push_row([
            name.to_string(),
            fmt_f64(100.0 * v_calm as f64 / n_calm.max(1) as f64),
            fmt_f64(100.0 * v_stress as f64 / n_stress.max(1) as f64),
            fmt_f64(out.quality.mean_completeness * 100.0),
        ]);
    }

    vec![
        Artifact::Table {
            id: "f5_compliance_summary".into(),
            table,
        },
        Artifact::Series {
            id: "f5_compliance_series".into(),
            title: format!("R-F5: per-window completeness over time (target {TARGET})"),
            series: vec![
                series_of("aq_completeness", &aq_out),
                series_of("fixed_completeness", &fx_out),
            ],
        },
        Artifact::Jsonl {
            id: "f5_postmortems".into(),
            title: format!(
                "R-F5: post-mortems of the fixed baseline's first {MAX_POSTMORTEMS} \
                 target violations (render with quill-inspect)"
            ),
            lines: postmortem_lines,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aq_violates_less_than_fixed_after_the_step() {
        let ctx = ExperimentCtx::quick();
        let arts = run(&ctx);
        let table = match &arts[0] {
            Artifact::Table { table, .. } => table,
            _ => panic!("expected table"),
        };
        let col = |r: &Vec<String>, i: usize| r[i].parse::<f64>().expect("numeric cell");
        let aq = &table.rows[0];
        let fx = &table.rows[1];
        assert!(
            col(aq, 2) <= col(fx, 2) + 1e-9,
            "AQ stressed violations {} should not exceed fixed {}",
            col(aq, 2),
            col(fx, 2)
        );
        // Fixed calibrated on calm data degrades in the stressed half.
        assert!(
            col(fx, 2) >= col(fx, 1),
            "fixed should degrade after the step"
        );
        // The degraded baseline yields post-mortems, and they render.
        let pm_lines = match arts.last().expect("artifacts") {
            Artifact::Jsonl { id, lines, .. } => {
                assert_eq!(id, "f5_postmortems");
                lines
            }
            _ => panic!("expected post-mortem jsonl artifact"),
        };
        assert!(!pm_lines.is_empty(), "fixed baseline violated no windows?");
        let pms = quill_telemetry::trace::parse_post_mortems(&pm_lines.join("\n")).expect("parses");
        assert!(!pms.is_empty() && pms.len() <= MAX_POSTMORTEMS);
        for pm in &pms {
            assert!(pm.record.violated);
            assert!(pm.record.achieved_completeness < TARGET);
        }
        let report =
            crate::inspect::render_report(&pm_lines.join("\n"), 10).expect("report renders");
        assert!(report.contains("Quality-violation post-mortem"));
        assert!(report.contains("Violation: window ["));
    }
}
