//! R-F2 — result quality vs. fixed buffer bound K.
//!
//! The motivating trade-off: sweeping a *fixed* K on a light-tailed
//! (exponential) and a heavy-tailed (Pareto) stream shows (a) completeness
//! follows the delay CDF, (b) diminishing returns, and (c) heavy tails push
//! the K needed for high quality far beyond the mean delay — which is why a
//! fixed or max-delay policy wastes latency.

use crate::harness::{fmt_f64, standard_query, Artifact, ExperimentCtx};
use quill_core::prelude::*;
use quill_metrics::Table;

/// The K values swept.
pub const K_SWEEP: &[u64] = &[0, 25, 50, 100, 200, 400, 800, 1600, 3200];

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) -> Vec<Artifact> {
    let query = standard_query("synthetic-exp");
    let exp = quill_gen::workload::synthetic::exponential(ctx.events, 10, 100.0, ctx.seed);
    let par = quill_gen::workload::synthetic::pareto(ctx.events, 10, 200.0, 3.0, ctx.seed);

    let mut table = Table::new(
        "R-F2: completeness and latency vs. fixed K (exp vs. pareto delays, mean 100)",
        [
            "K",
            "exp compl %",
            "exp latency",
            "pareto compl %",
            "pareto latency",
        ],
    );
    for &k in K_SWEEP {
        let mut row = vec![k.to_string()];
        for stream in [&exp, &par] {
            let mut s = FixedKSlack::new(k);
            let out = execute(&stream.events, &mut s, &query, &ExecOptions::sequential())
                .expect("valid query");
            row.push(fmt_f64(out.quality.mean_completeness * 100.0));
            row.push(fmt_f64(out.latency.mean));
        }
        table.push_row(row);
    }
    vec![Artifact::Table {
        id: "f2_quality_vs_k".into(),
        table,
    }]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completeness_is_monotone_in_k_and_pareto_lags() {
        let ctx = ExperimentCtx::quick();
        let arts = run(&ctx);
        let table = match &arts[0] {
            Artifact::Table { table, .. } => table,
            _ => panic!("expected table"),
        };
        let col = |r: &Vec<String>, i: usize| r[i].parse::<f64>().expect("numeric cell");
        // Completeness non-decreasing in K (small tolerance for window
        // granularity noise).
        for w in table.rows.windows(2) {
            assert!(
                col(&w[1], 1) >= col(&w[0], 1) - 2.0,
                "exp compl not monotone"
            );
        }
        // At moderate K (=200 vs mean delay 100), exp should be clearly
        // ahead of pareto in completeness.
        let mid = table
            .rows
            .iter()
            .find(|r| r[0] == "400")
            .expect("row K=400");
        assert!(
            col(mid, 1) >= col(mid, 3) - 1.0,
            "exp {} should be >= pareto {} at K=400",
            col(mid, 1),
            col(mid, 3)
        );
        // Latency grows with K.
        let first = &table.rows[0];
        let last = table.rows.last().expect("non-empty");
        assert!(col(last, 2) > col(first, 2));
    }
}
