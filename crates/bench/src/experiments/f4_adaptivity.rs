//! R-F4 — adaptivity: K(t) under a delay regime change.
//!
//! A netmon stream whose delay scale steps up 4× mid-run. MP-K-slack ratchets
//! up at the first big burst and never comes back down; AQ-K-slack tracks
//! the regime up *and back down* when the stress passes (here the step is
//! permanent, so "down" shows on the sine variant; the table reports mean K
//! in the before/after halves for both strategies).

use crate::harness::{fmt_f64, standard_query, Artifact, ExperimentCtx};
use quill_core::prelude::*;
use quill_gen::workload::netmon::{self, NetmonConfig};
use quill_metrics::{Table, TimeSeries};

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) -> Vec<Artifact> {
    let horizon = (ctx.events as u64) * 5; // event-time span at period 5
    let step_at = horizon / 2;
    let cfg = NetmonConfig::default().with_step_drift(step_at);
    let stream = netmon::generate(&cfg, ctx.events, ctx.seed);
    let query = standard_query("netmon");

    // The AQ run records live telemetry: controller gauges and estimator
    // quantiles snapshotted 8 times across the run, persisted below as a
    // JSON-lines artifact. It also carries a bounded flight recorder, so
    // `results/f4_trace.jsonl` holds the (newest 8192) structured trace
    // events — every controller K decision with its trigger reason, late
    // arrivals with their lateness, buffer emissions and window
    // finalizations — renderable with `quill-inspect`.
    let telemetry = Registry::new();
    let trace = FlightRecorder::new(8192);
    let aq_opts = ExecOptions::sequential()
        .with_telemetry(&telemetry)
        .with_snapshot_every((ctx.events as u64 / 8).max(1))
        .with_trace(&trace);
    let mut aq = AqKSlack::for_completeness(0.95);
    let aq_out = execute(&stream.events, &mut aq, &query, &aq_opts).expect("valid query");
    let trace_lines: Vec<String> = trace.events().iter().map(|e| e.to_json_line()).collect();
    let mut mp = MpKSlack::new();
    let mp_out =
        execute(&stream.events, &mut mp, &query, &ExecOptions::sequential()).expect("valid query");
    let snapshot_lines: Vec<String> = aq_out
        .snapshots
        .iter()
        .map(quill_telemetry::export::to_json_line)
        .collect();

    let mut aq_series = aq_out.k_series.downsample(400);
    aq_series.name = "aq_k".into();
    let mut mp_series = mp_out.k_series.downsample(400);
    mp_series.name = "mp_k".into();

    let half_mean = |s: &TimeSeries, lo: u64, hi: u64| {
        let pts: Vec<f64> = s
            .points()
            .iter()
            .filter(|(t, _)| *t >= lo && *t < hi)
            .map(|&(_, v)| v)
            .collect();
        if pts.is_empty() {
            0.0
        } else {
            pts.iter().sum::<f64>() / pts.len() as f64
        }
    };

    let mut table = Table::new(
        "R-F4: mean K before/after a 4x delay-scale step at t=half",
        [
            "strategy",
            "mean K (calm half)",
            "mean K (stressed half)",
            "compl %",
            "mean latency",
        ],
    );
    for (name, series, out) in [
        ("aq(0.95)", &aq_out.k_series, &aq_out),
        ("mp", &mp_out.k_series, &mp_out),
    ] {
        table.push_row([
            name.to_string(),
            fmt_f64(half_mean(series, 0, step_at)),
            fmt_f64(half_mean(series, step_at, u64::MAX)),
            fmt_f64(out.quality.mean_completeness * 100.0),
            fmt_f64(out.latency.mean),
        ]);
    }

    // Second scenario: oscillating delay scale (sine drift) — shows K
    // riding *down* again after each stress peak, which MP cannot do.
    let sine_cfg = NetmonConfig {
        drift: Some(quill_gen::DriftShape::Sine {
            amplitude: 2.0,
            period: horizon / 4,
        }),
        ..NetmonConfig::default()
    };
    let sine_stream = netmon::generate(&sine_cfg, ctx.events, ctx.seed.wrapping_add(1));
    let mut aq2 = AqKSlack::for_completeness(0.95);
    let aq2_out = execute(
        &sine_stream.events,
        &mut aq2,
        &query,
        &ExecOptions::sequential(),
    )
    .expect("valid query");
    let mut mp2 = MpKSlack::new();
    let mp2_out = execute(
        &sine_stream.events,
        &mut mp2,
        &query,
        &ExecOptions::sequential(),
    )
    .expect("valid query");
    let mut aq2_series = aq2_out.k_series.downsample(400);
    aq2_series.name = "aq_k_sine".into();
    let mut mp2_series = mp2_out.k_series.downsample(400);
    mp2_series.name = "mp_k_sine".into();

    // Recovery metric: how far K falls back from its running peak. MP never
    // recovers (ratio 1.0); AQ should recover substantially.
    let recovery = |s: &TimeSeries| {
        let mut peak = f64::MIN;
        let mut min_after_peak_frac = 1.0f64;
        for &(_, v) in s.points() {
            peak = peak.max(v);
            if peak > 0.0 {
                min_after_peak_frac = min_after_peak_frac.min(v / peak);
            }
        }
        min_after_peak_frac
    };
    let mut sine_table = Table::new(
        "R-F4b: K recovery under oscillating delays (min K / running peak K)",
        [
            "strategy",
            "recovery ratio (lower = recovers more)",
            "compl %",
            "mean latency",
        ],
    );
    for (name, series, out) in [
        ("aq(0.95)", &aq2_out.k_series, &aq2_out),
        ("mp", &mp2_out.k_series, &mp2_out),
    ] {
        sine_table.push_row([
            name.to_string(),
            fmt_f64(recovery(series)),
            fmt_f64(out.quality.mean_completeness * 100.0),
            fmt_f64(out.latency.mean),
        ]);
    }

    vec![
        Artifact::Table {
            id: "f4_adaptivity_summary".into(),
            table,
        },
        Artifact::Series {
            id: "f4_adaptivity_series".into(),
            title: "R-F4: K(t) under a delay regime step (aq vs mp)".into(),
            series: vec![aq_series, mp_series],
        },
        Artifact::Table {
            id: "f4b_recovery".into(),
            table: sine_table,
        },
        Artifact::Series {
            id: "f4b_recovery_series".into(),
            title: "R-F4b: K(t) under oscillating delays (aq recovers, mp ratchets)".into(),
            series: vec![aq2_series, mp2_series],
        },
        Artifact::Jsonl {
            id: "f4_trace".into(),
            title: "R-F4: AQ flight-recorder trace (render with quill-inspect)".into(),
            lines: trace_lines,
        },
        Artifact::Jsonl {
            id: "f4_telemetry_snapshots".into(),
            title: "R-F4: AQ controller/estimator telemetry snapshots".into(),
            lines: snapshot_lines,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aq_adapts_upward_and_stays_below_mp_in_calm_half() {
        let ctx = ExperimentCtx::quick();
        let arts = run(&ctx);
        let table = match &arts[0] {
            Artifact::Table { table, .. } => table,
            _ => panic!("expected table"),
        };
        let col = |r: &Vec<String>, i: usize| r[i].parse::<f64>().expect("numeric cell");
        let aq = &table.rows[0];
        let mp = &table.rows[1];
        // AQ raises K after the step.
        assert!(col(aq, 2) > col(aq, 1), "AQ did not adapt upward: {aq:?}");
        // In the calm half AQ holds a (much) smaller K than MP's max-ratchet.
        assert!(
            col(aq, 1) < col(mp, 1) * 1.05 + 1.0,
            "aq {} vs mp {}",
            col(aq, 1),
            col(mp, 1)
        );
        // Both series artifacts exist.
        assert!(matches!(arts[1], Artifact::Series { .. }));
        // Recovery table: AQ's recovery ratio strictly below MP's (MP never
        // shrinks → ratio ~1).
        let rec = match &arts[2] {
            Artifact::Table { table, .. } => table,
            _ => panic!("expected recovery table"),
        };
        let aq_rec: f64 = rec.rows[0][1].parse().expect("numeric");
        let mp_rec: f64 = rec.rows[1][1].parse().expect("numeric");
        assert!(
            aq_rec < mp_rec,
            "AQ recovery {aq_rec} not better than MP {mp_rec}"
        );
        assert!(mp_rec > 0.99, "MP should never recover, got {mp_rec}");
        // Telemetry snapshots rode along with the AQ run.
        let lines = match arts.last().expect("artifacts") {
            Artifact::Jsonl { lines, .. } => lines,
            _ => panic!("expected jsonl artifact"),
        };
        assert!(!lines.is_empty(), "no telemetry snapshots recorded");
        assert!(lines.last().unwrap().contains("quill.controller.k"));
        // The flight-recorder trace rode along too: every line parses and
        // the controller's adaptive K decisions are on record.
        let trace_lines = arts
            .iter()
            .find_map(|a| match a {
                Artifact::Jsonl { id, lines, .. } if id == "f4_trace" => Some(lines),
                _ => None,
            })
            .expect("f4_trace artifact");
        assert!(!trace_lines.is_empty());
        for l in trace_lines {
            quill_telemetry::trace::parse_trace_line(l).expect("well-formed trace line");
        }
        assert!(
            trace_lines.iter().any(|l| l.contains("\"k_change\"")),
            "no controller decisions in trace"
        );
        let report = crate::inspect::render_report(&trace_lines.join("\n"), 5).expect("renders");
        assert!(report.contains("Controller decision log"));
    }
}
