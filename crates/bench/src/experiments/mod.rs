//! One module per reconstructed table/figure (DESIGN.md §5).

pub mod f2_quality_vs_k;
pub mod f3_latency_vs_quality;
pub mod f4_adaptivity;
pub mod f5_compliance;
pub mod f7_throughput;
pub mod f8_ablations;
pub mod f9_error_targets;
pub mod t1_workloads;
pub mod t6_summary;
