//! R-F7 — processing overhead: wall-clock throughput per strategy.
//!
//! Event-time latency (R-F3) is testbed-independent; this experiment checks
//! that the disorder-control layer itself is cheap: tuples/second through
//! the full strategy + windowed-aggregation stack, per strategy, on one
//! workload. (Micro-benchmarks with criterion live in `benches/`.) Expected
//! shape: all strategies within a small factor of each other — buffering and
//! adaptation logic are not the bottleneck relative to aggregation.

use crate::harness::{
    delays_of, fmt_f64, make_strategy, standard_query, Artifact, ExperimentCtx, StrategySpec,
};
use quill_core::prelude::{execute, ExecOptions};
use quill_metrics::Table;

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) -> Vec<Artifact> {
    let stream = quill_gen::workload::synthetic::exponential(ctx.events, 10, 100.0, ctx.seed);
    let query = standard_query("synthetic-exp");
    let delays = delays_of(&stream.events);

    let specs = [
        ("drop", StrategySpec::Drop),
        ("fixed(p95)", StrategySpec::FixedQuantile(0.95)),
        ("mp", StrategySpec::Mp),
        ("aq(0.95)", StrategySpec::Aq(0.95)),
        ("oracle", StrategySpec::Oracle),
    ];
    let mut table = Table::new(
        "R-F7: wall-clock throughput through strategy + window aggregation",
        ["strategy", "events", "wall ms", "kevents/s", "results"],
    );
    for (label, spec) in specs {
        let mut s = make_strategy(&spec, &delays);
        let out = execute(
            &stream.events,
            s.as_mut(),
            &query,
            &ExecOptions::sequential(),
        )
        .expect("valid query");
        table.push_row([
            label.to_string(),
            out.events.to_string(),
            fmt_f64(out.wall_micros as f64 / 1000.0),
            fmt_f64(out.throughput() / 1000.0),
            out.results.len().to_string(),
        ]);
    }
    vec![Artifact::Table {
        id: "f7_throughput".into(),
        table,
    }]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_strategies_process_the_full_stream() {
        let ctx = ExperimentCtx::quick();
        let arts = run(&ctx);
        let table = match &arts[0] {
            Artifact::Table { table, .. } => table,
            _ => panic!("expected table"),
        };
        assert_eq!(table.rows.len(), 5);
        for r in &table.rows {
            assert_eq!(r[1], ctx.events.to_string());
            let tput: f64 = r[3].parse().expect("throughput parses");
            assert!(tput > 0.0, "{}: zero throughput", r[0]);
        }
    }
}
