//! R-F3 — the headline: result latency vs. quality target, AQ vs. baselines.
//!
//! For each workload and each completeness target `q`, AQ-K-slack should
//! (a) achieve ≈ `q`, (b) at mean latency close to the offline-calibrated
//! fixed-K baseline `Fixed(F⁻¹(q))` — which needs hindsight AQ doesn't have —
//! and (c) far below MP-K-slack, whose latency tracks the *maximum* delay.
//! The AQ-vs-MP gap grows with tail weight.

use crate::harness::{
    delays_of, fmt_f64, make_strategy, standard_benches, Artifact, ExperimentCtx, StrategySpec,
};
use quill_core::prelude::*;
use quill_metrics::Table;

/// Quality targets swept.
pub const TARGETS: &[f64] = &[0.90, 0.95, 0.99, 0.999];

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) -> Vec<Artifact> {
    let mut table = Table::new(
        "R-F3: mean latency vs. completeness target (AQ vs. calibrated-fixed vs. MP)",
        [
            "workload",
            "target q",
            "aq latency",
            "aq compl %",
            "fixed* latency",
            "fixed* compl %",
            "mp latency",
            "mp compl %",
        ],
    );
    for b in standard_benches(ctx) {
        let delays = delays_of(&b.stream.events);
        // MP is target-independent: run once per workload.
        let mut mp = make_strategy(&StrategySpec::Mp, &delays);
        let mp_out = execute(
            &b.stream.events,
            mp.as_mut(),
            &b.query,
            &ExecOptions::sequential(),
        )
        .expect("valid query");
        for &q in TARGETS {
            let mut aq = make_strategy(&StrategySpec::Aq(q), &delays);
            let aq_out = execute(
                &b.stream.events,
                aq.as_mut(),
                &b.query,
                &ExecOptions::sequential(),
            )
            .expect("valid query");
            let mut fx = make_strategy(&StrategySpec::FixedQuantile(q), &delays);
            let fx_out = execute(
                &b.stream.events,
                fx.as_mut(),
                &b.query,
                &ExecOptions::sequential(),
            )
            .expect("valid query");
            table.push_row([
                b.name.to_string(),
                fmt_f64(q),
                fmt_f64(aq_out.latency.mean),
                fmt_f64(aq_out.quality.mean_completeness * 100.0),
                fmt_f64(fx_out.latency.mean),
                fmt_f64(fx_out.quality.mean_completeness * 100.0),
                fmt_f64(mp_out.latency.mean),
                fmt_f64(mp_out.quality.mean_completeness * 100.0),
            ]);
        }
    }
    vec![Artifact::Table {
        id: "f3_latency_vs_quality".into(),
        table,
    }]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aq_tracks_targets_below_mp_latency() {
        let ctx = ExperimentCtx::quick();
        let arts = run(&ctx);
        let table = match &arts[0] {
            Artifact::Table { table, .. } => table,
            _ => panic!("expected table"),
        };
        let col = |r: &Vec<String>, i: usize| r[i].parse::<f64>().expect("numeric cell");
        // On the synthetic workloads (steady-state, large sample), AQ must
        // reach within a few points of its target and beat MP's latency for
        // moderate targets.
        for r in table.rows.iter().filter(|r| r[0].starts_with("synthetic")) {
            let q = col(r, 1);
            let (aq_lat, aq_q) = (col(r, 2), col(r, 3));
            let mp_lat = col(r, 6);
            assert!(
                aq_q >= q * 100.0 - 6.0,
                "{}: AQ compl {aq_q} far below target {q}",
                r[0]
            );
            if q <= 0.95 {
                assert!(
                    aq_lat < mp_lat,
                    "{} q={q}: AQ latency {aq_lat} not below MP {mp_lat}",
                    r[0]
                );
            }
        }
        // Latency grows with the target for AQ (within a workload).
        let synth: Vec<_> = table
            .rows
            .iter()
            .filter(|r| r[0] == "synthetic-exp")
            .collect();
        assert!(col(synth.last().expect("rows"), 2) > col(synth[0], 2));
    }
}
