//! Human-readable rendering of flight-recorder traces, violation
//! post-mortems and static plan diagnostics — the library behind the
//! `quill-inspect` binary.
//!
//! Three input shapes are accepted (all JSON-lines):
//!
//! * a **flat trace** — [`TraceEvent`] lines as written by
//!   `write_trace_jsonl` (e.g. the `f4_trace` artifact);
//! * a **post-mortem file** — alternating [`ProvenanceRecord`] headers and
//!   their causal slices, as written by `write_post_mortems_jsonl` (e.g.
//!   the `f5_postmortems` artifact);
//! * a **plan-diagnostics file** — [`PlanDiagnostic`] lines as written by
//!   `Diagnostic::to_jsonl_line` (the pre-execution static analysis).
//!
//! [`render_report`] sniffs the shape from the first line and renders a
//! report with a summary, the controller decision log, the top-K latest
//! tuples, and (for post-mortem files) one annotated timeline per violated
//! window.

use quill_core::plan::{parse_plan_jsonl, Diagnostic as PlanDiagnostic, Severity};
use quill_telemetry::span::{self, attribute, Span, NO_QUERY};
use quill_telemetry::trace::{
    parse_post_mortems, parse_trace_line, PostMortem, ProvenanceRecord, TraceEvent, TraceKind,
    TraceLine, MERGE_SHARD,
};
use quill_telemetry::Stage;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Render a trace or post-mortem JSONL document as a human-readable report.
/// `top_k` bounds the "latest tuples" leaderboard.
///
/// # Errors
/// Returns a message naming the first malformed line.
pub fn render_report(text: &str, top_k: usize) -> Result<String, String> {
    let first = text.lines().find(|l| !l.trim().is_empty());
    let Some(first) = first else {
        return Ok("(empty trace)\n".into());
    };
    if first.contains("\"rule\":") {
        let diags = parse_plan_jsonl(text)?;
        return Ok(render_plan_diagnostics(&diags));
    }
    let first_no = 1 + text.lines().position(|l| !l.trim().is_empty()).unwrap_or(0);
    match parse_trace_line(first).map_err(|e| format!("line {first_no}: {e}"))? {
        TraceLine::Provenance(_) => {
            let pms = parse_post_mortems(text)?;
            Ok(render_post_mortems(&pms, top_k))
        }
        TraceLine::Event(_) => {
            let mut events = Vec::new();
            for (i, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                match parse_trace_line(line).map_err(|e| format!("line {}: {e}", i + 1))? {
                    TraceLine::Event(ev) => events.push(ev),
                    TraceLine::Provenance(_) => {
                        return Err(format!(
                            "line {}: provenance record inside a flat trace",
                            i + 1
                        ))
                    }
                }
            }
            Ok(render_flat_trace(&events, top_k))
        }
    }
}

/// Report over a flat event trace: summary, controller log, late leaders.
fn render_flat_trace(events: &[TraceEvent], top_k: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Flight-recorder trace ==");
    render_summary(&mut out, events);
    render_controller_log(&mut out, events);
    render_late_leaders(&mut out, events, top_k);
    out
}

/// Report over post-mortems: global sections over the union of slices, then
/// one timeline per violation.
fn render_post_mortems(pms: &[PostMortem], top_k: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Quality-violation post-mortem ==");
    let _ = writeln!(out, "violations: {}", pms.len());
    // Union of causal slices, deduplicated by sequence number so shared
    // controller decisions are reported once.
    let mut by_seq: BTreeMap<u64, &TraceEvent> = BTreeMap::new();
    for pm in pms {
        for ev in &pm.slice {
            by_seq.insert(ev.seq, ev);
        }
    }
    let union: Vec<TraceEvent> = by_seq.into_values().cloned().collect();
    render_summary(&mut out, &union);
    render_controller_log(&mut out, &union);
    render_late_leaders(&mut out, &union, top_k);
    for pm in pms {
        render_violation_timeline(&mut out, pm);
    }
    out
}

/// Report over static plan diagnostics, grouped by severity (deny first) —
/// also usable directly on `RunOutput::plan` / `SharedRunOutput::plan`.
pub fn render_plan_diagnostics(diags: &[PlanDiagnostic]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Plan diagnostics ==");
    if diags.is_empty() {
        let _ = writeln!(out, "plan is clean: no findings");
        return out;
    }
    let count = |s: Severity| diags.iter().filter(|d| d.severity == s).count();
    let _ = writeln!(
        out,
        "findings: {} ({} deny, {} warn, {} advice)",
        diags.len(),
        count(Severity::Deny),
        count(Severity::Warn),
        count(Severity::Advice),
    );
    for severity in [Severity::Deny, Severity::Warn, Severity::Advice] {
        let group: Vec<&PlanDiagnostic> = diags.iter().filter(|d| d.severity == severity).collect();
        if group.is_empty() {
            continue;
        }
        let _ = writeln!(out, "\n-- {severity} --");
        for d in group {
            let _ = writeln!(out, "[{}] {}", d.rule, d.message);
            let _ = writeln!(out, "    help: {}", d.help);
        }
    }
    out
}

/// Render a span timeline report from either shape the span layer
/// exports: span JSON-lines (`write_spans_jsonl`) or a Chrome-trace JSON
/// object (`GET /trace`, `to_chrome_trace`). The shape is sniffed from the
/// first non-empty line.
///
/// # Errors
/// Returns a message naming the first malformed line.
pub fn render_timeline(text: &str) -> Result<String, String> {
    let Some(first) = text.lines().find(|l| !l.trim().is_empty()) else {
        return Ok("(no spans)\n".into());
    };
    if first.contains("\"traceEvents\"") || text.trim_start().starts_with("{\"displayTimeUnit\"") {
        return render_chrome_timeline(text);
    }
    let mut spans = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        spans.push(Span::parse_json_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(render_span_timeline(&spans))
}

/// Validate a Chrome-trace JSON document structurally (the `--check` mode
/// behind the serve smoke test): it must parse, and every complete event
/// must carry the timeline fields Perfetto needs.
///
/// # Errors
/// A message locating the structural problem.
pub fn check_chrome_trace(text: &str) -> Result<String, String> {
    let trace = span::parse_chrome_trace(text)?;
    let mut pids = std::collections::BTreeSet::new();
    let mut complete = 0usize;
    for (i, ev) in trace.events.iter().enumerate() {
        if ev.ph != "X" {
            continue;
        }
        complete += 1;
        for (field, present) in [("ts", ev.ts.is_some()), ("dur", ev.dur.is_some())] {
            if !present {
                return Err(format!("traceEvents[{i}] ({}) lacks `{field}`", ev.name));
            }
        }
        pids.insert(ev.pid.unwrap_or(0));
    }
    Ok(format!(
        "trace ok: {} events ({complete} spans) across {} process lane(s)\n",
        trace.events.len(),
        pids.len()
    ))
}

/// Attribution report over raw spans: per-stage totals, per-query delivery
/// latency, and the longest individual spans.
fn render_span_timeline(spans: &[Span]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Pipeline span timeline ==");
    if spans.is_empty() {
        let _ = writeln!(out, "(no spans)");
        return out;
    }
    let lo = spans.iter().map(|s| s.begin).min().unwrap_or(0);
    let hi = spans.iter().map(|s| s.end).max().unwrap_or(0);
    let _ = writeln!(out, "spans: {}  clock extent: [{lo}, {hi}]", spans.len());

    let _ = writeln!(out, "\n-- Stage attribution --");
    for a in attribute(spans) {
        let mean = a.total as f64 / a.count as f64;
        let _ = writeln!(
            out,
            "{:<16} count={:<8} total={:<12} mean={mean:<10.1} max={}",
            a.stage.as_str(),
            a.count,
            a.total,
            a.max
        );
    }

    let mut per_query: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for s in spans {
        if s.stage == Stage::Deliver && s.query != NO_QUERY {
            let e = per_query.entry(s.query).or_default();
            e.0 += 1;
            e.1 += s.duration();
        }
    }
    if !per_query.is_empty() {
        let _ = writeln!(out, "\n-- Delivery latency by query --");
        for (q, (n, total)) in &per_query {
            let _ = writeln!(
                out,
                "query {q}: {n} results, mean latency {:.1}",
                *total as f64 / *n as f64
            );
        }
    }

    let _ = writeln!(out, "\n-- Longest spans --");
    let mut longest: Vec<&Span> = spans.iter().collect();
    longest.sort_by_key(|s| (std::cmp::Reverse(s.duration()), s.seq));
    for s in longest.into_iter().take(5) {
        let _ = writeln!(
            out,
            "{:<16} [{}, {}] dur={} shard={} seq={}",
            s.stage.as_str(),
            s.begin,
            s.end,
            s.duration(),
            shard_name(s.shard),
            s.seq
        );
    }
    out
}

/// Attribution report over an exported Chrome trace: per-process,
/// per-stage lane totals.
fn render_chrome_timeline(text: &str) -> Result<String, String> {
    let trace = span::parse_chrome_trace(text)?;
    let mut out = String::new();
    let _ = writeln!(out, "== Chrome-trace timeline ==");
    let complete: Vec<_> = trace.complete_events().collect();
    let _ = writeln!(
        out,
        "events: {} ({} spans)",
        trace.events.len(),
        complete.len()
    );
    // (pid, stage) -> (count, total dur, max dur)
    let mut lanes: BTreeMap<(u64, &str), (u64, u64, u64)> = BTreeMap::new();
    for ev in &complete {
        let slot = lanes
            .entry((ev.pid.unwrap_or(0), ev.name.as_str()))
            .or_default();
        slot.0 += 1;
        let dur = ev.dur.unwrap_or(0);
        slot.1 += dur;
        slot.2 = slot.2.max(dur);
    }
    let mut last_pid = None;
    for ((pid, stage), (n, total, max)) in &lanes {
        if last_pid != Some(*pid) {
            let _ = writeln!(out, "\n-- process {pid} --");
            last_pid = Some(*pid);
        }
        let _ = writeln!(
            out,
            "{stage:<16} count={n:<8} total={total:<12} mean={:<10.1} max={max}",
            *total as f64 / (*n).max(1) as f64
        );
    }
    Ok(out)
}

/// Resolve the `line N` reference in a parse-error message to the
/// offending record, so CLI callers can echo it (file, line *and* record).
pub fn locate_error<'a>(text: &'a str, err: &str) -> Option<(usize, &'a str)> {
    let at = err.find("line ")?;
    let rest = &err[at + "line ".len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    let n: usize = digits.parse().ok()?;
    Some((n, text.lines().nth(n.checked_sub(1)?)?))
}

fn render_summary(out: &mut String, events: &[TraceEvent]) {
    let _ = writeln!(out, "\n-- Summary --");
    if events.is_empty() {
        let _ = writeln!(out, "no trace events");
        return;
    }
    let mut kinds: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut shards: BTreeMap<u32, u64> = BTreeMap::new();
    for ev in events {
        *kinds.entry(ev.kind.label()).or_default() += 1;
        *shards.entry(ev.shard).or_default() += 1;
    }
    let _ = writeln!(
        out,
        "events: {}  (seq {}..={})",
        events.len(),
        events.first().map_or(0, |e| e.seq),
        events.last().map_or(0, |e| e.seq),
    );
    for (kind, n) in &kinds {
        let _ = writeln!(out, "  {kind:<16} {n}");
    }
    let shard_list: Vec<String> = shards
        .iter()
        .map(|(s, n)| {
            if *s == MERGE_SHARD {
                format!("merge:{n}")
            } else {
                format!("{s}:{n}")
            }
        })
        .collect();
    let _ = writeln!(out, "shards (id:events): {}", shard_list.join(" "));
}

fn render_controller_log(out: &mut String, events: &[TraceEvent]) {
    let _ = writeln!(out, "\n-- Controller decision log --");
    let mut any = false;
    for ev in events {
        if let TraceKind::KChange {
            old_k,
            new_k,
            reason,
        } = &ev.kind
        {
            any = true;
            let _ = writeln!(
                out,
                "seq={:<6} t={:<10} shard={:<3} K {} -> {}  ({reason})",
                ev.seq,
                ev.at,
                shard_name(ev.shard),
                fmt_k(*old_k),
                fmt_k(*new_k),
            );
        }
    }
    if !any {
        let _ = writeln!(out, "(no K changes recorded)");
    }
}

fn render_late_leaders(out: &mut String, events: &[TraceEvent], top_k: usize) {
    let _ = writeln!(out, "\n-- Top {top_k} latest tuples --");
    let mut lates: Vec<(&TraceEvent, u64, u64)> = events
        .iter()
        .filter_map(|ev| match ev.kind {
            TraceKind::LateArrival {
                lateness,
                watermark,
            } => Some((ev, lateness, watermark)),
            _ => None,
        })
        .collect();
    if lates.is_empty() {
        let _ = writeln!(out, "(no late arrivals recorded)");
        return;
    }
    // Worst first; ties broken by arrival order for determinism.
    lates.sort_by_key(|&(ev, lateness, _)| (std::cmp::Reverse(lateness), ev.seq));
    for (ev, lateness, watermark) in lates.into_iter().take(top_k) {
        let _ = writeln!(
            out,
            "t={:<10} lateness={:<8} behind watermark {} (seq={}, shard={})",
            ev.at,
            lateness,
            watermark,
            ev.seq,
            shard_name(ev.shard),
        );
    }
}

fn render_violation_timeline(out: &mut String, pm: &PostMortem) {
    let r = &pm.record;
    let _ = writeln!(
        out,
        "\n-- Violation: window [{}, {}) key={} --",
        r.start, r.end, r.key
    );
    let _ = writeln!(
        out,
        "completeness: achieved {:.4}{}",
        r.achieved_completeness,
        r.required_completeness
            .map_or(String::new(), |q| format!(" (required {q:.4})")),
    );
    let _ = writeln!(
        out,
        "tuples: {} contributed, {} arrived late, {} dropped (lateness p50={} max={})",
        r.contributing, r.late_arrivals, r.dropped, r.lateness_p50, r.lateness_max
    );
    match (r.k_at_finalize, r.k_decision_reason) {
        (Some(k), Some(reason)) => {
            let _ = writeln!(
                out,
                "K in force: {} (set by `{reason}` decision seq={})",
                fmt_k(k),
                r.k_decision_seq.unwrap_or(0),
            );
        }
        _ => {
            let _ = writeln!(out, "K in force: unknown (no K decision recorded)");
        }
    }
    let _ = writeln!(out, "timeline:");
    for ev in &pm.slice {
        let _ = writeln!(out, "  {}", describe_event(ev, r));
    }
}

/// One-line story for a trace event, annotated against the violated window.
fn describe_event(ev: &TraceEvent, r: &ProvenanceRecord) -> String {
    let head = format!("seq={:<6} t={:<10}", ev.seq, ev.at);
    match &ev.kind {
        TraceKind::LateArrival {
            lateness,
            watermark,
        } => format!(
            "{head} late arrival: {lateness} behind watermark {watermark} (shard {})",
            shard_name(ev.shard)
        ),
        TraceKind::BufferEmit {
            released,
            watermark,
        } => format!("{head} buffer released {released} events, watermark -> {watermark}"),
        TraceKind::KChange {
            old_k,
            new_k,
            reason,
        } => format!("{head} K {} -> {} ({reason})", fmt_k(*old_k), fmt_k(*new_k)),
        TraceKind::WindowFinalize {
            start, end, count, ..
        } => {
            let marker = if *start == r.start && *end == r.end {
                " <- this window"
            } else {
                ""
            };
            format!("{head} window [{start}, {end}) finalized with {count} tuples{marker}")
        }
        TraceKind::LateDrop { event_seq, windows } => {
            let hit = windows.contains(&(r.start, r.end));
            let marker = if hit { " <- lost from this window" } else { "" };
            format!(
                "{head} event #{event_seq} dropped, missed {} window(s){marker}",
                windows.len()
            )
        }
        TraceKind::SendStall { depth } => format!(
            "{head} shard {} channel full ({depth} batches in flight)",
            shard_name(ev.shard)
        ),
        TraceKind::MergeProgress { elements, fallback } => format!(
            "{head} merged {elements} elements{}",
            if *fallback { " (fallback sort)" } else { "" }
        ),
    }
}

fn shard_name(shard: u32) -> String {
    if shard == MERGE_SHARD {
        "merge".into()
    } else {
        shard.to_string()
    }
}

/// `u64::MAX` is the oracle's "buffer everything" sentinel.
fn fmt_k(k: u64) -> String {
    if k == u64::MAX {
        "inf".into()
    } else {
        k.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quill_telemetry::trace::{
        post_mortems_to_lines, FlightRecorder, KChangeReason, ProvenanceBuilder,
    };

    /// A small deterministic ring with one violated window [100, 200).
    fn violation_trace() -> FlightRecorder {
        let rec = FlightRecorder::new(128);
        rec.record(
            0,
            0,
            TraceKind::KChange {
                old_k: 0,
                new_k: 0,
                reason: KChangeReason::Initial,
            },
        );
        rec.record(
            95,
            0,
            TraceKind::KChange {
                old_k: 0,
                new_k: 95,
                reason: KChangeReason::Ratchet,
            },
        );
        rec.record(
            150,
            0,
            TraceKind::LateArrival {
                lateness: 145,
                watermark: 295,
            },
        );
        rec.record(
            150,
            0,
            TraceKind::LateDrop {
                event_seq: 21,
                windows: vec![(100, 200)],
            },
        );
        rec.record(
            200,
            0,
            TraceKind::WindowFinalize {
                start: 100,
                end: 200,
                key: "null".into(),
                count: 10,
            },
        );
        rec
    }

    fn postmortem_text() -> String {
        let builder = ProvenanceBuilder::new(violation_trace().events());
        let rec = builder.record_for(100, 200, "null", 10.0 / 11.0, Some(0.97));
        assert!(rec.violated);
        let pm = builder.post_mortem(&rec);
        let mut text = post_mortems_to_lines(&[pm]).join("\n");
        text.push('\n');
        text
    }

    #[test]
    fn renders_post_mortem_with_timeline_and_decision_log() {
        let report = render_report(&postmortem_text(), 5).expect("renders");
        assert!(report.contains("Quality-violation post-mortem"));
        assert!(report.contains("violations: 1"));
        assert!(report.contains("window [100, 200) key=null"));
        assert!(report.contains("required 0.97"));
        assert!(report.contains("K 0 -> 95  (ratchet)"));
        assert!(report.contains("lateness=145"));
        assert!(report.contains("<- lost from this window"));
        assert!(report.contains("<- this window"));
    }

    #[test]
    fn renders_flat_trace_with_summary() {
        let lines: Vec<String> = violation_trace()
            .events()
            .iter()
            .map(|e| e.to_json_line())
            .collect();
        let report = render_report(&lines.join("\n"), 3).expect("renders");
        assert!(report.contains("Flight-recorder trace"));
        assert!(report.contains("k_change"));
        assert!(report.contains("late_arrival"));
        assert!(report.contains("Top 3 latest tuples"));
        assert!(report.contains("K 0 -> 95"));
    }

    #[test]
    fn empty_input_and_malformed_lines_are_handled() {
        assert_eq!(render_report("", 5).unwrap(), "(empty trace)\n");
        assert_eq!(render_report("\n  \n", 5).unwrap(), "(empty trace)\n");
        let err = render_report("{\"bogus\":true}", 5).unwrap_err();
        assert!(!err.is_empty());
        // A valid first line followed by garbage names the offending line.
        let mut text = violation_trace().events()[0].to_json_line();
        text.push_str("\nnot json\n");
        let err = render_report(&text, 5).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn renders_plan_diagnostics_grouped_by_severity() {
        use quill_core::plan::{analyze_plan, DelayProfile, StrategyKind};
        use quill_core::prelude::{
            AggregateKind, AggregateSpec, ExecOptions, QuerySpec, WindowSpec,
        };
        let query = QuerySpec::new(
            WindowSpec::sliding(100u64, 30u64),
            vec![AggregateSpec::new(AggregateKind::Median, 0, "m")],
            None,
        );
        let opts = ExecOptions::sequential()
            .with_delay_profile(DelayProfile::Unbounded)
            .with_required_completeness(1.0);
        let diags = analyze_plan(&query, &StrategyKind::DropAll, &opts);
        let text: String = diags.iter().map(|d| d.to_jsonl_line() + "\n").collect();
        let report = render_report(&text, 5).expect("renders");
        assert!(report.contains("Plan diagnostics"));
        assert!(report.contains("-- deny --"));
        assert!(report.contains("plan.quality.infeasible"));
        assert!(report.contains("-- warn --"));
        assert!(report.contains("help:"));
        assert!(render_plan_diagnostics(&[]).contains("plan is clean"));
    }

    #[test]
    fn timeline_renders_span_jsonl_and_chrome_traces() {
        use quill_telemetry::{ClockDomain, SpanRecorder};
        let rec = SpanRecorder::new(64);
        rec.record(Stage::Route, 0, 100, 0);
        rec.record(Stage::ShardStage, 10, 90, 1);
        rec.record_for_query(Stage::Deliver, 100, 150, 0, 7);
        let spans = rec.spans();
        let jsonl: String = spans.iter().map(|s| s.to_json_line() + "\n").collect();
        let report = render_timeline(&jsonl).expect("renders span jsonl");
        assert!(report.contains("Pipeline span timeline"), "{report}");
        assert!(report.contains("route"), "{report}");
        assert!(report.contains("query 7: 1 results"), "{report}");
        assert!(report.contains("Longest spans"), "{report}");

        let chrome = span::to_chrome_trace(&spans, ClockDomain::Logical);
        let report = render_timeline(&chrome).expect("renders chrome trace");
        assert!(report.contains("Chrome-trace timeline"), "{report}");
        assert!(report.contains("deliver"), "{report}");
        let summary = check_chrome_trace(&chrome).expect("valid");
        assert!(summary.contains("3 spans"), "{summary}");

        assert_eq!(render_timeline("\n\n").unwrap(), "(no spans)\n");
    }

    #[test]
    fn timeline_errors_name_the_offending_line() {
        let rec = quill_telemetry::SpanRecorder::new(8);
        rec.record(Stage::Route, 0, 10, 0);
        let mut text = rec.spans()[0].to_json_line();
        text.push_str("\n{\"not\":\"a span\"}\n");
        let err = render_timeline(&text).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let (line, record) = locate_error(&text, &err).expect("locates");
        assert_eq!(line, 2);
        assert!(record.contains("not"), "{record}");
        assert!(check_chrome_trace("[1,2").is_err());
        assert!(locate_error("one line", "no location info").is_none());
    }

    #[test]
    fn infinite_k_renders_as_inf() {
        let rec = FlightRecorder::new(8);
        rec.record(
            0,
            0,
            TraceKind::KChange {
                old_k: 0,
                new_k: u64::MAX,
                reason: KChangeReason::Initial,
            },
        );
        let lines: Vec<String> = rec.events().iter().map(|e| e.to_json_line()).collect();
        let report = render_report(&lines.join("\n"), 1).expect("renders");
        assert!(report.contains("K 0 -> inf"));
    }
}
