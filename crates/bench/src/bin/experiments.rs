//! CLI driving the reconstructed-experiment suite.
//!
//! ```text
//! experiments [--exp all|t1|f2|f3|f4|f5|t6|f7|f8|f9]
//!             [--events N] [--seed S] [--out DIR] [--quick]
//! ```
//!
//! Each experiment prints its table(s) as markdown and writes CSVs to the
//! output directory (default `results/`). EXPERIMENTS.md records the
//! expected vs. measured shapes.

use quill_bench::{run_experiment, ExperimentCtx, ALL_EXPERIMENTS};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    exps: Vec<String>,
    ctx: ExperimentCtx,
}

fn parse_args() -> Result<Args, String> {
    let mut ctx = ExperimentCtx::full();
    ctx.out_dir = PathBuf::from("results");
    let mut exps: Vec<String> = vec!["all".into()];
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match arg.as_str() {
            "--exp" => {
                exps = value("--exp")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect()
            }
            "--events" => {
                ctx.events = value("--events")?
                    .parse()
                    .map_err(|e| format!("bad --events: {e}"))?
            }
            "--seed" => {
                ctx.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--out" => ctx.out_dir = PathBuf::from(value("--out")?),
            "--quick" => {
                let out = ctx.out_dir.clone();
                ctx = ExperimentCtx::quick();
                ctx.out_dir = out;
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--exp all|{}] [--events N] [--seed S] [--out DIR] [--quick]",
                    ALL_EXPERIMENTS.join("|")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if exps.iter().any(|e| e == "all") {
        exps = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for e in &exps {
        if !ALL_EXPERIMENTS.contains(&e.as_str()) {
            return Err(format!(
                "unknown experiment `{e}` (valid: {})",
                ALL_EXPERIMENTS.join(", ")
            ));
        }
    }
    Ok(Args { exps, ctx })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "# quill reconstructed-experiment suite\n\nevents/workload: {}, seed: {}, output: {}\n",
        args.ctx.events,
        args.ctx.seed,
        args.ctx.out_dir.display()
    );
    for id in &args.exps {
        let t0 = std::time::Instant::now();
        println!("## experiment {id}\n");
        let artifacts = run_experiment(id, &args.ctx);
        for a in &artifacts {
            match a.save_and_render(&args.ctx) {
                Ok(rendered) => println!("{rendered}"),
                Err(e) => {
                    eprintln!("error: failed to save artifact for {id}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        println!("({id} took {:.1}s)\n", t0.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}
