//! Multi-tenant soak of the `quill-serve` daemon: boot a server
//! in-process, register 1000+ concurrent queries against the one shared
//! session, stream disordered fixtures from several TCP sources (with
//! periodic mid-stream reconnects) for a fixed duration, and verify:
//!
//! * ingest-queue depth stays bounded (backpressure, not growth),
//! * no reconnect-induced event loss (pushed == sent),
//! * every query keeps emitting.
//!
//! Writes `results/SOAK_serve.json`. `--quick` shrinks the run for CI.

use quill_engine::prelude::Timestamp;
use quill_serve::client::{fixture, IngestClient};
use quill_serve::config::RetryPolicy;
use quill_serve::wire::Frame;
use quill_serve::{ServeConfig, Server, StrategySpec};
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    queries: usize,
    sources: usize,
    duration: Duration,
    queue_capacity: usize,
    out: std::path::PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        queries: 1_000,
        sources: 4,
        duration: Duration::from_secs(30),
        queue_capacity: 4_096,
        out: std::path::PathBuf::from("results/SOAK_serve.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().expect("flag needs a value");
        match flag.as_str() {
            "--quick" => {
                args.queries = 100;
                args.duration = Duration::from_secs(3);
            }
            "--queries" => args.queries = value().parse().expect("--queries"),
            "--sources" => args.sources = value().parse().expect("--sources"),
            "--seconds" => args.duration = Duration::from_secs(value().parse().expect("--seconds")),
            "--queue" => args.queue_capacity = value().parse().expect("--queue"),
            "--out" => args.out = value().into(),
            other => panic!("unknown flag `{other}`"),
        }
    }
    args
}

/// Resident set size from /proc/self/status, in kilobytes (0 if absent).
fn vm_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmRSS:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

fn main() {
    let args = parse_args();
    let config = ServeConfig {
        strategy: StrategySpec::Aq(0.95),
        queue_capacity: args.queue_capacity,
        ..ServeConfig::default()
    };
    let mut handle = Server::start(config).expect("server boots");

    // A spread of tenants: four window/aggregate shapes, rotating quality
    // targets, all sharing the one disorder-control core.
    let shapes = [
        "tumbling:1000;sum:0:total;key=1",
        "tumbling:500;count:0:n,max:0:peak",
        "sliding:2000:500;mean:0:mean",
        "tumbling:2000;min:0:lo,max:0:hi;key=1",
    ];
    let targets = [0.9, 0.95, 0.99];
    let mut ids = Vec::with_capacity(args.queries);
    for i in 0..args.queries {
        let dsl = format!(
            "{};completeness={};capacity=64",
            shapes[i % shapes.len()],
            targets[i % targets.len()]
        );
        ids.push(handle.register(&dsl).expect("query registers"));
    }
    eprintln!(
        "soak: {} queries on {}, ingest {}",
        ids.len(),
        handle.stats().queries,
        handle.ingest_addr()
    );

    // Sources stream fixture frames in a loop until told to stop, each
    // reconnecting periodically; sends are counted so loss is detectable.
    let stop = Arc::new(AtomicBool::new(false));
    let sent = Arc::new(AtomicU64::new(0));
    // Published by the sampling loop below; senders throttle when they get
    // too far ahead of the session, bounding the drain backlog that would
    // otherwise accumulate in OS socket buffers beyond the ingest queue.
    let drained = Arc::new(AtomicU64::new(0));
    const MAX_AHEAD: u64 = 100_000;
    let addr = handle.ingest_addr().to_string();
    let mut senders = Vec::new();
    for s in 0..args.sources {
        let stop = Arc::clone(&stop);
        let sent = Arc::clone(&sent);
        let drained = Arc::clone(&drained);
        let addr = addr.clone();
        senders.push(std::thread::spawn(move || {
            let frames = fixture(5_000, 1_000 + s as u64, 400, 0);
            // Fixture timestamps cover [0, 50_000); shift each pass forward
            // so the soak's event time keeps advancing.
            const SPAN: u64 = 50_000;
            let mut client = IngestClient::connect_with(&addr, s % 2 == 1, RetryPolicy::default())
                .expect("source connects");
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                while sent
                    .load(Ordering::Relaxed)
                    .saturating_sub(drained.load(Ordering::Relaxed))
                    > MAX_AHEAD
                    && !stop.load(Ordering::Relaxed)
                {
                    std::thread::sleep(Duration::from_millis(1));
                }
                // Reconnect every pass over the fixture: a soak-long churn
                // of connections with no element allowed to go missing.
                if i > 0 && i.is_multiple_of(frames.len()) {
                    client.reconnect().expect("mid-stream reconnect");
                }
                let pass = (i / frames.len()) as u64;
                let f = match &frames[i % frames.len()] {
                    Frame::Data { ts, values } => Frame::Data {
                        ts: Timestamp(ts.raw() + pass * SPAN),
                        values: values.clone(),
                    },
                    Frame::Heartbeat { ts, source } => Frame::Heartbeat {
                        ts: Timestamp(ts.raw() + pass * SPAN),
                        source: source.clone(),
                    },
                };
                match client.send(&f) {
                    Ok(()) => {
                        sent.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        client.reconnect().expect("recovery reconnect");
                        client.send(&f).expect("resend after reconnect");
                        sent.fetch_add(1, Ordering::Relaxed);
                    }
                }
                i += 1;
            }
            let _ = client.finish();
        }));
    }

    // Sample queue depth + RSS once a second for the soak duration.
    let started = Instant::now();
    let mut depth_samples: Vec<f64> = Vec::new();
    let mut conn_samples: Vec<f64> = Vec::new();
    let mut rss_samples: Vec<u64> = Vec::new();
    while started.elapsed() < args.duration {
        std::thread::sleep(Duration::from_millis(250).min(args.duration / 6));
        let snap = handle.registry().snapshot();
        depth_samples.push(snap.gauge("quill.executor.queue_depth").unwrap_or(0.0));
        conn_samples.push(snap.gauge("quill.serve.connections").unwrap_or(0.0));
        rss_samples.push(vm_rss_kb());
        drained.store(handle.stats().events, Ordering::Relaxed);
    }
    stop.store(true, Ordering::Relaxed);
    for t in senders {
        t.join().expect("source thread");
    }
    let total_sent = sent.load(Ordering::Relaxed);

    // Drain: everything sent must reach the session, then finish. The
    // deadline is progress-based — a genuinely wedged drain trips it, a
    // slow one (socket buffers ahead of a 1000-query core) does not.
    let mut last_seen = handle.stats().events;
    let mut stalled_for = Duration::ZERO;
    while handle.stats().events < total_sent {
        std::thread::sleep(Duration::from_millis(100));
        let now_events = handle.stats().events;
        if now_events == last_seen {
            stalled_for += Duration::from_millis(100);
            assert!(
                stalled_for < Duration::from_secs(15),
                "drain stalled: {now_events} of {total_sent} events"
            );
        } else {
            stalled_for = Duration::ZERO;
            last_seen = now_events;
        }
    }
    handle.finish();
    let stats = handle.stats();
    assert_eq!(stats.events, total_sent, "reconnect-induced loss");
    assert!(stats.finished, "session finished");

    let max_depth = depth_samples.iter().copied().fold(0.0f64, f64::max);
    let max_conns = conn_samples.iter().copied().fold(0.0f64, f64::max);
    // The gauge counts queued elements plus readers blocked in the
    // backpressure path (each pre-counts its in-flight element). Reconnect
    // churn keeps several lingering readers alive per source, so the bound
    // is capacity + peak concurrent connections (plus sampling slack).
    assert!(
        max_depth <= args.queue_capacity as f64 + max_conns + args.sources as f64,
        "queue depth {max_depth} not bounded by capacity {} + connections {max_conns}",
        args.queue_capacity
    );
    let emitting = ids
        .iter()
        .filter(|id| {
            let polled = handle.poll(**id).map(|r| r.len()).unwrap_or(0);
            polled > 0
        })
        .count();
    assert!(
        emitting == ids.len(),
        "only {emitting} of {} queries emitted results",
        ids.len()
    );

    let final_stats = handle.shutdown();
    let max_rss = rss_samples.iter().copied().max().unwrap_or(0);
    let json = format!(
        "{{\n  \"queries\": {},\n  \"sources\": {},\n  \"seconds\": {},\n  \"events\": {},\n  \
         \"results\": {},\n  \"queue_capacity\": {},\n  \"max_queue_depth\": {},\n  \
         \"max_connections\": {},\n  \"max_rss_kb\": {},\n  \"emitting_queries\": {}\n}}\n",
        ids.len(),
        args.sources,
        args.duration.as_secs(),
        final_stats.events,
        final_stats.results,
        args.queue_capacity,
        max_depth,
        max_conns,
        max_rss,
        emitting
    );
    if let Some(dir) = args.out.parent() {
        std::fs::create_dir_all(dir).expect("results dir");
    }
    let mut f = std::fs::File::create(&args.out).expect("results file");
    f.write_all(json.as_bytes()).expect("write results");
    println!(
        "soak ok: {} events, {} results, max depth {max_depth}, max rss {max_rss} kB -> {}",
        final_stats.events,
        final_stats.results,
        args.out.display()
    );
}
