//! Machine-readable throughput benchmark for the batched keyed-parallel
//! executor.
//!
//! ```text
//! parallel-bench [--events N] [--keys K] [--repeat R] [--out FILE] [--quick]
//! ```
//!
//! Measures events/sec on the keyed Median+Quantile workload (the ISSUE's
//! acceptance workload: sliding(200, 40), order statistics per key) for:
//!
//! * the **seed single-event path** — a faithful reproduction of the seed's
//!   `run_keyed_parallel`: one channel send per event, per-event
//!   `DefaultHasher` + key clone for routing, results funnelled one at a
//!   time through an unbounded channel, and a global `sort_by` that
//!   re-parses the row and allocates a `String` key on *every comparison*;
//! * an in-process sequential reference (one operator, one `process` call
//!   per element) for context; and
//! * the batched parallel executor across shards {1, 2, 4, 8} × batch sizes
//!   {1, 256, 1024}.
//!
//! Writes `results/BENCH_parallel.json` so the perf trajectory is
//! machine-readable PR-over-PR, and prints a human summary.

use quill_engine::aggregate::{AggregateKind, AggregateSpec};
use quill_engine::operator::{LatePolicy, Operator, WindowAggregateOp, WindowResult};
use quill_engine::parallel::{
    run_keyed_parallel_instrumented, run_keyed_parallel_observed, run_keyed_parallel_with,
    ParallelConfig,
};
use quill_engine::prelude::{Event, Row, StreamElement, Value, WindowSpec};
use quill_telemetry::trace::FlightRecorder;
use quill_telemetry::Registry;
use std::path::PathBuf;
use std::time::Instant;

fn make_op() -> WindowAggregateOp {
    WindowAggregateOp::new(
        WindowSpec::sliding(200u64, 40u64),
        vec![
            AggregateSpec::new(AggregateKind::Median, 1, "med"),
            AggregateSpec::new(AggregateKind::Quantile(0.9), 1, "q90"),
        ],
        Some(0),
        LatePolicy::Drop,
    )
    .expect("valid op")
}

fn keyed_stream(n: u64, keys: i64) -> Vec<StreamElement> {
    let mut v: Vec<StreamElement> = (0..n)
        .map(|i| {
            StreamElement::Event(Event::new(
                i,
                i,
                Row::new([Value::Int((i as i64) % keys), Value::Float((i % 97) as f64)]),
            ))
        })
        .collect();
    v.push(StreamElement::Flush);
    v
}

/// The seed's keyed-parallel executor, reproduced verbatim as the
/// acceptance baseline: per-event sends, per-event `DefaultHasher` over a
/// cloned key, an unbounded per-result funnel, and a global sort whose
/// order key (including a `String` render of the key) is recomputed on
/// every comparison.
fn seed_single_event_parallel(
    elements: Vec<StreamElement>,
    key_field: usize,
    shards: usize,
    make_op: impl Fn() -> WindowAggregateOp,
) -> Vec<StreamElement> {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn seed_shard_of(key: &Value, shards: usize) -> usize {
        let mut h = DefaultHasher::new();
        quill_engine::value::Key(key.clone()).hash(&mut h);
        (h.finish() % shards.max(1) as u64) as usize
    }
    fn order_key(el: &StreamElement) -> (u64, u64, String) {
        match el {
            StreamElement::Event(e) => {
                if let Some(r) = WindowResult::from_row(&e.row) {
                    (r.window.end.raw(), r.window.start.raw(), r.key.to_string())
                } else {
                    (e.ts.raw(), e.seq, String::new())
                }
            }
            _ => (u64::MAX, u64::MAX, String::new()),
        }
    }

    let (out_tx, out_rx) = crossbeam::channel::unbounded::<(usize, StreamElement)>();
    let mut txs = Vec::with_capacity(shards);
    let mut handles = Vec::with_capacity(shards);
    for shard in 0..shards {
        let (tx, rx) = crossbeam::channel::bounded::<StreamElement>(1024);
        let mut op = make_op();
        let out_tx = out_tx.clone();
        handles.push(std::thread::spawn(move || {
            for el in rx {
                op.process(el, &mut |o| {
                    if matches!(o, StreamElement::Event(_)) {
                        let _ = out_tx.send((shard, o));
                    }
                });
            }
        }));
        txs.push(tx);
    }
    drop(out_tx);
    for el in elements {
        match &el {
            StreamElement::Event(e) => {
                let shard = seed_shard_of(e.row.get(key_field), shards);
                txs[shard].send(el).expect("shard alive");
            }
            _ => {
                for tx in &txs {
                    tx.send(el.clone()).expect("shard alive");
                }
            }
        }
    }
    drop(txs);
    let mut out: Vec<(usize, StreamElement)> = out_rx.into_iter().collect();
    for h in handles {
        h.join().expect("shard thread");
    }
    out.sort_by(|(sa, a), (sb, b)| order_key(a).cmp(&order_key(b)).then(sa.cmp(sb)));
    out.into_iter().map(|(_, el)| el).collect()
}

/// Best-of-`repeat` wall seconds for one run of `f`.
fn time_best(repeat: usize, mut f: impl FnMut() -> usize) -> f64 {
    let mut best = f64::INFINITY;
    let mut sink = 0usize;
    for _ in 0..repeat.max(1) {
        let t = Instant::now();
        sink = sink.wrapping_add(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    assert!(sink != usize::MAX, "keep the result observable");
    best
}

struct Args {
    events: u64,
    keys: i64,
    repeat: usize,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        events: 200_000,
        keys: 64,
        repeat: 3,
        out: PathBuf::from("results/BENCH_parallel.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match arg.as_str() {
            "--events" => {
                args.events = value("--events")?
                    .parse()
                    .map_err(|e| format!("bad --events: {e}"))?
            }
            "--keys" => {
                args.keys = value("--keys")?
                    .parse()
                    .map_err(|e| format!("bad --keys: {e}"))?
            }
            "--repeat" => {
                args.repeat = value("--repeat")?
                    .parse()
                    .map_err(|e| format!("bad --repeat: {e}"))?
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--quick" => {
                args.events = 20_000;
                args.repeat = 1;
            }
            "--help" | "-h" => {
                println!(
                    "usage: parallel-bench [--events N] [--keys K] [--repeat R] [--out FILE] [--quick]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> std::process::ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let input = keyed_stream(args.events, args.keys);
    let eps = |secs: f64| args.events as f64 / secs;

    // Acceptance baseline: the seed's single-event keyed-parallel executor
    // at 4 shards.
    let seed_secs = time_best(args.repeat, || {
        seed_single_event_parallel(input.clone(), 0, 4, make_op).len()
    });
    let seed_eps = eps(seed_secs);
    println!("seed single-event path (4 shards): {seed_eps:>12.0} events/s");

    // In-process sequential reference, for context.
    let seq_secs = time_best(args.repeat, || {
        let mut op = make_op();
        let mut c = 0usize;
        for el in &input {
            op.process(el.clone(), &mut |_| c += 1);
        }
        c
    });
    let seq_eps = eps(seq_secs);
    println!("sequential in-process reference:   {seq_eps:>12.0} events/s");

    let mut rows = Vec::new();
    let mut best_4shard = 0.0f64;
    for shards in [1usize, 2, 4, 8] {
        for batch in [1usize, 256, 1024] {
            let secs = time_best(args.repeat, || {
                run_keyed_parallel_with(
                    input.clone(),
                    0,
                    ParallelConfig::new(shards).with_batch_size(batch),
                    make_op,
                )
                .expect("parallel run")
                .0
                .len()
            });
            let e = eps(secs);
            if shards == 4 {
                best_4shard = best_4shard.max(e);
            }
            println!(
                "shards={shards} batch={batch:>4}: {e:>12.0} events/s ({:>5.2}x vs seed)",
                e / seed_eps
            );
            rows.push(format!(
                "    {{\"shards\": {shards}, \"batch_size\": {batch}, \"events_per_sec\": {e:.1}, \"speedup_vs_seed\": {:.3}}}",
                e / seed_eps
            ));
        }
    }
    let speedup_4 = best_4shard / seed_eps;
    println!("best 4-shard speedup over seed single-event path: {speedup_4:.2}x");

    // Telemetry overhead: the same 4-shard batched run through the
    // instrumented entry point, once with the disabled (no-op) registry and
    // once with a live one. Disabled must stay within noise of the plain
    // path; enabled quantifies the cost of live counters.
    let telemetry_cfg = ParallelConfig::new(4).with_batch_size(1024);
    let disabled_secs = time_best(args.repeat, || {
        run_keyed_parallel_instrumented(
            input.clone(),
            0,
            telemetry_cfg,
            &Registry::disabled(),
            make_op,
        )
        .expect("parallel run")
        .0
        .len()
    });
    let enabled_secs = time_best(args.repeat, || {
        let registry = Registry::new();
        run_keyed_parallel_instrumented(input.clone(), 0, telemetry_cfg, &registry, make_op)
            .expect("parallel run")
            .0
            .len()
    });
    let disabled_eps = eps(disabled_secs);
    let enabled_eps = eps(enabled_secs);
    let enabled_overhead_pct = (disabled_eps / enabled_eps - 1.0) * 100.0;
    println!("telemetry disabled (4 shards, batch 1024): {disabled_eps:>12.0} events/s");
    println!(
        "telemetry enabled  (4 shards, batch 1024): {enabled_eps:>12.0} events/s ({enabled_overhead_pct:+.1}% overhead)"
    );

    // Flight-recorder overhead: the observed entry point with a disabled
    // recorder (the default production shape — a single branch per would-be
    // event) and with a live bounded ring. Disabled must stay within noise
    // of the instrumented path above; enabled quantifies the cost of
    // recording window finalizations, drops and merge progress.
    let trace_disabled_secs = time_best(args.repeat, || {
        let trace = FlightRecorder::disabled();
        run_keyed_parallel_observed(
            input.clone(),
            0,
            telemetry_cfg,
            &Registry::disabled(),
            &trace,
            |shard| {
                let mut op = make_op();
                op.attach_trace(&trace, shard as u32);
                op
            },
        )
        .expect("parallel run")
        .0
        .len()
    });
    let trace_enabled_secs = time_best(args.repeat, || {
        let trace = FlightRecorder::with_default_capacity();
        run_keyed_parallel_observed(
            input.clone(),
            0,
            telemetry_cfg,
            &Registry::disabled(),
            &trace,
            |shard| {
                let mut op = make_op();
                op.attach_trace(&trace, shard as u32);
                op
            },
        )
        .expect("parallel run")
        .0
        .len()
    });
    let trace_disabled_eps = eps(trace_disabled_secs);
    let trace_enabled_eps = eps(trace_enabled_secs);
    let trace_disabled_overhead_pct = (disabled_eps / trace_disabled_eps - 1.0) * 100.0;
    let trace_enabled_overhead_pct = (trace_disabled_eps / trace_enabled_eps - 1.0) * 100.0;
    println!(
        "recorder disabled  (4 shards, batch 1024): {trace_disabled_eps:>12.0} events/s ({trace_disabled_overhead_pct:+.1}% vs instrumented)"
    );
    println!(
        "recorder enabled   (4 shards, batch 1024): {trace_enabled_eps:>12.0} events/s ({trace_enabled_overhead_pct:+.1}% overhead)"
    );

    // Record one instrumented run's final snapshot next to the numbers so
    // the executor counters are inspectable PR-over-PR.
    let registry = Registry::new();
    let (snap_out, _) =
        run_keyed_parallel_instrumented(input.clone(), 0, telemetry_cfg, &registry, make_op)
            .expect("parallel run");
    drop(snap_out);
    let snapshot = registry.snapshot();
    let snapshot_path = args.out.with_file_name("BENCH_parallel_telemetry.jsonl");
    if let Err(e) = quill_telemetry::reporter::write_jsonl(&snapshot_path, &[snapshot]) {
        eprintln!("error writing {}: {e}", snapshot_path.display());
        return std::process::ExitCode::FAILURE;
    }
    println!("wrote {}", snapshot_path.display());

    let json = format!(
        "{{\n  \"bench\": \"keyed_parallel_batched\",\n  \"workload\": {{\"events\": {}, \"keys\": {}, \"window\": \"sliding(200,40)\", \"aggregates\": [\"median\", \"q0.9\"], \"repeat\": {}}},\n  \"seed_single_event_4shard\": {{\"events_per_sec\": {seed_eps:.1}}},\n  \"sequential_inprocess\": {{\"events_per_sec\": {seq_eps:.1}}},\n  \"parallel\": [\n{}\n  ],\n  \"speedup_4shard_vs_seed\": {speedup_4:.3},\n  \"telemetry\": {{\"disabled_events_per_sec\": {disabled_eps:.1}, \"enabled_events_per_sec\": {enabled_eps:.1}, \"enabled_overhead_pct\": {enabled_overhead_pct:.2}}},\n  \"flight_recorder\": {{\"disabled_events_per_sec\": {trace_disabled_eps:.1}, \"enabled_events_per_sec\": {trace_enabled_eps:.1}, \"disabled_overhead_pct\": {trace_disabled_overhead_pct:.2}, \"enabled_overhead_pct\": {trace_enabled_overhead_pct:.2}}}\n}}\n",
        args.events,
        args.keys,
        args.repeat,
        rows.join(",\n"),
    );
    if let Some(dir) = args.out.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error creating {}: {e}", dir.display());
            return std::process::ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::write(&args.out, json) {
        eprintln!("error writing {}: {e}", args.out.display());
        return std::process::ExitCode::FAILURE;
    }
    println!("wrote {}", args.out.display());
    std::process::ExitCode::SUCCESS
}
