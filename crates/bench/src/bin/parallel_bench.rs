//! Machine-readable throughput benchmark for the batched keyed-parallel
//! executor.
//!
//! ```text
//! parallel-bench [--events N] [--keys K] [--repeat R] [--out FILE] [--quick]
//! ```
//!
//! Measures events/sec on the keyed Median+Quantile workload (the ISSUE's
//! acceptance workload: sliding(200, 40), order statistics per key) for:
//!
//! * the **seed single-event path** — a faithful reproduction of the seed's
//!   `run_keyed_parallel`: one channel send per event, per-event
//!   `DefaultHasher` + key clone for routing, results funnelled one at a
//!   time through an unbounded channel, and a global `sort_by` that
//!   re-parses the row and allocates a `String` key on *every comparison*;
//! * an in-process sequential reference (one operator, one `process` call
//!   per element) for context;
//! * the batched parallel executor across shards {1, 2, 4, 8} × batch sizes
//!   {1, 256, 1024} — `shards=1` exercises the single-shard bypass (no
//!   channels or threads), including the former `shards=1, batch=1`
//!   pathology; and
//! * an end-to-end `execute()` pair on a disordered stream: shard-local
//!   window finalization (the default) against legacy global staging; and
//! * a window-state backend comparison — legacy pane/stage state vs the
//!   FiBA finger-tree state — on an in-order fold, straggler streams of
//!   increasing depth, and an end-to-end AQ-K-slack run.
//!
//! Every timed section reports **min / median / max events/sec across
//! `--repeat` runs** (input cloning happens outside the timed region), and
//! the JSON records `host.cpus_online` so scaling numbers are interpreted
//! against the parallelism actually available: on a single-core host all
//! shard counts compete for one CPU and wall-clock speedup from sharding is
//! not expected.
//!
//! Writes `results/BENCH_parallel.json` so the perf trajectory is
//! machine-readable PR-over-PR, and prints a human summary.

use quill_core::prelude::{
    execute, AggregateKind as CoreAggregateKind, AqKSlack, DisorderControl, Event as CoreEvent,
    ExecOptions, FixedKSlack, QuerySpec, Row as CoreRow, Value as CoreValue,
    WindowSpec as CoreWindowSpec,
};
use quill_engine::aggregate::{AggregateKind, AggregateSpec};
use quill_engine::operator::{LatePolicy, Operator, WindowAggregateOp, WindowResult};
use quill_engine::parallel::{
    run_keyed_parallel_instrumented, run_keyed_parallel_observed, run_keyed_parallel_traced,
    run_keyed_parallel_with, ParallelConfig,
};
use quill_engine::prelude::{Event, Row, StreamElement, Timestamp, Value, WindowSpec, WindowState};
use quill_telemetry::trace::FlightRecorder;
use quill_telemetry::{span, Registry, SpanRecorder};
use std::path::PathBuf;
use std::time::Instant;

fn make_op() -> WindowAggregateOp {
    WindowAggregateOp::new(
        WindowSpec::sliding(200u64, 40u64),
        vec![
            AggregateSpec::new(AggregateKind::Median, 1, "med"),
            AggregateSpec::new(AggregateKind::Quantile(0.9), 1, "q90"),
        ],
        Some(0),
        LatePolicy::Drop,
    )
    .expect("valid op")
}

fn keyed_stream(n: u64, keys: i64) -> Vec<StreamElement> {
    let mut v: Vec<StreamElement> = (0..n)
        .map(|i| {
            StreamElement::Event(Event::new(
                i,
                i,
                Row::new([Value::Int((i as i64) % keys), Value::Float((i % 97) as f64)]),
            ))
        })
        .collect();
    v.push(StreamElement::Flush);
    v
}

/// Disordered keyed events for the end-to-end `execute()` comparison:
/// deterministic arrival jitter over a `ts = 5i` spine, sorted by arrival.
fn disordered_events(n: u64, keys: i64) -> Vec<CoreEvent> {
    let mut arrivals: Vec<(u64, u64, i64)> = (0..n)
        .map(|i| {
            (
                i * 5 + (i.wrapping_mul(7919)) % 150,
                i * 5,
                (i as i64) % keys,
            )
        })
        .collect();
    arrivals.sort_unstable();
    arrivals
        .into_iter()
        .enumerate()
        .map(|(seq, (_, ts, k))| {
            CoreEvent::new(
                ts,
                seq as u64,
                CoreRow::new([CoreValue::Int(k), CoreValue::Float((ts % 97) as f64)]),
            )
        })
        .collect()
}

/// Long-window order-statistic op for the straggler leg, driven by a
/// single hot key: window populations reach the tens of thousands, where
/// the legacy sorted-`Vec` pays a real `O(m)` shift per insert — and a
/// deeper straggler lands in an older, *fuller* window, so its shift grows
/// with depth — while FiBA's rank trees stay `O(log m)` at any depth.
fn make_straggler_op() -> WindowAggregateOp {
    WindowAggregateOp::new(
        WindowSpec::tumbling(75_000u64),
        vec![
            AggregateSpec::new(AggregateKind::Median, 1, "med"),
            AggregateSpec::new(AggregateKind::Quantile(0.9), 1, "q90"),
        ],
        Some(0),
        LatePolicy::Drop,
    )
    .expect("valid op")
}

/// Keyed stream whose spine advances in order but where every fourth event
/// is a straggler `depth` behind the clock, with a watermark every 64
/// events lagging `depth + 1` so stragglers land *inside* open windows
/// (never dropped as late) while windows still finalize progressively.
fn straggler_stream(n: u64, keys: i64, depth: u64) -> Vec<StreamElement> {
    let mut v: Vec<StreamElement> = Vec::with_capacity(n as usize + n as usize / 64 + 1);
    for i in 0..n {
        let ts = if i % 4 == 3 {
            i.saturating_sub(depth)
        } else {
            i
        };
        v.push(StreamElement::Event(Event::new(
            ts,
            i,
            Row::new([Value::Int((i as i64) % keys), Value::Float((i % 97) as f64)]),
        )));
        if i % 64 == 63 {
            v.push(StreamElement::Watermark(Timestamp(
                i.saturating_sub(depth + 1),
            )));
        }
    }
    v.push(StreamElement::Flush);
    v
}

/// The seed's keyed-parallel executor, reproduced verbatim as the
/// acceptance baseline: per-event sends, per-event `DefaultHasher` over a
/// cloned key, an unbounded per-result funnel, and a global sort whose
/// order key (including a `String` render of the key) is recomputed on
/// every comparison.
fn seed_single_event_parallel(
    elements: Vec<StreamElement>,
    key_field: usize,
    shards: usize,
    make_op: impl Fn() -> WindowAggregateOp,
) -> Vec<StreamElement> {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn seed_shard_of(key: &Value, shards: usize) -> usize {
        let mut h = DefaultHasher::new();
        quill_engine::value::Key(key.clone()).hash(&mut h);
        (h.finish() % shards.max(1) as u64) as usize
    }
    fn order_key(el: &StreamElement) -> (u64, u64, String) {
        match el {
            StreamElement::Event(e) => {
                if let Some(r) = WindowResult::from_row(&e.row) {
                    (r.window.end.raw(), r.window.start.raw(), r.key.to_string())
                } else {
                    (e.ts.raw(), e.seq, String::new())
                }
            }
            _ => (u64::MAX, u64::MAX, String::new()),
        }
    }

    let (out_tx, out_rx) = crossbeam::channel::unbounded::<(usize, StreamElement)>();
    let mut txs = Vec::with_capacity(shards);
    let mut handles = Vec::with_capacity(shards);
    for shard in 0..shards {
        let (tx, rx) = crossbeam::channel::bounded::<StreamElement>(1024);
        let mut op = make_op();
        let out_tx = out_tx.clone();
        handles.push(std::thread::spawn(move || {
            for el in rx {
                op.process(el, &mut |o| {
                    if matches!(o, StreamElement::Event(_)) {
                        let _ = out_tx.send((shard, o));
                    }
                });
            }
        }));
        txs.push(tx);
    }
    drop(out_tx);
    for el in elements {
        match &el {
            StreamElement::Event(e) => {
                let shard = seed_shard_of(e.row.get(key_field), shards);
                txs[shard].send(el).expect("shard alive");
            }
            _ => {
                for tx in &txs {
                    tx.send(el.clone()).expect("shard alive");
                }
            }
        }
    }
    drop(txs);
    let mut out: Vec<(usize, StreamElement)> = out_rx.into_iter().collect();
    for h in handles {
        h.join().expect("shard thread");
    }
    out.sort_by(|(sa, a), (sb, b)| order_key(a).cmp(&order_key(b)).then(sa.cmp(sb)));
    out.into_iter().map(|(_, el)| el).collect()
}

/// Wall seconds across `repeat` runs. `prep` runs *outside* the timed
/// region (input clones and other setup must not pollute the measurement);
/// `run` consumes its output and is what gets timed.
struct TimeStats {
    min: f64,
    median: f64,
    max: f64,
}

fn time_stats<T>(
    repeat: usize,
    mut prep: impl FnMut() -> T,
    mut run: impl FnMut(T) -> usize,
) -> TimeStats {
    let mut secs = Vec::with_capacity(repeat.max(1));
    let mut sink = 0usize;
    for _ in 0..repeat.max(1) {
        let prepared = prep();
        let t = Instant::now();
        sink = sink.wrapping_add(run(prepared));
        secs.push(t.elapsed().as_secs_f64());
    }
    assert!(sink != usize::MAX, "keep the result observable");
    secs.sort_by(f64::total_cmp);
    TimeStats {
        min: secs[0],
        median: secs[secs.len() / 2],
        max: secs[secs.len() - 1],
    }
}

/// Events/sec summary of a [`TimeStats`]: fastest run gives the max rate.
struct EpsStats {
    min: f64,
    median: f64,
    max: f64,
}

fn eps_stats(events: u64, t: &TimeStats) -> EpsStats {
    let n = events as f64;
    EpsStats {
        min: n / t.max,
        median: n / t.median,
        max: n / t.min,
    }
}

struct Args {
    events: u64,
    keys: i64,
    repeat: usize,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        events: 200_000,
        keys: 64,
        repeat: 3,
        out: PathBuf::from("results/BENCH_parallel.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match arg.as_str() {
            "--events" => {
                args.events = value("--events")?
                    .parse()
                    .map_err(|e| format!("bad --events: {e}"))?
            }
            "--keys" => {
                args.keys = value("--keys")?
                    .parse()
                    .map_err(|e| format!("bad --keys: {e}"))?
            }
            "--repeat" => {
                args.repeat = value("--repeat")?
                    .parse()
                    .map_err(|e| format!("bad --repeat: {e}"))?
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--quick" => {
                args.events = 20_000;
                args.repeat = 1;
            }
            "--help" | "-h" => {
                println!(
                    "usage: parallel-bench [--events N] [--keys K] [--repeat R] [--out FILE] [--quick]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> std::process::ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let cpus_online = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "host: {cpus_online} cpu(s) online{}",
        if cpus_online == 1 {
            " — shard counts compete for one core; no wall-clock scaling expected"
        } else {
            ""
        }
    );
    let input = keyed_stream(args.events, args.keys);
    let eps = |t: &TimeStats| eps_stats(args.events, t);

    // Acceptance baseline: the seed's single-event keyed-parallel executor
    // at 4 shards.
    let seed = eps(&time_stats(
        args.repeat,
        || input.clone(),
        |inp| seed_single_event_parallel(inp, 0, 4, make_op).len(),
    ));
    println!(
        "seed single-event path (4 shards): {:>12.0} events/s (min {:.0}, max {:.0})",
        seed.median, seed.min, seed.max
    );

    // In-process sequential reference, for context.
    let seq = eps(&time_stats(
        args.repeat,
        || input.clone(),
        |inp| {
            let mut op = make_op();
            let mut c = 0usize;
            for el in inp {
                op.process(el, &mut |_| c += 1);
            }
            c
        },
    ));
    println!(
        "sequential in-process reference:   {:>12.0} events/s (min {:.0}, max {:.0})",
        seq.median, seq.min, seq.max
    );

    let mut rows = Vec::new();
    let mut best_4shard = 0.0f64;
    let mut best_1shard = 0.0f64;
    let mut best_8shard = 0.0f64;
    for shards in [1usize, 2, 4, 8] {
        for batch in [1usize, 256, 1024] {
            let e = eps(&time_stats(
                args.repeat,
                || input.clone(),
                |inp| {
                    run_keyed_parallel_with(
                        inp,
                        0,
                        ParallelConfig::new(shards).with_batch_size(batch),
                        make_op,
                    )
                    .expect("parallel run")
                    .0
                    .len()
                },
            ));
            match shards {
                1 => best_1shard = best_1shard.max(e.median),
                4 => best_4shard = best_4shard.max(e.median),
                8 => best_8shard = best_8shard.max(e.median),
                _ => {}
            }
            println!(
                "shards={shards} batch={batch:>4}: {:>12.0} events/s (min {:.0}, max {:.0}, {:>5.2}x vs seed)",
                e.median,
                e.min,
                e.max,
                e.median / seed.median
            );
            rows.push(format!(
                "    {{\"shards\": {shards}, \"batch_size\": {batch}, \"events_per_sec\": {:.1}, \"events_per_sec_min\": {:.1}, \"events_per_sec_max\": {:.1}, \"speedup_vs_seed\": {:.3}}}",
                e.median,
                e.min,
                e.max,
                e.median / seed.median
            ));
        }
    }
    let speedup_4 = best_4shard / seed.median;
    let speedup_8v1 = best_8shard / best_1shard;
    println!("best 4-shard speedup over seed single-event path: {speedup_4:.2}x");
    println!("best 8-shard over best 1-shard: {speedup_8v1:.2}x (on {cpus_online} cpu(s))");

    // End-to-end execute() on a disordered stream: shard-local window
    // finalization (default — control-only strategy + per-shard staging)
    // against legacy global staging (one SlackBuffer re-orders everything
    // before routing). Same strategy, query and event set.
    let disordered = disordered_events(args.events, args.keys);
    let staged_query = QuerySpec::builder()
        .window(CoreWindowSpec::sliding(200u64, 40u64))
        .aggregate(CoreAggregateKind::Median, 1, "med")
        .aggregate(CoreAggregateKind::Quantile(0.9), 1, "q90")
        .key_field(0)
        .build()
        .expect("valid query spec");
    let staging_cfg = ParallelConfig::new(8).with_batch_size(256);
    let run_staged = |global: bool| {
        eps(&time_stats(
            args.repeat,
            || (),
            |()| {
                let mut strategy = FixedKSlack::new(160u64);
                execute(
                    &disordered,
                    &mut strategy,
                    &staged_query,
                    &ExecOptions::parallel(staging_cfg).with_global_staging(global),
                )
                .expect("valid query")
                .results
                .len()
            },
        ))
    };
    let shard_local = run_staged(false);
    let global_staging = run_staged(true);
    let staging_speedup = shard_local.median / global_staging.median;
    println!(
        "execute() shard-local staging (8x256): {:>12.0} events/s (min {:.0}, max {:.0})",
        shard_local.median, shard_local.min, shard_local.max
    );
    println!(
        "execute() global staging      (8x256): {:>12.0} events/s ({staging_speedup:.2}x from shard-local)",
        global_staging.median
    );

    // Window-state backends: the legacy pane/stage state against the FiBA
    // finger-tree state on the same operator, sequential in-process so the
    // comparison isolates state-maintenance cost. Three legs: an in-order
    // fold, straggler-heavy streams at increasing depths (where legacy
    // re-sorts raw window contents on every finalize that absorbed an
    // out-of-order insert, while FiBA repairs O(log n) caches), and an
    // end-to-end execute() under the adaptive AQ-K-slack strategy.
    let run_state = |state: WindowState, inp: Vec<StreamElement>, mk: fn() -> WindowAggregateOp| {
        let mut op = mk().with_window_state(state);
        let mut c = 0usize;
        for el in inp {
            op.process(el, &mut |_| c += 1);
        }
        c
    };
    let fold_legacy = eps(&time_stats(
        args.repeat,
        || input.clone(),
        |inp| run_state(WindowState::Legacy, inp, make_op),
    ));
    let fold_fiba = eps(&time_stats(
        args.repeat,
        || input.clone(),
        |inp| run_state(WindowState::Fiba, inp, make_op),
    ));
    println!(
        "window-state fold  legacy: {:>12.0} events/s | fiba: {:>12.0} events/s ({:.2}x)",
        fold_legacy.median,
        fold_fiba.median,
        fold_fiba.median / fold_legacy.median
    );
    // The straggler leg keeps its own floor on the event count: the `O(m)`
    // vs `O(log m)` contrast only shows once window populations leave the
    // memmove-friendly regime, which `--quick`'s 20k events never reach.
    let straggler_events = args.events.max(150_000);
    let seps = |t: &TimeStats| eps_stats(straggler_events, t);
    let mut straggler_rows = Vec::new();
    for depth in [10_000u64, 30_000, 60_000] {
        let stream = straggler_stream(straggler_events, 1, depth);
        let legacy = seps(&time_stats(
            args.repeat,
            || stream.clone(),
            |inp| run_state(WindowState::Legacy, inp, make_straggler_op),
        ));
        let fiba = seps(&time_stats(
            args.repeat,
            || stream.clone(),
            |inp| run_state(WindowState::Fiba, inp, make_straggler_op),
        ));
        let speedup = fiba.median / legacy.median;
        println!(
            "window-state straggler depth={depth:>3}: legacy {:>12.0} events/s | fiba {:>12.0} events/s ({speedup:.2}x)",
            legacy.median, fiba.median
        );
        straggler_rows.push(format!(
            "      {{\"depth\": {depth}, \"legacy_events_per_sec\": {:.1}, \"fiba_events_per_sec\": {:.1}, \"fiba_speedup\": {speedup:.3}}}",
            legacy.median, fiba.median
        ));
    }
    let run_aq = |state: WindowState| {
        let mut k = 0.0f64;
        let mut completeness = 0.0f64;
        let e = eps(&time_stats(
            args.repeat,
            || AqKSlack::for_completeness(0.99),
            |mut strategy| {
                let n = execute(
                    &disordered,
                    &mut strategy,
                    &staged_query,
                    &ExecOptions::parallel(staging_cfg).with_window_state(state),
                )
                .expect("valid query")
                .results
                .len();
                k = strategy.current_k().as_f64();
                completeness = strategy.aq_stats().measured_completeness;
                n
            },
        ));
        (e, k, completeness)
    };
    let (aq_legacy, aq_legacy_k, aq_legacy_completeness) = run_aq(WindowState::Legacy);
    let (aq_fiba, aq_fiba_k, aq_fiba_completeness) = run_aq(WindowState::Fiba);
    let aq_speedup = aq_fiba.median / aq_legacy.median;
    println!(
        "window-state AQ-K-slack (8x256): legacy {:>12.0} events/s (K={aq_legacy_k:.0}, compl {aq_legacy_completeness:.4}) | fiba {:>12.0} events/s (K={aq_fiba_k:.0}, compl {aq_fiba_completeness:.4}) ({aq_speedup:.2}x)",
        aq_legacy.median, aq_fiba.median
    );

    // Telemetry overhead: the same 4-shard batched run through the
    // instrumented entry point, once with the disabled (no-op) registry and
    // once with a live one. Disabled must stay within noise of the plain
    // path; enabled quantifies the cost of live counters.
    let telemetry_cfg = ParallelConfig::new(4).with_batch_size(1024);
    let disabled = eps(&time_stats(
        args.repeat,
        || input.clone(),
        |inp| {
            run_keyed_parallel_instrumented(inp, 0, telemetry_cfg, &Registry::disabled(), make_op)
                .expect("parallel run")
                .0
                .len()
        },
    ));
    let enabled = eps(&time_stats(
        args.repeat,
        || input.clone(),
        |inp| {
            let registry = Registry::new();
            run_keyed_parallel_instrumented(inp, 0, telemetry_cfg, &registry, make_op)
                .expect("parallel run")
                .0
                .len()
        },
    ));
    let enabled_overhead_pct = (disabled.median / enabled.median - 1.0) * 100.0;
    println!(
        "telemetry disabled (4 shards, batch 1024): {:>12.0} events/s",
        disabled.median
    );
    println!(
        "telemetry enabled  (4 shards, batch 1024): {:>12.0} events/s ({enabled_overhead_pct:+.1}% overhead)",
        enabled.median
    );

    // Flight-recorder overhead: the observed entry point with a disabled
    // recorder (the default production shape — a single branch per would-be
    // event) and with a live bounded ring. Disabled must stay within noise
    // of the instrumented path above; enabled quantifies the cost of
    // recording window finalizations, drops and merge progress.
    let trace_disabled = eps(&time_stats(
        args.repeat,
        || input.clone(),
        |inp| {
            let trace = FlightRecorder::disabled();
            run_keyed_parallel_observed(
                inp,
                0,
                telemetry_cfg,
                &Registry::disabled(),
                &trace,
                |shard| {
                    let mut op = make_op();
                    op.attach_trace(&trace, shard as u32);
                    op
                },
            )
            .expect("parallel run")
            .0
            .len()
        },
    ));
    let trace_enabled = eps(&time_stats(
        args.repeat,
        || input.clone(),
        |inp| {
            let trace = FlightRecorder::with_default_capacity();
            run_keyed_parallel_observed(
                inp,
                0,
                telemetry_cfg,
                &Registry::disabled(),
                &trace,
                |shard| {
                    let mut op = make_op();
                    op.attach_trace(&trace, shard as u32);
                    op
                },
            )
            .expect("parallel run")
            .0
            .len()
        },
    ));
    let trace_disabled_overhead_pct = (disabled.median / trace_disabled.median - 1.0) * 100.0;
    let trace_enabled_overhead_pct = (trace_disabled.median / trace_enabled.median - 1.0) * 100.0;
    println!(
        "recorder disabled  (4 shards, batch 1024): {:>12.0} events/s ({trace_disabled_overhead_pct:+.1}% vs instrumented)",
        trace_disabled.median
    );
    println!(
        "recorder enabled   (4 shards, batch 1024): {:>12.0} events/s ({trace_enabled_overhead_pct:+.1}% overhead)",
        trace_enabled.median
    );

    // Span-recorder overhead: the traced entry point with a disabled
    // recorder (one branch per batch/drain/finalize hook) and with a live
    // ring recording Route / WindowFinalize / Merge spans. Disabled must
    // stay within noise of the observed path above.
    let run_traced = |inp: Vec<StreamElement>, spans: &SpanRecorder| {
        run_keyed_parallel_traced(
            inp,
            0,
            telemetry_cfg,
            &Registry::disabled(),
            &FlightRecorder::disabled(),
            spans,
            |shard| {
                let mut op = make_op();
                op.attach_spans(spans, shard as u32);
                op
            },
        )
        .expect("parallel run")
        .0
        .len()
    };
    let spans_disabled = eps(&time_stats(
        args.repeat,
        || input.clone(),
        |inp| run_traced(inp, &SpanRecorder::disabled()),
    ));
    let spans_enabled = eps(&time_stats(
        args.repeat,
        || input.clone(),
        |inp| run_traced(inp, &SpanRecorder::with_default_capacity()),
    ));
    let spans_disabled_overhead_pct = (trace_disabled.median / spans_disabled.median - 1.0) * 100.0;
    let spans_enabled_overhead_pct = (spans_disabled.median / spans_enabled.median - 1.0) * 100.0;
    println!(
        "spans disabled     (4 shards, batch 1024): {:>12.0} events/s ({spans_disabled_overhead_pct:+.1}% vs observed)",
        spans_disabled.median
    );
    println!(
        "spans enabled      (4 shards, batch 1024): {:>12.0} events/s ({spans_enabled_overhead_pct:+.1}% overhead)",
        spans_enabled.median
    );

    // Export one enabled run's spans as a Chrome-trace sample next to the
    // numbers (loadable in Perfetto; CI uploads it as an artifact).
    let sample_spans = SpanRecorder::with_default_capacity();
    run_traced(input.clone(), &sample_spans);
    let trace_path = args.out.with_file_name("BENCH_parallel_trace.json");
    if let Some(dir) = trace_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let chrome = span::to_chrome_trace(&sample_spans.take(), sample_spans.domain());
    if let Err(e) = std::fs::write(&trace_path, chrome) {
        eprintln!("error writing {}: {e}", trace_path.display());
        return std::process::ExitCode::FAILURE;
    }
    println!("wrote {}", trace_path.display());

    // Record one instrumented run's final snapshot next to the numbers so
    // the executor counters are inspectable PR-over-PR.
    let registry = Registry::new();
    let (snap_out, _) =
        run_keyed_parallel_instrumented(input.clone(), 0, telemetry_cfg, &registry, make_op)
            .expect("parallel run");
    drop(snap_out);
    let snapshot = registry.snapshot();
    let snapshot_path = args.out.with_file_name("BENCH_parallel_telemetry.jsonl");
    if let Err(e) = quill_telemetry::reporter::write_jsonl(&snapshot_path, &[snapshot]) {
        eprintln!("error writing {}: {e}", snapshot_path.display());
        return std::process::ExitCode::FAILURE;
    }
    println!("wrote {}", snapshot_path.display());

    let json = format!(
        "{{\n  \"bench\": \"keyed_parallel_batched\",\n  \"host\": {{\"cpus_online\": {cpus_online}}},\n  \"workload\": {{\"events\": {}, \"keys\": {}, \"window\": \"sliding(200,40)\", \"aggregates\": [\"median\", \"q0.9\"], \"repeat\": {}}},\n  \"seed_single_event_4shard\": {{\"events_per_sec\": {:.1}}},\n  \"sequential_inprocess\": {{\"events_per_sec\": {:.1}, \"events_per_sec_min\": {:.1}, \"events_per_sec_max\": {:.1}}},\n  \"parallel\": [\n{}\n  ],\n  \"speedup_4shard_vs_seed\": {speedup_4:.3},\n  \"speedup_8shard_vs_1shard\": {speedup_8v1:.3},\n  \"staging\": {{\"shard_local_events_per_sec\": {:.1}, \"global_events_per_sec\": {:.1}, \"shard_local_speedup\": {staging_speedup:.3}}},\n  \"window_state\": {{\n    \"fold\": {{\"legacy_events_per_sec\": {:.1}, \"fiba_events_per_sec\": {:.1}, \"fiba_speedup\": {:.3}}},\n    \"straggler_workload\": {{\"window\": \"tumbling(75000)\", \"keys\": 1, \"straggler_fraction\": 0.25, \"events\": {straggler_events}}},\n    \"straggler_insert\": [\n{}\n    ],\n    \"aq_k_slack\": {{\"legacy_events_per_sec\": {:.1}, \"fiba_events_per_sec\": {:.1}, \"fiba_speedup\": {aq_speedup:.3}, \"legacy_k\": {aq_legacy_k:.1}, \"fiba_k\": {aq_fiba_k:.1}, \"legacy_completeness\": {aq_legacy_completeness:.4}, \"fiba_completeness\": {aq_fiba_completeness:.4}}}\n  }},\n  \"telemetry\": {{\"disabled_events_per_sec\": {:.1}, \"enabled_events_per_sec\": {:.1}, \"enabled_overhead_pct\": {enabled_overhead_pct:.2}}},\n  \"flight_recorder\": {{\"disabled_events_per_sec\": {:.1}, \"enabled_events_per_sec\": {:.1}, \"disabled_overhead_pct\": {trace_disabled_overhead_pct:.2}, \"enabled_overhead_pct\": {trace_enabled_overhead_pct:.2}}},\n  \"spans\": {{\"disabled_events_per_sec\": {:.1}, \"enabled_events_per_sec\": {:.1}, \"disabled_overhead_pct\": {spans_disabled_overhead_pct:.2}, \"enabled_overhead_pct\": {spans_enabled_overhead_pct:.2}}}\n}}\n",
        args.events,
        args.keys,
        args.repeat,
        seed.median,
        seq.median,
        seq.min,
        seq.max,
        rows.join(",\n"),
        shard_local.median,
        global_staging.median,
        fold_legacy.median,
        fold_fiba.median,
        fold_fiba.median / fold_legacy.median,
        straggler_rows.join(",\n"),
        aq_legacy.median,
        aq_fiba.median,
        disabled.median,
        enabled.median,
        trace_disabled.median,
        trace_enabled.median,
        spans_disabled.median,
        spans_enabled.median,
    );
    if let Some(dir) = args.out.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error creating {}: {e}", dir.display());
            return std::process::ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::write(&args.out, json) {
        eprintln!("error writing {}: {e}", args.out.display());
        return std::process::ExitCode::FAILURE;
    }
    println!("wrote {}", args.out.display());
    std::process::ExitCode::SUCCESS
}
