//! `quill-repro` — replay a simulation-harness failure reproducer.
//!
//! ```text
//! quill-repro <case.repro>
//! ```
//!
//! The input is a file written by `quill-sim` to `results/failures/` when a
//! differential check diverged from the naive oracle (see DESIGN.md §12).
//! The case is parsed, re-run through the full `check_case` battery, and the
//! process exits nonzero while the mismatch persists — so a reproducer
//! doubles as a regression gate: it fails before the fix and passes after.

use std::path::Path;
use std::process::ExitCode;

use quill_sim::harness::check_case;
use quill_sim::repro::load_case;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = match args.as_slice() {
        [p] if p != "-h" && p != "--help" => p.clone(),
        _ => {
            println!("usage: quill-repro <case.repro>");
            return if args.is_empty() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            };
        }
    };
    let case = match load_case(Path::new(&path)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("quill-repro: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "replaying seed {} / strategy {} / {} events",
        case.seed,
        case.strategy.encode(),
        case.events.len()
    );
    match check_case(&case) {
        Ok(stats) => {
            println!(
                "clean: {} executions, {} windows matched the oracle",
                stats.executions, stats.windows_checked
            );
            ExitCode::SUCCESS
        }
        Err(m) => {
            eprintln!("mismatch reproduced: {m}");
            ExitCode::FAILURE
        }
    }
}
