//! `quill-inspect` — render a flight-recorder trace or violation
//! post-mortem JSONL file as a human-readable report.
//!
//! ```text
//! quill-inspect <trace.jsonl> [--top N]
//! ```
//!
//! The input is either a flat trace (`write_trace_jsonl`, e.g.
//! `results/f4_trace.jsonl`) or a post-mortem file
//! (`write_post_mortems_jsonl`, e.g. `results/f5_postmortems.jsonl`).
//! `--top` bounds the "latest tuples" leaderboard (default 10).

use quill_bench::inspect::render_report;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut top_k: usize = 10;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--top" => {
                let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    eprintln!("--top requires a positive integer");
                    return ExitCode::FAILURE;
                };
                top_k = v;
                i += 2;
            }
            "-h" | "--help" => {
                println!("usage: quill-inspect <trace.jsonl> [--top N]");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(other.to_string());
                i += 1;
            }
            other => {
                eprintln!(
                    "unexpected argument `{other}`\nusage: quill-inspect <trace.jsonl> [--top N]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: quill-inspect <trace.jsonl> [--top N]");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    match render_report(&text, top_k) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("malformed trace `{path}`: {e}");
            ExitCode::FAILURE
        }
    }
}
