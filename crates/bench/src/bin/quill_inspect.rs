//! `quill-inspect` — render a flight-recorder trace, violation
//! post-mortem, plan-diagnostics or pipeline-span JSONL file as a
//! human-readable report.
//!
//! ```text
//! quill-inspect <trace.jsonl> [--top N]
//! quill-inspect timeline <spans.jsonl | trace.json> [--check]
//! ```
//!
//! The default mode sniffs flat traces (`write_trace_jsonl`), post-mortem
//! files (`write_post_mortems_jsonl`) and plan diagnostics. The `timeline`
//! mode renders pipeline spans — either span JSON-lines
//! (`write_spans_jsonl`) or a Chrome-trace JSON export (`GET /trace`) —
//! and with `--check` only validates the Chrome-trace structure (the smoke
//! tests gate on it).
//!
//! Malformed input is reported with the file, the offending line number
//! and the record itself, and exits with status 2 (status 1 is reserved
//! for usage/IO errors).

use quill_bench::inspect::{check_chrome_trace, locate_error, render_report, render_timeline};
use std::process::ExitCode;

const USAGE: &str = "usage: quill-inspect <trace.jsonl> [--top N]\n\
                     \x20      quill-inspect timeline <spans.jsonl | trace.json> [--check]";

/// Exit status for malformed (but readable) input.
const MALFORMED: u8 = 2;

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("cannot read `{path}`: {e}");
        ExitCode::FAILURE
    })
}

/// Report a parse failure with file, line and the offending record.
fn report_malformed(path: &str, text: &str, err: &str) -> ExitCode {
    match locate_error(text, err) {
        Some((line, record)) => {
            eprintln!("{path}:{line}: {err}");
            eprintln!("  offending record: {record}");
        }
        None => eprintln!("{path}: {err}"),
    }
    ExitCode::from(MALFORMED)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("timeline") {
        return timeline_main(&args[1..]);
    }
    let mut path: Option<String> = None;
    let mut top_k: usize = 10;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--top" => {
                let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    eprintln!("--top requires a positive integer");
                    return ExitCode::FAILURE;
                };
                top_k = v;
                i += 2;
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(other.to_string());
                i += 1;
            }
            other => {
                eprintln!("unexpected argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let text = match read(&path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    match render_report(&text, top_k) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => report_malformed(&path, &text, &e),
    }
}

fn timeline_main(args: &[String]) -> ExitCode {
    let mut path: Option<String> = None;
    let mut check = false;
    for arg in args {
        match arg.as_str() {
            "--check" => check = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let text = match read(&path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let rendered = if check {
        check_chrome_trace(&text)
    } else {
        render_timeline(&text)
    };
    match rendered {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => report_malformed(&path, &text, &e),
    }
}
