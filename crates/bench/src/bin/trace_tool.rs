//! Trace utility: generate, inspect and query quill trace files.
//!
//! ```text
//! trace-tool gen <workload> <events> <seed> <file>   # capture a workload
//! trace-tool info <file>                             # characterize a trace
//! trace-tool run <file> <window> <q>                 # AQ query over a trace
//! ```
//!
//! Workloads: soccer | stock | netmon | synthetic-exp | synthetic-pareto.

use quill_core::prelude::*;
use quill_engine::aggregate::{AggregateKind, AggregateSpec};
use quill_engine::prelude::WindowSpec;
use quill_gen::trace;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  trace-tool gen <workload> <events> <seed> <file>\n  \
         trace-tool info <file>\n  trace-tool run <file> <window> <q>"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => {
            let [_, workload, events, seed, file] = &args[..] else {
                return usage();
            };
            let (Ok(n), Ok(seed)) = (events.parse::<usize>(), seed.parse::<u64>()) else {
                return usage();
            };
            let suite = quill_gen::workload::standard_suite();
            let Some(w) = suite.iter().find(|w| w.name == workload) else {
                eprintln!(
                    "unknown workload `{workload}` (have: {})",
                    suite.iter().map(|w| w.name).collect::<Vec<_>>().join(", ")
                );
                return ExitCode::FAILURE;
            };
            let stream = (w.generate)(n, seed);
            if let Err(e) = trace::save(&stream, file) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {} events ({}) to {file}",
                stream.len(),
                stream.description
            );
            ExitCode::SUCCESS
        }
        Some("info") => {
            let [_, file] = &args[..] else { return usage() };
            let stream = match trace::load(file) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("events:         {}", stream.len());
            println!(
                "schema:         {}",
                stream
                    .schema
                    .fields()
                    .iter()
                    .map(|f| format!("{}:{}", f.name, f.ty))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            println!("time span:      {}", stream.time_span());
            println!(
                "disorder ratio: {:.2}%",
                stream.stats.disorder_ratio() * 100.0
            );
            println!("mean delay:     {:.2}", stream.stats.mean_delay());
            println!("max delay:      {}", stream.stats.max_delay);
            ExitCode::SUCCESS
        }
        Some("run") => {
            let [_, file, window, q] = &args[..] else {
                return usage();
            };
            let (Ok(window), Ok(q)) = (window.parse::<u64>(), q.parse::<f64>()) else {
                return usage();
            };
            if let Err(e) = (quill_core::quality::QualityTarget::Completeness { q }).validate() {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
            if window == 0 {
                eprintln!("error: window must be > 0");
                return ExitCode::FAILURE;
            }
            let stream = match trace::load(file) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Aggregate the first numeric field.
            let field = stream
                .schema
                .fields()
                .iter()
                .position(|f| {
                    matches!(
                        f.ty,
                        quill_engine::value::FieldType::Float | quill_engine::value::FieldType::Int
                    )
                })
                .unwrap_or(0);
            let query = QuerySpec::new(
                WindowSpec::tumbling(window),
                vec![AggregateSpec::new(AggregateKind::Mean, field, "mean")],
                None,
            );
            let mut strategy = AqKSlack::for_completeness(q);
            let out = match execute(
                &stream.events,
                &mut strategy,
                &query,
                &ExecOptions::sequential(),
            ) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "strategy {}: {} windows, completeness {:.2}%, mean latency {:.1}, p99 {:.1}, mean K {:.1}",
                out.strategy,
                out.quality.windows_total,
                out.quality.mean_completeness * 100.0,
                out.latency.mean,
                out.latency.p99,
                out.mean_k,
            );
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
