//! Shared experiment plumbing: context, artifacts, standard queries and
//! strategy factories.

use quill_core::prelude::*;
use quill_engine::aggregate::{AggregateKind, AggregateSpec};
use quill_engine::event::Event;
use quill_engine::prelude::{Row, Value, WindowSpec};
use quill_gen::source::GeneratedStream;
use quill_gen::workload::{netmon, soccer, stock};
use quill_metrics::{Table, TimeSeries};
use std::path::PathBuf;

/// Experiment-wide knobs.
#[derive(Debug, Clone)]
pub struct ExperimentCtx {
    /// Events per generated workload.
    pub events: usize,
    /// Master seed (workloads derive their own sub-seeds from it).
    pub seed: u64,
    /// Directory CSV artifacts are written to.
    pub out_dir: PathBuf,
}

impl ExperimentCtx {
    /// Full-scale defaults (used by the `experiments` binary).
    pub fn full() -> ExperimentCtx {
        ExperimentCtx {
            events: 60_000,
            seed: 42,
            out_dir: PathBuf::from("results"),
        }
    }

    /// Reduced scale for smoke tests and CI.
    pub fn quick() -> ExperimentCtx {
        ExperimentCtx {
            events: 6_000,
            seed: 42,
            out_dir: std::env::temp_dir().join("quill-results"),
        }
    }
}

/// One output of an experiment: a rendered table or a set of time series.
pub enum Artifact {
    /// A table printed as markdown and saved as `<id>.csv`.
    Table {
        /// File stem.
        id: String,
        /// The table.
        table: Table,
    },
    /// Aligned time series saved as `<id>.csv`.
    Series {
        /// File stem.
        id: String,
        /// Caption printed above the series summary.
        title: String,
        /// The series (aligned on time when saved).
        series: Vec<TimeSeries>,
    },
    /// Raw JSON-lines records saved as `<id>.jsonl` (e.g. telemetry
    /// snapshots).
    Jsonl {
        /// File stem.
        id: String,
        /// Caption printed above the summary.
        title: String,
        /// One JSON object per line.
        lines: Vec<String>,
    },
}

impl Artifact {
    /// Persist to `ctx.out_dir` and render a human-readable form.
    pub fn save_and_render(&self, ctx: &ExperimentCtx) -> std::io::Result<String> {
        std::fs::create_dir_all(&ctx.out_dir)?;
        match self {
            Artifact::Table { id, table } => {
                table.write_csv(ctx.out_dir.join(format!("{id}.csv")))?;
                Ok(table.to_markdown())
            }
            Artifact::Series { id, title, series } => {
                let refs: Vec<&TimeSeries> = series.iter().collect();
                let csv = TimeSeries::to_csv(&refs);
                std::fs::write(ctx.out_dir.join(format!("{id}.csv")), csv)?;
                let mut out = format!("### {title}\n");
                for s in series {
                    out.push_str(&format!(
                        "  series `{}`: {} points, mean {:.2}\n",
                        s.name,
                        s.len(),
                        s.mean()
                    ));
                }
                Ok(out)
            }
            Artifact::Jsonl { id, title, lines } => {
                let mut body = lines.join("\n");
                body.push('\n');
                std::fs::write(ctx.out_dir.join(format!("{id}.jsonl")), body)?;
                Ok(format!(
                    "### {title}\n  {} records -> {id}.jsonl\n",
                    lines.len()
                ))
            }
        }
    }
}

/// A workload instance paired with its standard continuous query.
pub struct Bench {
    /// Workload name.
    pub name: &'static str,
    /// The generated stream.
    pub stream: GeneratedStream,
    /// The standard query for this workload.
    pub query: QuerySpec,
}

/// The source-id field and source count of a workload, when it has natural
/// sources (used by the punctuation baseline).
pub fn source_info(name: &str) -> Option<(usize, usize)> {
    match name {
        "soccer" => Some((0, soccer::SoccerConfig::default().players)),
        "stock" => Some((stock::SYMBOL_FIELD, stock::StockConfig::default().symbols)),
        "netmon" => Some((netmon::HOST_FIELD, netmon::NetmonConfig::default().hosts)),
        _ => None,
    }
}

/// The standard query each workload is evaluated under (DESIGN.md §5).
pub fn standard_query(name: &str) -> QuerySpec {
    match name {
        "soccer" => QuerySpec::new(
            WindowSpec::sliding(5_000u64, 1_000u64),
            vec![AggregateSpec::new(
                AggregateKind::Mean,
                soccer::SPEED_FIELD,
                "mean_speed",
            )],
            Some(soccer::PLAYER_FIELD),
        ),
        "stock" => QuerySpec::new(
            WindowSpec::tumbling(2_000u64),
            vec![AggregateSpec::new(
                AggregateKind::Mean,
                stock::PRICE_FIELD,
                "mean_price",
            )],
            Some(stock::SYMBOL_FIELD),
        ),
        "netmon" => QuerySpec::new(
            WindowSpec::tumbling(1_000u64),
            vec![AggregateSpec::new(
                AggregateKind::Sum,
                netmon::BYTES_FIELD,
                "bytes",
            )],
            Some(netmon::HOST_FIELD),
        ),
        // Synthetic variants share one global-mean query.
        _ => QuerySpec::new(
            WindowSpec::tumbling(500u64),
            vec![AggregateSpec::new(AggregateKind::Mean, 0, "mean")],
            None,
        ),
    }
}

/// Generate the standard workload suite, each paired with its query.
pub fn standard_benches(ctx: &ExperimentCtx) -> Vec<Bench> {
    quill_gen::workload::standard_suite()
        .into_iter()
        .map(|w| Bench {
            name: w.name,
            stream: (w.generate)(ctx.events, ctx.seed),
            query: standard_query(w.name),
        })
        .collect()
}

/// Per-event delays of a stream in arrival order (delay = running-max
/// timestamp at arrival minus own timestamp).
pub fn delays_of(events: &[Event]) -> Vec<u64> {
    let mut clock = 0u64;
    let mut out = Vec::with_capacity(events.len());
    for e in events {
        out.push(clock.saturating_sub(e.ts.raw()));
        clock = clock.max(e.ts.raw());
    }
    out
}

/// Exact q-quantile of a delay sample (sorted copy).
pub fn delay_quantile(delays: &[u64], q: f64) -> u64 {
    if delays.is_empty() {
        return 0;
    }
    let mut sorted = delays.to_vec();
    sorted.sort_unstable();
    let idx =
        ((q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
    sorted[idx]
}

/// Build the named baseline strategy. `delays` lets calibrated baselines
/// (fixed-K at an offline-computed quantile) be constructed.
pub fn make_strategy(spec: &StrategySpec, delays: &[u64]) -> Box<dyn DisorderControl> {
    match *spec {
        StrategySpec::Drop => Box::new(DropAll::new()),
        StrategySpec::FixedK(k) => Box::new(FixedKSlack::new(k)),
        StrategySpec::FixedQuantile(q) => Box::new(FixedKSlack::new(delay_quantile(delays, q))),
        StrategySpec::Mp => Box::new(MpKSlack::new()),
        StrategySpec::Aq(q) => Box::new(AqKSlack::for_completeness(q)),
        StrategySpec::Oracle => Box::new(OracleBuffer::new()),
        StrategySpec::Punct {
            source_field,
            sources,
            slack,
        } => Box::new(PunctuatedBuffer::new(source_field, sources).with_source_slack(slack)),
    }
}

/// Declarative strategy choice for experiment sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StrategySpec {
    /// K = 0.
    Drop,
    /// Constant K.
    FixedK(u64),
    /// Constant K chosen offline as the given delay quantile (hindsight
    /// calibration — an oracle-assisted baseline).
    FixedQuantile(f64),
    /// MP-K-slack.
    Mp,
    /// AQ-K-slack with a completeness target.
    Aq(f64),
    /// Infinite buffer.
    Oracle,
    /// Per-source punctuation baseline (needs a source-id field).
    Punct {
        /// Row index of the source id.
        source_field: usize,
        /// Number of distinct sources to wait for.
        sources: usize,
        /// Per-source slack compensating intra-source disorder.
        slack: u64,
    },
}

/// Augment stock events with a `notional = price × volume` column appended
/// at the end of each row (used by VWAP-style error-target experiments).
pub fn with_notional(events: &[Event]) -> Vec<Event> {
    events
        .iter()
        .cloned()
        .map(|mut e| {
            let p = e.row.f64(stock::PRICE_FIELD).unwrap_or(0.0);
            let v = e.row.f64(stock::VOLUME_FIELD).unwrap_or(0.0);
            e.row = std::mem::take(&mut e.row).with(Value::Float(p * v));
            e
        })
        .collect()
}

/// Shorthand for building result rows in tables.
pub fn row_of(cells: Vec<String>) -> Vec<String> {
    cells
}

/// Format helper re-export for experiment modules.
pub use quill_metrics::fmt_f64;

/// Construct a one-field event quickly (micro-bench helper).
pub fn quick_event(ts: u64, seq: u64, v: f64) -> Event {
    Event::new(ts, seq, Row::new([Value::Float(v)]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_of_matches_clock_tracker() {
        let evs = vec![
            quick_event(10, 0, 0.0),
            quick_event(5, 1, 0.0),
            quick_event(20, 2, 0.0),
        ];
        assert_eq!(delays_of(&evs), vec![0, 5, 0]);
    }

    #[test]
    fn delay_quantile_endpoints() {
        let d = vec![5, 1, 9, 3];
        assert_eq!(delay_quantile(&d, 0.0), 1);
        assert_eq!(delay_quantile(&d, 1.0), 9);
        assert_eq!(delay_quantile(&[], 0.5), 0);
    }

    #[test]
    fn standard_queries_are_valid() {
        for name in ["soccer", "stock", "netmon", "synthetic-exp"] {
            let q = standard_query(name);
            q.window.validate().expect("valid window");
            for a in &q.aggregates {
                a.validate().expect("valid aggregate");
            }
        }
    }

    #[test]
    fn strategy_factory_builds_all() {
        let delays = vec![1, 2, 3, 100];
        for spec in [
            StrategySpec::Drop,
            StrategySpec::FixedK(10),
            StrategySpec::FixedQuantile(0.9),
            StrategySpec::Mp,
            StrategySpec::Aq(0.95),
            StrategySpec::Oracle,
        ] {
            let s = make_strategy(&spec, &delays);
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn notional_column_is_appended() {
        let s = quill_gen::workload::stock::generate(
            &quill_gen::workload::stock::StockConfig::default(),
            10,
            1,
        );
        let aug = with_notional(&s.events);
        for (orig, new) in s.events.iter().zip(&aug) {
            assert_eq!(new.row.len(), orig.row.len() + 1);
            let p = orig.row.f64(stock::PRICE_FIELD).unwrap();
            let v = orig.row.f64(stock::VOLUME_FIELD).unwrap();
            assert!((new.row.f64(3).unwrap() - p * v).abs() < 1e-9);
        }
    }
}
