//! # quill-bench
//!
//! The experiment harness: one module per reconstructed table/figure (see
//! DESIGN.md §5), each regenerating its rows/series from scratch via the
//! public APIs of the other crates. The `experiments` binary drives them;
//! criterion micro-benchmarks live under `benches/`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod harness;
pub mod inspect;

pub use harness::{Artifact, ExperimentCtx};

/// All experiment ids in run order.
pub const ALL_EXPERIMENTS: &[&str] = &["t1", "f2", "f3", "f4", "f5", "t6", "f7", "f8", "f9"];

/// Run one experiment by id.
///
/// # Panics
/// Panics on an unknown id; use [`ALL_EXPERIMENTS`] to enumerate valid ones.
pub fn run_experiment(id: &str, ctx: &ExperimentCtx) -> Vec<Artifact> {
    match id {
        "t1" => experiments::t1_workloads::run(ctx),
        "f2" => experiments::f2_quality_vs_k::run(ctx),
        "f3" => experiments::f3_latency_vs_quality::run(ctx),
        "f4" => experiments::f4_adaptivity::run(ctx),
        "f5" => experiments::f5_compliance::run(ctx),
        "t6" => experiments::t6_summary::run(ctx),
        "f7" => experiments::f7_throughput::run(ctx),
        "f8" => experiments::f8_ablations::run(ctx),
        "f9" => experiments::f9_error_targets::run(ctx),
        other => panic!("unknown experiment id `{other}`"),
    }
}
