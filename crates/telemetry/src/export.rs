//! Snapshot exporters: Prometheus text exposition format and JSON-lines.
//!
//! Both are hand-rolled text renderers — snapshots are plain sorted maps,
//! so the output is deterministic and diff-friendly. A small Prometheus
//! line parser ([`parse_prometheus`]) is included so tests (and tools) can
//! round-trip exports without an external scraper.

use crate::{HistogramSummary, Snapshot};
use std::fmt::Write as _;

/// Sanitise a dotted instrument name into a Prometheus metric name:
/// `quill.shard.0.events` → `quill_shard_0_events`. Prometheus names match
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`; anything else becomes `_`.
pub fn prometheus_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Render a snapshot in the Prometheus text exposition format (version
/// 0.0.4). Counters become `counter`, gauges `gauge`, and histograms
/// `summary` metrics with `quantile` labels plus `_sum`/`_count` series.
pub fn to_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, v) in &snap.gauges {
        let n = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", fmt_f64(*v));
    }
    for (name, h) in &snap.histograms {
        let n = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {n} summary");
        for (q, v) in [(0.5, h.p50), (0.9, h.p90), (0.99, h.p99)] {
            let _ = writeln!(out, "{n}{{quantile=\"{q}\"}} {v}");
        }
        let _ = writeln!(out, "{n}_sum {}", fmt_f64(h.mean * h.count as f64));
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    out
}

/// One sample parsed back out of a Prometheus text export.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Sanitised metric name (e.g. `quill_shard_0_events`).
    pub name: String,
    /// Label pairs in source order (e.g. `[("quantile", "0.5")]`).
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// Parse the subset of the Prometheus text format that [`to_prometheus`]
/// emits (and that real exporters commonly produce): comment lines are
/// skipped, samples are `name[{k="v",..}] value`. Timestamps are not
/// supported. Returns an error naming the first malformed line.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {raw:?}", lineno + 1);
        let (head, value_str) = match line.find('}') {
            Some(close) => {
                let (h, rest) = line.split_at(close + 1);
                (h, rest.trim())
            }
            None => line
                .split_once(char::is_whitespace)
                .map(|(h, v)| (h, v.trim()))
                .ok_or_else(|| err("missing value"))?,
        };
        if value_str.is_empty() {
            return Err(err("missing value"));
        }
        let value: f64 = value_str.parse().map_err(|_| err("unparseable value"))?;
        let (name, labels) = match head.split_once('{') {
            None => (head.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| err("unclosed label set"))?;
                let mut labels = Vec::new();
                for pair in body.split(',').filter(|p| !p.trim().is_empty()) {
                    let (k, v) = pair.split_once('=').ok_or_else(|| err("malformed label"))?;
                    let v = v
                        .trim()
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| err("unquoted label value"))?;
                    labels.push((k.trim().to_string(), v.to_string()));
                }
                (name.to_string(), labels)
            }
        };
        if name.is_empty() {
            return Err(err("empty metric name"));
        }
        out.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Ok(out)
}

/// Render a snapshot as one JSON object on a single line (JSON-lines
/// record), suitable for appending to files under `results/`.
pub fn to_json_line(snap: &Snapshot) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"seq\":{},\"at_events\":{},\"wall_micros\":{}",
        snap.seq, snap.at_events, snap.wall_micros
    );
    out.push_str(",\"counters\":{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{v}", json_string(name));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(name), fmt_f64(*v));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(name), summary_json(h));
    }
    out.push_str("}}");
    out
}

fn summary_json(h: &HistogramSummary) -> String {
    format!(
        "{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
        h.count,
        h.min,
        h.max,
        fmt_f64(h.mean),
        h.p50,
        h.p90,
        h.p99
    )
}

/// JSON-escape and quote a string.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an f64 so the output is valid JSON / Prometheus: finite values
/// keep full precision, non-finite ones become 0 (JSON has no NaN/Inf).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_snapshot() -> Snapshot {
        let reg = Registry::new();
        reg.counter("quill.shard.0.events").add(40);
        reg.counter("quill.shard.1.events").add(60);
        reg.gauge("quill.controller.k").set(250.5);
        let h = reg.histogram("quill.run.latency");
        for v in 1..=100u64 {
            h.record(v);
        }
        reg.snapshot()
    }

    #[test]
    fn prometheus_name_sanitizes() {
        assert_eq!(
            prometheus_name("quill.shard.0.events"),
            "quill_shard_0_events"
        );
        assert_eq!(prometheus_name("0weird"), "_0weird");
    }

    #[test]
    fn prometheus_export_round_trips() {
        let snap = sample_snapshot();
        let text = to_prometheus(&snap);
        let samples = parse_prometheus(&text).expect("parse own export");
        let get = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name && s.labels.is_empty())
                .map(|s| s.value)
        };
        assert_eq!(get("quill_shard_0_events"), Some(40.0));
        assert_eq!(get("quill_shard_1_events"), Some(60.0));
        assert_eq!(get("quill_controller_k"), Some(250.5));
        assert_eq!(get("quill_run_latency_count"), Some(100.0));
        let p50 = samples
            .iter()
            .find(|s| {
                s.name == "quill_run_latency"
                    && s.labels == vec![("quantile".to_string(), "0.5".to_string())]
            })
            .expect("quantile sample");
        assert!(p50.value >= 45.0 && p50.value <= 55.0);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_prometheus("just_a_name").is_err());
        assert!(parse_prometheus("name{quantile=0.5} 1").is_err());
        assert!(parse_prometheus("name notanumber").is_err());
        assert!(parse_prometheus("# a comment\n\n").unwrap().is_empty());
    }

    #[test]
    fn json_line_is_single_line_and_balanced() {
        let snap = sample_snapshot();
        let line = to_json_line(&snap);
        assert!(!line.contains('\n'));
        assert!(line.starts_with('{') && line.ends_with('}'));
        let opens = line.matches('{').count();
        let closes = line.matches('}').count();
        assert_eq!(opens, closes);
        assert!(line.contains("\"quill.shard.0.events\":40"));
        assert!(line.contains("\"quill.controller.k\":250.5"));
        assert!(line.contains("\"count\":100"));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
