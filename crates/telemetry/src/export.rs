//! Snapshot exporters: Prometheus text exposition format and JSON-lines.
//!
//! Both are hand-rolled text renderers — snapshots are plain sorted maps,
//! so the output is deterministic and diff-friendly. A small Prometheus
//! line parser ([`parse_prometheus`]) is included so tests (and tools) can
//! round-trip exports without an external scraper.

use crate::{HistogramSummary, Snapshot};
use std::fmt::Write as _;

/// Sanitise a dotted instrument name into a Prometheus metric name:
/// `quill.shard.0.events` → `quill_shard_0_events`. Prometheus names match
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`; anything else becomes `_`.
pub fn prometheus_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Render a snapshot in the Prometheus text exposition format (version
/// 0.0.4). Counters become `counter`, gauges `gauge`, and histograms
/// `summary` metrics with `quantile` labels plus `_sum`/`_count` series.
/// Every metric carries `# HELP` and `# TYPE` metadata lines;
/// [`parse_prometheus`] skips comment lines, so exports keep round-tripping.
pub fn to_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = prometheus_name(name);
        let _ = writeln!(out, "# HELP {n} {}", help_text(name));
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, v) in &snap.gauges {
        let n = prometheus_name(name);
        let _ = writeln!(out, "# HELP {n} {}", help_text(name));
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", fmt_prom_f64(*v));
    }
    for (name, h) in &snap.histograms {
        let n = prometheus_name(name);
        let _ = writeln!(out, "# HELP {n} {}", help_text(name));
        let _ = writeln!(out, "# TYPE {n} summary");
        for (q, v) in [(0.5, h.p50), (0.9, h.p90), (0.99, h.p99)] {
            let _ = writeln!(out, "{n}{{quantile=\"{q}\"}} {v}");
        }
        let _ = writeln!(out, "{n}_sum {}", fmt_prom_f64(h.mean * h.count as f64));
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    out
}

/// One-line `# HELP` description for a dotted instrument name, derived
/// from the registry's naming scheme (see the crate docs). Unknown
/// prefixes fall back to a generic description rather than omitting the
/// metadata.
pub fn help_text(name: &str) -> &'static str {
    if let Some(rest) = name.strip_prefix("quill.span.") {
        // Per-stage latency attribution histograms from the span layer.
        return match rest {
            "ingest_decode" => "Span durations: wire bytes to parsed events (ingest decode)",
            "route" => "Span durations: routing/enqueue of events toward their shard",
            "buffer_residency" => "Span durations: event residency in the disorder-control buffer",
            "shard_stage" => "Span durations: event residency in shard-local re-ordering",
            "window_finalize" => "Span durations: window end to the watermark that closed it",
            "merge" => "Span durations: cross-shard result merge",
            "deliver" => "Span durations: window end to result delivery",
            "connection" => "Span durations: ingest connection lifetimes",
            "query" => "Span durations: registered query lifetimes",
            _ => "Span durations for a pipeline stage",
        };
    }
    for (prefix, help) in [
        ("quill.buffer.", "Disorder-control ordering buffer"),
        ("quill.controller.", "AQ-K-slack control loop"),
        ("quill.estimator.", "Delay distribution estimator"),
        ("quill.shard.", "Keyed-parallel executor shard"),
        ("quill.merge.", "Cross-shard result merge"),
        ("quill.pipeline.", "Pipeline stage"),
        ("quill.run.", "Whole-run accounting"),
        ("quill.session.", "Resident session"),
        ("quill.serve.", "quill-serve daemon"),
        ("quill.executor.", "Parallel executor"),
    ] {
        if name.starts_with(prefix) {
            return help;
        }
    }
    "quill instrument"
}

/// Format an f64 for the Prometheus text format. Unlike JSON, Prometheus
/// has spellings for the non-finite values: `NaN`, `+Inf` and `-Inf`.
pub fn fmt_prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Escape a label value for the Prometheus text format: backslash, double
/// quote and newline must be escaped inside the quotes.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// One sample parsed back out of a Prometheus text export.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Sanitised metric name (e.g. `quill_shard_0_events`).
    pub name: String,
    /// Label pairs in source order (e.g. `[("quantile", "0.5")]`).
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// Parse the subset of the Prometheus text format that [`to_prometheus`]
/// emits (and that real exporters commonly produce): comment lines are
/// skipped, samples are `name[{k="v",..}] value`. Label values are fully
/// quote-aware — `}`, `,` and `=` inside quotes are data, and the escapes
/// `\\`, `\"` and `\n` are decoded. Values may be `NaN`, `+Inf` or
/// `-Inf`. Timestamps are not supported. Returns an error naming the
/// first malformed line.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {raw:?}", lineno + 1);
        let (name, labels, rest) = parse_sample_head(line).map_err(&err)?;
        let value_str = rest.trim();
        if value_str.is_empty() {
            return Err(err("missing value"));
        }
        // Rust's f64 parser accepts the Prometheus spellings NaN/+Inf/-Inf
        // (case-insensitively, "inf" and "infinity" alike).
        let value: f64 = value_str.parse().map_err(|_| err("unparseable value"))?;
        if name.is_empty() {
            return Err(err("empty metric name"));
        }
        out.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Ok(out)
}

/// Split a sample line into (name, labels, remainder-after-head). Scans
/// character by character so quoted label values may contain `}`, `,`,
/// `=` and escaped quotes.
#[allow(clippy::type_complexity)]
fn parse_sample_head(line: &str) -> Result<(String, Vec<(String, String)>, &str), &'static str> {
    let brace = line.find('{');
    let space = line.find(char::is_whitespace);
    let (name_end, has_labels) = match (brace, space) {
        (Some(b), Some(s)) if b < s => (b, true),
        (Some(b), None) => (b, true),
        (_, Some(s)) => (s, false),
        (None, None) => return Err("missing value"),
    };
    let name = line[..name_end].to_string();
    if !has_labels {
        return Ok((name, Vec::new(), &line[name_end..]));
    }
    let bytes = line.as_bytes();
    let mut i = name_end + 1;
    let mut labels = Vec::new();
    loop {
        while bytes.get(i).is_some_and(|c| *c == b' ' || *c == b',') {
            i += 1;
        }
        match bytes.get(i) {
            None => return Err("unclosed label set"),
            Some(b'}') => return Ok((name, labels, &line[i + 1..])),
            _ => {}
        }
        let key_start = i;
        while bytes.get(i).is_some_and(|c| *c != b'=') {
            i += 1;
        }
        if bytes.get(i).is_none() {
            return Err("malformed label");
        }
        let key = line[key_start..i].trim().to_string();
        i += 1; // consume '='
        if bytes.get(i) != Some(&b'"') {
            return Err("unquoted label value");
        }
        i += 1;
        let mut value = String::new();
        loop {
            match bytes.get(i) {
                None => return Err("unterminated label value"),
                Some(b'"') => {
                    i += 1;
                    break;
                }
                Some(b'\\') => {
                    match bytes.get(i + 1) {
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'n') => value.push('\n'),
                        _ => return Err("bad escape in label value"),
                    }
                    i += 2;
                }
                Some(_) => {
                    // Advance one full UTF-8 character.
                    let ch_len = line[i..].chars().next().map_or(1, char::len_utf8);
                    value.push_str(&line[i..i + ch_len]);
                    i += ch_len;
                }
            }
        }
        labels.push((key, value));
    }
}

/// Render a snapshot as one JSON object on a single line (JSON-lines
/// record), suitable for appending to files under `results/`.
pub fn to_json_line(snap: &Snapshot) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"seq\":{},\"at_events\":{},\"wall_micros\":{}",
        snap.seq, snap.at_events, snap.wall_micros
    );
    out.push_str(",\"counters\":{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{v}", json_string(name));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(name), fmt_f64(*v));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(name), summary_json(h));
    }
    out.push_str("}}");
    out
}

fn summary_json(h: &HistogramSummary) -> String {
    format!(
        "{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
        h.count,
        h.min,
        h.max,
        fmt_f64(h.mean),
        h.p50,
        h.p90,
        h.p99
    )
}

/// JSON-escape and quote a string.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an f64 so the output is valid JSON / Prometheus: finite values
/// keep full precision, non-finite ones become 0 (JSON has no NaN/Inf).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_snapshot() -> Snapshot {
        let reg = Registry::new();
        reg.counter("quill.shard.0.events").add(40);
        reg.counter("quill.shard.1.events").add(60);
        reg.gauge("quill.controller.k").set(250.5);
        let h = reg.histogram("quill.run.latency");
        for v in 1..=100u64 {
            h.record(v);
        }
        reg.snapshot()
    }

    #[test]
    fn prometheus_name_sanitizes() {
        assert_eq!(
            prometheus_name("quill.shard.0.events"),
            "quill_shard_0_events"
        );
        assert_eq!(prometheus_name("0weird"), "_0weird");
    }

    #[test]
    fn prometheus_export_round_trips() {
        let snap = sample_snapshot();
        let text = to_prometheus(&snap);
        let samples = parse_prometheus(&text).expect("parse own export");
        let get = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name && s.labels.is_empty())
                .map(|s| s.value)
        };
        assert_eq!(get("quill_shard_0_events"), Some(40.0));
        assert_eq!(get("quill_shard_1_events"), Some(60.0));
        assert_eq!(get("quill_controller_k"), Some(250.5));
        assert_eq!(get("quill_run_latency_count"), Some(100.0));
        let p50 = samples
            .iter()
            .find(|s| {
                s.name == "quill_run_latency"
                    && s.labels == vec![("quantile".to_string(), "0.5".to_string())]
            })
            .expect("quantile sample");
        assert!(p50.value >= 45.0 && p50.value <= 55.0);
    }

    #[test]
    fn prometheus_export_carries_help_and_type_metadata() {
        let snap = sample_snapshot();
        let text = to_prometheus(&snap);
        // Every metric family gets both metadata lines, HELP before TYPE.
        for name in [
            "quill_shard_0_events",
            "quill_controller_k",
            "quill_run_latency",
        ] {
            let help = text.find(&format!("# HELP {name} "));
            let typ = text.find(&format!("# TYPE {name} "));
            assert!(help.is_some(), "missing HELP for {name}:\n{text}");
            assert!(typ.is_some(), "missing TYPE for {name}:\n{text}");
            assert!(help < typ, "HELP must precede TYPE for {name}");
        }
        // Histograms keep their _sum/_count series alongside the metadata.
        assert!(text.contains("quill_run_latency_sum "), "{text}");
        assert!(text.contains("quill_run_latency_count 100"), "{text}");
        // The metadata must not break the round-trip parser (regression:
        // parse_prometheus skips comment lines).
        let samples = parse_prometheus(&text).expect("parse export with metadata");
        assert!(samples.iter().all(|s| !s.name.starts_with('#')));
        assert_eq!(
            samples.len(),
            parse_prometheus(&to_prometheus(&snap)).unwrap().len()
        );
    }

    #[test]
    fn help_text_matches_naming_scheme() {
        assert!(help_text("quill.span.buffer_residency").contains("residency"));
        assert!(help_text("quill.span.unknown_stage").contains("pipeline stage"));
        assert!(help_text("quill.buffer.inserted").contains("buffer"));
        assert_eq!(help_text("something.else"), "quill instrument");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_prometheus("just_a_name").is_err());
        assert!(parse_prometheus("name{quantile=0.5} 1").is_err());
        assert!(parse_prometheus("name notanumber").is_err());
        assert!(parse_prometheus("name{k=\"v\" 1").is_err());
        assert!(parse_prometheus("name{k=\"v\\x\"} 1").is_err());
        assert!(parse_prometheus("# a comment\n\n").unwrap().is_empty());
    }

    #[test]
    fn non_finite_gauges_round_trip_through_prometheus() {
        let reg = Registry::new();
        reg.gauge("quill.test.nan").set(f64::NAN);
        reg.gauge("quill.test.pinf").set(f64::INFINITY);
        reg.gauge("quill.test.ninf").set(f64::NEG_INFINITY);
        let text = to_prometheus(&reg.snapshot());
        assert!(text.contains("quill_test_nan NaN"), "{text}");
        assert!(text.contains("quill_test_pinf +Inf"), "{text}");
        assert!(text.contains("quill_test_ninf -Inf"), "{text}");
        let samples = parse_prometheus(&text).expect("parse own export");
        let get = |name: &str| samples.iter().find(|s| s.name == name).unwrap().value;
        assert!(get("quill_test_nan").is_nan());
        assert_eq!(get("quill_test_pinf"), f64::INFINITY);
        assert_eq!(get("quill_test_ninf"), f64::NEG_INFINITY);
    }

    #[test]
    fn labels_with_escapes_and_braces_round_trip() {
        let tricky = "a\"b\\c}d,e=f\ng";
        let line = format!(
            "quill_test{{path=\"{}\",plain=\"ok\"}} 4.5",
            escape_label_value(tricky)
        );
        let samples = parse_prometheus(&line).expect("parse escaped labels");
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].name, "quill_test");
        assert_eq!(samples[0].value, 4.5);
        assert_eq!(
            samples[0].labels,
            vec![
                ("path".to_string(), tricky.to_string()),
                ("plain".to_string(), "ok".to_string()),
            ]
        );
    }

    #[test]
    fn escape_label_value_escapes_the_specials_only() {
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        assert_eq!(escape_label_value("plain{},="), "plain{},=");
    }

    #[test]
    fn json_export_maps_non_finite_to_zero() {
        let reg = Registry::new();
        reg.gauge("quill.test.nan").set(f64::NAN);
        let line = to_json_line(&reg.snapshot());
        assert!(line.contains("\"quill.test.nan\":0"), "{line}");
        assert!(!line.contains("NaN"), "JSON must stay valid: {line}");
    }

    #[test]
    fn json_line_is_single_line_and_balanced() {
        let snap = sample_snapshot();
        let line = to_json_line(&snap);
        assert!(!line.contains('\n'));
        assert!(line.starts_with('{') && line.ends_with('}'));
        let opens = line.matches('{').count();
        let closes = line.matches('}').count();
        assert_eq!(opens, closes);
        assert!(line.contains("\"quill.shard.0.events\":40"));
        assert!(line.contains("\"quill.controller.k\":250.5"));
        assert!(line.contains("\"count\":100"));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
