//! Periodic snapshotting: turn a stream of "N events processed" ticks into
//! a series of registry snapshots, emitted every N events and/or every M
//! milliseconds, whichever fires first.

use crate::{Registry, Snapshot};
use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

/// When the reporter takes a snapshot.
#[derive(Debug, Clone, Copy)]
pub struct ReporterConfig {
    /// Snapshot every this many observed events (0 disables the trigger).
    pub every_events: u64,
    /// Snapshot when this many milliseconds elapsed since the last one
    /// (0 disables the trigger).
    pub every_millis: u64,
}

impl Default for ReporterConfig {
    fn default() -> Self {
        ReporterConfig {
            every_events: 10_000,
            every_millis: 0,
        }
    }
}

impl ReporterConfig {
    /// Event-count-triggered snapshots only.
    pub fn every_events(n: u64) -> ReporterConfig {
        ReporterConfig {
            every_events: n,
            every_millis: 0,
        }
    }
}

/// Collects periodic [`Snapshot`]s of a [`Registry`] while a run is in
/// flight. Drive it with [`observe_events`](TelemetryReporter::observe_events)
/// from the ingest loop; call [`finish`](TelemetryReporter::finish) for a
/// final snapshot at end of stream.
///
/// A reporter over a disabled registry never snapshots, so the hot-path
/// cost stays at one integer add and compare per tick.
#[derive(Debug)]
pub struct TelemetryReporter {
    registry: Registry,
    cfg: ReporterConfig,
    started: Instant,
    last_snapshot_at: Instant,
    events_seen: u64,
    events_at_last: u64,
    snapshots: Vec<Snapshot>,
}

impl TelemetryReporter {
    /// Create a reporter over `registry` (cloned; clones share instruments).
    pub fn new(registry: &Registry, cfg: ReporterConfig) -> TelemetryReporter {
        let now = Instant::now();
        TelemetryReporter {
            registry: registry.clone(),
            cfg,
            started: now,
            last_snapshot_at: now,
            events_seen: 0,
            events_at_last: 0,
            snapshots: Vec::new(),
        }
    }

    /// Record that `n` more events were processed; returns the snapshot if
    /// one of the configured triggers fired.
    pub fn observe_events(&mut self, n: u64) -> Option<&Snapshot> {
        self.events_seen += n;
        if !self.registry.is_enabled() {
            return None;
        }
        let by_events = self.cfg.every_events > 0
            && self.events_seen - self.events_at_last >= self.cfg.every_events;
        let by_time = self.cfg.every_millis > 0
            && self.last_snapshot_at.elapsed().as_millis() >= self.cfg.every_millis as u128;
        if by_events || by_time {
            Some(self.take())
        } else {
            None
        }
    }

    /// Take a snapshot unconditionally (no-op returning an empty snapshot
    /// reference is avoided: disabled registries still record seq/events so
    /// callers can rely on `snapshots()` sequencing when enabled).
    pub fn force(&mut self) -> &Snapshot {
        self.take()
    }

    /// Final snapshot at end of run, if any events were seen since the last
    /// one (or none were taken yet). Returns all collected snapshots.
    pub fn finish(mut self) -> Vec<Snapshot> {
        if self.registry.is_enabled()
            && (self.snapshots.is_empty() || self.events_seen > self.events_at_last)
        {
            self.take();
        }
        self.snapshots
    }

    /// Snapshots collected so far.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// Events observed so far.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    fn take(&mut self) -> &Snapshot {
        let mut snap = self.registry.snapshot();
        snap.seq = self.snapshots.len() as u64;
        snap.at_events = self.events_seen;
        snap.wall_micros = self.started.elapsed().as_micros();
        self.events_at_last = self.events_seen;
        self.last_snapshot_at = Instant::now();
        self.snapshots.push(snap);
        self.snapshots.last().expect("just pushed")
    }
}

/// Write snapshots as JSON-lines (one object per line) to `path`,
/// creating parent directories as needed. The write goes through a
/// temp file in the same directory followed by an atomic rename, so a
/// crashed run can never leave a truncated artifact at `path`.
pub fn write_jsonl(path: &Path, snapshots: &[Snapshot]) -> std::io::Result<()> {
    write_lines_atomic(path, snapshots.iter().map(crate::export::to_json_line))
}

/// Write `lines` to `path` (one per line, newline-terminated) via a temp
/// file in the same directory plus an atomic rename. Readers either see
/// the previous complete file or the new complete file, never a torn
/// half-write. Parent directories are created as needed; the temp file is
/// removed if anything fails before the rename.
pub fn write_lines_atomic(path: &Path, lines: impl Iterator<Item = String>) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    // Same-directory temp file so the rename cannot cross filesystems.
    // The pid suffix keeps concurrent processes from clobbering each
    // other's in-flight temp file.
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".{}.tmp", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let write_all = || -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        for line in lines {
            writeln!(f, "{line}")?;
        }
        f.flush()?;
        f.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        Ok(())
    };
    if let Err(e) = write_all() {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_fire_on_event_threshold() {
        let reg = Registry::new();
        let c = reg.counter("quill.n");
        let mut rep = TelemetryReporter::new(&reg, ReporterConfig::every_events(100));
        for _ in 0..5 {
            c.add(30);
            rep.observe_events(30);
        }
        // 150 events crossed the threshold once (at 120), then 150→new window.
        assert_eq!(rep.snapshots().len(), 1);
        assert_eq!(rep.snapshots()[0].at_events, 120);
        let snaps = rep.finish();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[1].seq, 1);
        assert_eq!(snaps[1].at_events, 150);
        assert_eq!(snaps[1].counter("quill.n"), 150);
    }

    #[test]
    fn disabled_registry_never_snapshots() {
        let reg = Registry::disabled();
        let mut rep = TelemetryReporter::new(&reg, ReporterConfig::every_events(1));
        for _ in 0..10 {
            assert!(rep.observe_events(5).is_none());
        }
        assert!(rep.finish().is_empty());
    }

    #[test]
    fn finish_skips_redundant_tail_snapshot() {
        let reg = Registry::new();
        let mut rep = TelemetryReporter::new(&reg, ReporterConfig::every_events(10));
        rep.observe_events(10);
        assert_eq!(rep.snapshots().len(), 1);
        // No events since the last snapshot → finish adds nothing.
        assert_eq!(rep.finish().len(), 1);
    }

    #[test]
    fn atomic_write_replaces_whole_file_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join("quill-telemetry-atomic-test");
        let path = dir.join("out.jsonl");
        write_lines_atomic(
            &path,
            ["first".to_string(), "second".to_string()].into_iter(),
        )
        .expect("initial write");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first\nsecond\n");
        // Overwrite: readers see either the old or the new complete file.
        write_lines_atomic(&path, ["replaced".to_string()].into_iter()).expect("rewrite");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "replaced\n");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files must not survive: {leftovers:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jsonl_writes_one_line_per_snapshot() {
        let reg = Registry::new();
        reg.counter("quill.n").add(1);
        let mut rep = TelemetryReporter::new(&reg, ReporterConfig::default());
        rep.force();
        reg.counter("quill.n").add(1);
        rep.force();
        let dir = std::env::temp_dir().join("quill-telemetry-test");
        let path = dir.join("snaps.jsonl");
        write_jsonl(&path, rep.snapshots()).expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"seq\":0"));
        assert!(lines[1].contains("\"quill.n\":2"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
